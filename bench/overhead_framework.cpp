// §3.1 framework-overhead experiment (E4): the same request/reply logic as
// a Compadres component assembly vs a hand-coded direct-call version —
// "our Compadres example built with components incurs only minor time
// overhead as compared to a comparable hand-coded example."
//
// Three rungs:
//   hand-coded      — plain function calls, no framework at all
//   components/sync — ports with pool size 0 (caller runs handlers inline)
//   components/pool — ports with thread pools (cross-thread dispatch)
#include "common.hpp"

#include <cstdio>

using namespace compadres;

namespace {

// The hand-coded equivalent of the Fig. 6 logic.
struct HandCoded {
    int server_process(int request) { return request + 1; }
    int client_request() { return server_process(3); }
    volatile int sink = 0;

    std::int64_t round_trip() {
        const auto t0 = rt::now_ns();
        sink = client_request();
        return rt::now_ns() - t0;
    }
};

rt::StatsSummary run_handcoded(std::size_t samples, std::size_t warmup) {
    HandCoded hc;
    rt::StatsRecorder recorder(samples + warmup);
    for (std::size_t i = 0; i < samples + warmup; ++i) {
        recorder.record(hc.round_trip());
    }
    recorder.discard_warmup(warmup);
    return recorder.summarize();
}

} // namespace

int main() {
    const std::size_t samples = bench::sample_count();
    const std::size_t warmup = bench::warmup_count();
    std::printf("=== Framework overhead: components vs hand-coded ===\n");
    std::printf("samples per rung: %zu steady-state\n\n", samples);

    const auto hand = run_handcoded(samples, warmup);

    rt::StatsSummary sync_summary;
    {
        bench::Fig6Harness harness(/*synchronous_ports=*/true);
        sync_summary = harness.measure(samples, warmup).summarize();
    }
    rt::StatsSummary pooled_summary;
    {
        bench::Fig6Harness harness(/*synchronous_ports=*/false);
        pooled_summary = harness.measure(samples, warmup).summarize();
    }

    std::printf("%-22s %12s %12s %12s\n", "Variant", "median(us)", "max(us)",
                "jitter(us)");
    const auto row = [](const char* name, const rt::StatsSummary& s) {
        std::printf("%-22s %12.2f %12.2f %12.2f\n", name,
                    static_cast<double>(s.median) / 1000.0,
                    static_cast<double>(s.max) / 1000.0,
                    static_cast<double>(s.jitter) / 1000.0);
    };
    row("hand-coded", hand);
    row("components (sync)", sync_summary);
    row("components (pooled)", pooled_summary);

    const double sync_over = hand.median > 0
                                 ? static_cast<double>(sync_summary.median) /
                                       static_cast<double>(hand.median)
                                 : 0.0;
    std::printf("\ncomponents(sync) / hand-coded median ratio: %.1fx\n",
                sync_over);
    std::printf("absolute sync overhead: %.2f us per round trip\n",
                static_cast<double>(sync_summary.median - hand.median) /
                    1000.0);
    std::printf("absolute pooled overhead: %.2f us per round trip "
                "(adds 3 cross-thread hops)\n",
                static_cast<double>(pooled_summary.median - hand.median) /
                    1000.0);

    // Before/after on a single hop: the shipped credit fabric (one intake
    // lock per hop) vs the legacy two-lock rendezvous re-created on the
    // same pipeline.
    std::printf("\n=== Hop cost: credit fabric vs legacy two-lock ===\n");
    rt::StatsSummary hop_single;
    double locks_per_hop = 0.0;
    {
        bench::HopHarness h;
        hop_single = bench::measure_single_lock_hops(h, samples, warmup);
        locks_per_hop =
            static_cast<double>(h.in().dispatcher()->queue_lock_count()) /
            static_cast<double>(samples + warmup);
    }
    rt::StatsSummary hop_two;
    {
        bench::HopHarness h;
        bench::LegacyGate gate;
        hop_two = bench::measure_two_lock_hops(h, gate, samples, warmup);
    }
    row("hop (single-lock)", hop_single);
    row("hop (two-lock)", hop_two);
    std::printf("locks per uncontended hop: %.3f\n", locks_per_hop);
    return 0;
}
