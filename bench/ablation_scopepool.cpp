// Ablation A4 (paper §2.2): pooled scoped regions vs create-on-demand.
//
// "Further optimization of component instantiation can be achieved by
// creating pools of scoped memory areas in immortal memory and reusing
// these areas at runtime."
//
// Measures the connect/disconnect churn of a dynamic child component —
// what the ORB does per connection/request in the paper's design:
//   pooled    — Smm::connect draws a pre-created region from the level
//               pool (LT creation cost paid once at startup);
//   on-demand — a fresh LTScopedMemory per child: its creation cost is
//               linear in the region size, every time.
//
// Expected shape: pooled wins, and the on-demand cost scales with the
// region size while the pooled cost does not.
#include "core/application.hpp"
#include "core/smm.hpp"
#include "memory/scoped.hpp"

#include <benchmark/benchmark.h>

using namespace compadres;

namespace {

class Worker : public core::Component {
public:
    explicit Worker(const core::ComponentContext& ctx) : core::Component(ctx) {
        // A realistic child allocates some working state in its region.
        region().allocate(1024);
    }
};

void register_worker_once() {
    static const bool done = [] {
        core::ComponentRegistry::global().register_class<Worker>("Worker");
        return true;
    }();
    (void)done;
}

void BM_PooledConnectDisconnect(benchmark::State& state) {
    register_worker_once();
    const auto scope_size = static_cast<std::size_t>(state.range(0));
    core::RtsjAttributes attrs;
    attrs.scoped_pools = {{1, scope_size, 2}};
    core::Application app("pooled", attrs);
    auto& parent = app.create_immortal<core::Component>("P");
    int i = 0;
    for (auto _ : state) {
        core::ChildHandle handle =
            parent.smm().connect("Worker", "w" + std::to_string(i++));
        benchmark::DoNotOptimize(handle.component());
        handle.release();
    }
    state.SetLabel("scope=" + std::to_string(scope_size / 1024) + "KiB");
}

void BM_OnDemandScopeCreation(benchmark::State& state) {
    const auto scope_size = static_cast<std::size_t>(state.range(0));
    memory::ImmortalMemory immortal(1024 * 1024, "parent");
    for (auto _ : state) {
        // Fresh region each time: creation is linear in scope_size (the
        // LT property — the arena is touched up front).
        memory::LTScopedMemory scope(scope_size, "fresh");
        scope.enter(immortal);
        scope.allocate(1024);
        scope.exit();
        benchmark::DoNotOptimize(scope.used());
    }
    state.SetLabel("scope=" + std::to_string(scope_size / 1024) + "KiB");
}

} // namespace

BENCHMARK(BM_PooledConnectDisconnect)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024);
BENCHMARK(BM_OnDemandScopeCreation)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024);

BENCHMARK_MAIN();
