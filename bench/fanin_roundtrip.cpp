// Fan-in round-trip bench + gates for the epoll reactor reader model.
//
// One echo server, N client wires (N in {1, 8, 64}) over loopback TCP.
// The server side runs in both reader models in the same binary:
//
//   thread-per-wire — one blocking reader thread per accepted wire (the
//                     pre-reactor baseline: N resident threads),
//   reactor         — every accepted wire registered with one epoll
//                     reactor pool (<= 4 loop threads regardless of N).
//
// The client machinery is identical across every rung: a single driver
// thread sends one request per wire, then collects one echo per wire
// (N messages in flight, per-wire FIFO), so the rungs differ only in how
// the server side demultiplexes. Per-message latency is the round time
// divided by N.
//
// The binary is also a correctness gate (run by the `fanin_bench` tool
// target, and in --smoke form by ctest):
//   * 64 wires are served by at most 4 reactor threads,
//   * steady-state allocations per message == 0 with the reactor serving
//     64 wires (global operator new override, as in remote_roundtrip),
//   * the coalescing writer still makes < 1 syscall per frame under a
//     send burst when the sending transport lives in a reactor (parked
//     batches resumed by EPOLLOUT, not by a blocking sendmsg),
//   * reactor p50/p99 at 64 wires <= thread-per-wire p50/p99 at 8 wires
//     (full runs on plain builds only; timing under --smoke or
//     sanitizers is noise).
// Results land in BENCH_fanin.json.
#include "common.hpp"

#include "cdr/giop.hpp"
#include "net/frame_pool.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/uring.hpp"

#include <sys/resource.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#if !defined(COMPADRES_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#endif
#ifndef COMPADRES_UNDER_SANITIZER
#define COMPADRES_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

// Count every heap allocation in the process so the steady-state gate can
// assert the reactor's frame path makes none.
void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(al);
    if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
    return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace compadres;

namespace {

constexpr std::size_t kWireCounts[] = {1, 8, 64};
constexpr std::size_t kWireCountRungs =
    sizeof(kWireCounts) / sizeof(kWireCounts[0]);
constexpr std::size_t kPayload = 256;
/// Frames in flight per wire per round: fan-in means wires sending
/// concurrently, and a burst deep enough that the server side's
/// demultiplexing cost (threads woken, syscalls made, switches taken)
/// dominates the shared client machinery.
constexpr std::size_t kBurst = 8;

std::vector<std::uint8_t> make_request(std::size_t payload_size) {
    cdr::RequestHeader req;
    req.request_id = 1;
    req.object_key = "fanin";
    req.operation = "echo";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    return cdr::encode_request(req, payload.data(), payload.size());
}

/// N connected wire pairs through one acceptor.
struct WireFarm {
    net::TcpAcceptor acceptor{0};
    std::vector<std::unique_ptr<net::Transport>> clients;
    std::vector<std::unique_ptr<net::Transport>> servers;

    explicit WireFarm(std::size_t n) {
        clients.resize(n);
        servers.resize(n);
        std::thread accept_thread([&] {
            for (std::size_t i = 0; i < n; ++i) servers[i] = acceptor.accept();
        });
        for (std::size_t i = 0; i < n; ++i) {
            clients[i] = net::tcp_connect("127.0.0.1", acceptor.bound_port());
        }
        accept_thread.join();
    }
};

/// Echo server, thread-per-wire flavor: N blocking reader threads.
class ThreadPerWireEcho {
public:
    explicit ThreadPerWireEcho(WireFarm& farm) {
        readers_.reserve(farm.servers.size());
        for (auto& wire : farm.servers) {
            readers_.emplace_back([w = wire.get()] {
                for (;;) {
                    auto frame = w->recv_frame();
                    if (!frame.has_value()) return;
                    try {
                        w->send_frame(std::move(*frame));
                    } catch (const net::TransportError&) {
                        return;
                    }
                }
            });
        }
    }

    void stop(WireFarm& farm) {
        for (auto& wire : farm.servers) wire->close();
        for (auto& t : readers_) t.join();
        readers_.clear();
    }

private:
    std::vector<std::thread> readers_;
};

/// Echo server, reactor flavor: every wire in one bounded loop pool.
/// The options knob selects the loop backend (epoll vs io_uring) for the
/// backend-comparison rungs; the default keeps the portable epoll pool.
class ReactorEcho {
public:
    explicit ReactorEcho(WireFarm& farm, net::ReactorOptions options = {})
        : reactor_(options) {
        ids_.reserve(farm.servers.size());
        for (auto& wire : farm.servers) {
            net::Transport* w = wire.get();
            ids_.push_back(reactor_.register_wire(
                *w, [w](net::FrameBuffer frame) {
                    w->send_frame(std::move(frame)); // zero-copy echo
                }));
        }
    }

    void stop(WireFarm& farm) {
        for (std::uint64_t id : ids_) reactor_.deregister_wire(id);
        for (auto& wire : farm.servers) wire->close();
        ids_.clear();
    }

    net::Reactor& reactor() { return reactor_; }

private:
    net::Reactor reactor_; // default pool: min(4, hw) or the env override
    std::vector<std::uint64_t> ids_;
};

/// One backend's leg of the epoll-vs-uring comparison at 64 wires.
struct BackendLeg {
    rt::StatsSummary lat; ///< per-message round-trip (ns), interleaved
    double loop_syscalls_per_frame = 0.0;  ///< reactor waits+reads / frame
    double server_send_syscalls_per_frame = 0.0; ///< echo-side sendmsg rate
    double allocs_per_message = -1.0;
    std::uint64_t frames_assembled = 0;
    std::uint64_t wait_syscalls = 0;
    std::uint64_t read_syscalls = 0;
    std::uint64_t send_sqes = 0;
};

struct BackendCompare {
    bool ran = false; ///< false: kernel denies io_uring, rung skipped
    BackendLeg epoll;
    BackendLeg uring;
};

BackendCompare run_backend_compare(std::size_t rounds, std::size_t warmup);


struct RungResult {
    rt::StatsSummary stats; ///< per-message round-trip latency (ns)
    double allocs_per_message = 0.0;
    std::size_t reactor_threads = 0; ///< 0 for thread-per-wire rungs
    std::uint64_t frames_assembled = 0;
    std::uint64_t messages = 0;
};

/// Send kBurst requests per wire, then collect the echoes (per-wire
/// FIFO); the round's elapsed time divided by the message count is the
/// per-message cost at that fan-in.
std::int64_t run_round(WireFarm& farm,
                       const std::vector<std::uint8_t>& request) {
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& c : farm.clients) {
        for (std::size_t b = 0; b < kBurst; ++b) c->send_frame(request);
    }
    for (auto& c : farm.clients) {
        for (std::size_t b = 0; b < kBurst; ++b) {
            if (!c->recv_frame().has_value()) return -1;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
               .count() /
           static_cast<std::int64_t>(farm.clients.size() * kBurst);
}

template <typename Echo>
RungResult run_rung(std::size_t wires, std::size_t rounds, std::size_t warmup) {
    WireFarm farm(wires);
    Echo echo(farm);
    const std::vector<std::uint8_t> request = make_request(kPayload);

    rt::StatsRecorder recorder(rounds);
    std::uint64_t allocs = 0;
    std::uint64_t messages = 0;
    for (std::size_t i = 0; i < warmup + rounds; ++i) {
        const std::uint64_t a0 = g_allocs.load();
        const std::int64_t per_message = run_round(farm, request);
        const std::uint64_t a1 = g_allocs.load();
        if (per_message < 0) break; // a wire died; gates will catch it
        if (i >= warmup) {
            recorder.record(per_message);
            allocs += a1 - a0;
            messages += wires * kBurst;
        }
    }

    RungResult r;
    r.stats = recorder.summarize();
    r.allocs_per_message =
        messages > 0 ? static_cast<double>(allocs) /
                           static_cast<double>(messages * 2) // ping + echo
                     : -1.0;
    r.messages = messages;
    if constexpr (std::is_same_v<Echo, ReactorEcho>) {
        r.reactor_threads = echo.reactor().thread_count();
        r.frames_assembled = echo.reactor().stats().frames_assembled;
    }
    echo.stop(farm);
    for (auto& c : farm.clients) c->close();
    return r;
}

struct GatedTriple {
    rt::StatsSummary tpw8;      ///< thread-per-wire at 8 wires
    rt::StatsSummary tpw64;     ///< thread-per-wire at 64 wires
    rt::StatsSummary reactor64; ///< reactor at 64 wires
};

/// The gated comparison, measured drift-proof: all three assemblies live
/// at once and every sample is an adjacent tpw@8 / tpw@64 / reactor@64
/// round triple, so a slow scheduling window inflates every side instead
/// of whichever rung happened to own it (sequential rungs on a loaded
/// single-core box drift by 2x between windows, which would decide the
/// gate by luck). The tpw@64 leg isolates the fan-in topology cost — the
/// client-side price of driving 64 sockets, paid identically by both
/// server models — from what the gate is actually after: whether the
/// reactor's bounded pool keeps up with 64 dedicated reader threads.
GatedTriple run_gated_triple(std::size_t rounds, std::size_t warmup) {
    WireFarm farm_t8(8);
    ThreadPerWireEcho echo_t8(farm_t8);
    WireFarm farm_t64(64);
    ThreadPerWireEcho echo_t64(farm_t64);
    WireFarm farm_r(64);
    ReactorEcho echo_r(farm_r);
    const std::vector<std::uint8_t> request = make_request(kPayload);

    const bool probe = std::getenv("COMPADRES_FANIN_PROBE") != nullptr;
    auto csw = [] {
        struct rusage ru;
        getrusage(RUSAGE_SELF, &ru);
        return ru.ru_nvcsw + ru.ru_nivcsw;
    };
    long csw_t8 = 0, csw_t64 = 0, csw_r = 0;

    rt::StatsRecorder rec_t8(rounds);
    rt::StatsRecorder rec_t64(rounds);
    rt::StatsRecorder rec_r(rounds);
    for (std::size_t i = 0; i < warmup + rounds; ++i) {
        long c0 = probe ? csw() : 0;
        const std::int64_t t8 = run_round(farm_t8, request);
        long c1 = probe ? csw() : 0;
        const std::int64_t t64 = run_round(farm_t64, request);
        long c2 = probe ? csw() : 0;
        const std::int64_t r = run_round(farm_r, request);
        long c3 = probe ? csw() : 0;
        if (t8 < 0 || t64 < 0 || r < 0) break;
        if (i >= warmup) {
            rec_t8.record(t8);
            rec_t64.record(t64);
            rec_r.record(r);
            csw_t8 += c1 - c0;
            csw_t64 += c2 - c1;
            csw_r += c3 - c2;
        }
    }
    if (probe) {
        auto sum_stats = [](WireFarm& farm) {
            net::TransportStats total;
            for (auto& s : farm.servers) {
                const net::TransportStats st = s->stats();
                total.frames_sent += st.frames_sent;
                total.send_syscalls += st.send_syscalls;
                total.send_batches += st.send_batches;
            }
            return total;
        };
        const net::TransportStats s8 = sum_stats(farm_t8);
        const net::TransportStats s64 = sum_stats(farm_t64);
        const net::TransportStats sr = sum_stats(farm_r);
        const net::ReactorStats rs = echo_r.reactor().stats();
        std::fprintf(stderr,
                     "probe tpw8:  csw %ld  sent %llu syscalls %llu\n"
                     "probe tpw64: csw %ld  sent %llu syscalls %llu\n"
                     "probe rct64: csw %ld  sent %llu syscalls %llu "
                     "batches %llu wakeups %llu assembled %llu\n",
                     csw_t8, (unsigned long long)s8.frames_sent,
                     (unsigned long long)s8.send_syscalls, csw_t64,
                     (unsigned long long)s64.frames_sent,
                     (unsigned long long)s64.send_syscalls, csw_r,
                     (unsigned long long)sr.frames_sent,
                     (unsigned long long)sr.send_syscalls,
                     (unsigned long long)sr.send_batches,
                     (unsigned long long)rs.command_wakeups,
                     (unsigned long long)rs.frames_assembled);
    }
    GatedTriple triple;
    triple.tpw8 = rec_t8.summarize();
    triple.tpw64 = rec_t64.summarize();
    triple.reactor64 = rec_r.summarize();
    echo_r.stop(farm_r);
    echo_t64.stop(farm_t64);
    echo_t8.stop(farm_t8);
    for (auto& c : farm_t8.clients) c->close();
    for (auto& c : farm_t64.clients) c->close();
    for (auto& c : farm_r.clients) c->close();
    return triple;
}

/// The PR-10 gate rung: the same 64-wire echo assembly twice — once on
/// the epoll pool, once on the io_uring pool — with rounds interleaved
/// so scheduler drift hits both legs alike (same discipline as the
/// thread-per-wire gated triple). Latency must not regress and the
/// syscalls-per-frame metrics must drop on both directions.
BackendCompare run_backend_compare(std::size_t rounds, std::size_t warmup) {
    BackendCompare out;
    if (!net::uring_available()) return out;

    WireFarm farm_e(64);
    net::ReactorOptions epoll_opts;
    epoll_opts.backend = net::ReactorBackend::kEpoll;
    ReactorEcho echo_e(farm_e, epoll_opts);
    WireFarm farm_u(64);
    net::ReactorOptions uring_opts;
    uring_opts.backend = net::ReactorBackend::kUring;
    uring_opts.uring_buffers = 256; // 64 wires share the provided ring
    ReactorEcho echo_u(farm_u, uring_opts);
    if (std::strcmp(echo_u.reactor().backend_name(), "uring") != 0) {
        // Probe passed but a loop still fell back (seccomp on a later
        // feature): treat as unavailable rather than comparing epoll to
        // itself.
        echo_u.stop(farm_u);
        echo_e.stop(farm_e);
        for (auto& c : farm_e.clients) c->close();
        for (auto& c : farm_u.clients) c->close();
        return out;
    }
    out.ran = true;

    const std::vector<std::uint8_t> request = make_request(kPayload);
    rt::StatsRecorder rec_e(rounds);
    rt::StatsRecorder rec_u(rounds);
    std::uint64_t allocs_e = 0, allocs_u = 0, messages = 0;
    for (std::size_t i = 0; i < warmup + rounds; ++i) {
        const std::uint64_t a0 = g_allocs.load();
        const std::int64_t e = run_round(farm_e, request);
        const std::uint64_t a1 = g_allocs.load();
        const std::int64_t u = run_round(farm_u, request);
        const std::uint64_t a2 = g_allocs.load();
        if (e < 0 || u < 0) break;
        if (i >= warmup) {
            rec_e.record(e);
            rec_u.record(u);
            allocs_e += a1 - a0;
            allocs_u += a2 - a1;
            messages += 64 * kBurst;
        }
    }

    auto finish = [messages](ReactorEcho& echo, WireFarm& farm,
                             rt::StatsRecorder& rec, std::uint64_t allocs) {
        BackendLeg leg;
        leg.lat = rec.summarize();
        const net::ReactorStats rs = echo.reactor().stats();
        leg.frames_assembled = rs.frames_assembled;
        leg.wait_syscalls = rs.wait_syscalls;
        leg.read_syscalls = rs.read_syscalls;
        leg.send_sqes = rs.send_sqes;
        leg.loop_syscalls_per_frame = rs.loop_syscalls_per_frame();
        std::uint64_t sent = 0, syscalls = 0;
        for (auto& s : farm.servers) {
            const net::TransportStats st = s->stats();
            sent += st.frames_sent;
            syscalls += st.send_syscalls;
        }
        leg.server_send_syscalls_per_frame =
            sent > 0 ? static_cast<double>(syscalls) /
                           static_cast<double>(sent)
                     : -1.0;
        leg.allocs_per_message =
            messages > 0 ? static_cast<double>(allocs) /
                               static_cast<double>(messages * 2)
                         : -1.0;
        return leg;
    };
    out.epoll = finish(echo_e, farm_e, rec_e, allocs_e);
    out.uring = finish(echo_u, farm_u, rec_u, allocs_u);

    echo_u.stop(farm_u);
    echo_e.stop(farm_e);
    for (auto& c : farm_e.clients) c->close();
    for (auto& c : farm_u.clients) c->close();
    return out;
}

struct BurstResult {
    double syscalls_per_frame = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t max_batch_frames = 0;
    std::uint64_t writable_events = 0;
};

/// The PR-3 syscall-coalescing gate, re-run with the *sending* transport
/// owned by a reactor: bounded socket buffers force the coalescer to park
/// on EAGAIN and resume via EPOLLOUT instead of blocking in sendmsg, and
/// batching across those parks must still keep syscalls under one per
/// frame.
BurstResult run_reactor_burst() {
    net::TcpOptions bounded;
    bounded.send_buffer_bytes = 16 * 1024;
    bounded.recv_buffer_bytes = 16 * 1024;
    net::TcpAcceptor acceptor(0, bounded);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    auto client =
        net::tcp_connect("127.0.0.1", acceptor.bound_port(), bounded);
    accept_thread.join();

    net::Reactor reactor;
    const std::uint64_t wire =
        reactor.register_wire(*client, [](net::FrameBuffer) {});

    cdr::RequestHeader req;
    req.object_key = "burst";
    req.operation = "op";
    std::vector<std::uint8_t> payload(4096, 0x5A);
    const std::vector<std::uint8_t> frame =
        cdr::encode_request(req, payload.data(), payload.size());

    constexpr int kSenders = 4;
    constexpr int kPerSender = 500;
    std::vector<std::thread> senders;
    for (int t = 0; t < kSenders; ++t) {
        senders.emplace_back([&client, &frame] {
            for (int i = 0; i < kPerSender; ++i) client->send_frame(frame);
        });
    }
    // A delayed reader lets the bounded socket back up, so the coalescer
    // parks and the reactor drives the resumptions.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int i = 0; i < kSenders * kPerSender; ++i) {
        if (!server_side->recv_frame().has_value()) break;
    }
    for (auto& s : senders) s.join();
    reactor.deregister_wire(wire);

    const net::TransportStats stats = client->stats();
    BurstResult r;
    r.frames = stats.frames_sent;
    r.max_batch_frames = stats.max_batch_frames;
    r.syscalls_per_frame = static_cast<double>(stats.send_syscalls) /
                           static_cast<double>(stats.frames_sent);
    r.writable_events = reactor.stats().writable_events;
    return r;
}

void print_row(const char* model, std::size_t wires,
               const rt::StatsSummary& s) {
    std::printf("%-16s %5zu %10.2f %10.2f %10.2f %10.2f\n", model, wires,
                static_cast<double>(s.median) / 1000.0,
                static_cast<double>(s.p90) / 1000.0,
                static_cast<double>(s.p99) / 1000.0,
                static_cast<double>(s.max) / 1000.0);
}

void emit_rung(std::FILE* f, const char* model, std::size_t wires,
               const RungResult& r, bool last) {
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"wires\": %zu, \"p50_ns\": %lld, "
                 "\"p90_ns\": %lld, \"p99_ns\": %lld, \"max_ns\": %lld, "
                 "\"reactor_threads\": %zu}%s\n",
                 model, wires, static_cast<long long>(r.stats.median),
                 static_cast<long long>(r.stats.p90),
                 static_cast<long long>(r.stats.p99),
                 static_cast<long long>(r.stats.max), r.reactor_threads,
                 last ? "" : ",");
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = "BENCH_fanin.json";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            json_path = argv[i];
        }
    }
    const std::size_t rounds = smoke ? 60 : 400;
    const std::size_t warmup = rounds / 5;
    std::printf("=== Fan-in round-trip: reactor vs thread-per-wire ===\n");
    std::printf("%zu rounds per rung, %zu B payload%s\n\n", rounds, kPayload,
                smoke ? " (smoke)" : "");

    // Pre-warm the frame pool past peak demand (one request and one echo
    // frame in flight per wire, both directions) so steady state never
    // allocates — the initialization-time preallocation a real-time
    // deployment would do.
    net::FrameBufferPool::global().prewarm(512, 4 * 64);

    RungResult tpw[kWireCountRungs];
    RungResult reactor[kWireCountRungs];
    for (std::size_t i = 0; i < kWireCountRungs; ++i) {
        tpw[i] = run_rung<ThreadPerWireEcho>(kWireCounts[i], rounds, warmup);
        reactor[i] = run_rung<ReactorEcho>(kWireCounts[i], rounds, warmup);
    }

    std::printf("%-16s %5s %10s %10s %10s %10s\n", "Model", "wires",
                "p50(us)", "p90(us)", "p99(us)", "max(us)");
    for (std::size_t i = 0; i < kWireCountRungs; ++i) {
        print_row("thread-per-wire", kWireCounts[i], tpw[i].stats);
        print_row("reactor", kWireCounts[i], reactor[i].stats);
    }

    const RungResult& reactor64 = reactor[kWireCountRungs - 1];
    std::printf("\nreactor at 64 wires: %zu loop threads, %.4f allocs per "
                "message steady state\n",
                reactor64.reactor_threads, reactor64.allocs_per_message);

    const GatedTriple gated = run_gated_triple(rounds, warmup);
    std::printf("gated (interleaved): reactor@64 p50 %.2f us / p99 %.2f us "
                "vs thread-per-wire@64 p50 %.2f us / p99 %.2f us "
                "vs thread-per-wire@8 p50 %.2f us / p99 %.2f us\n",
                static_cast<double>(gated.reactor64.median) / 1000.0,
                static_cast<double>(gated.reactor64.p99) / 1000.0,
                static_cast<double>(gated.tpw64.median) / 1000.0,
                static_cast<double>(gated.tpw64.p99) / 1000.0,
                static_cast<double>(gated.tpw8.median) / 1000.0,
                static_cast<double>(gated.tpw8.p99) / 1000.0);

    const BackendCompare backends = run_backend_compare(rounds, warmup);
    if (backends.ran) {
        std::printf(
            "backends (interleaved, 64 wires): "
            "uring p50 %.2f us / p99 %.2f us, %.4f loop syscalls/frame, "
            "%.4f server sendmsg/frame vs "
            "epoll p50 %.2f us / p99 %.2f us, %.4f loop syscalls/frame, "
            "%.4f server sendmsg/frame\n",
            static_cast<double>(backends.uring.lat.median) / 1000.0,
            static_cast<double>(backends.uring.lat.p99) / 1000.0,
            backends.uring.loop_syscalls_per_frame,
            backends.uring.server_send_syscalls_per_frame,
            static_cast<double>(backends.epoll.lat.median) / 1000.0,
            static_cast<double>(backends.epoll.lat.p99) / 1000.0,
            backends.epoll.loop_syscalls_per_frame,
            backends.epoll.server_send_syscalls_per_frame);
    } else {
        std::printf("backends: kernel denies io_uring — epoll-vs-uring rung "
                    "skipped (gates vacuously pass)\n");
    }

    const BurstResult burst = run_reactor_burst();
    std::printf("reactor-mode burst: %.3f syscalls/frame (max batch %llu, "
                "%llu writable events)\n",
                burst.syscalls_per_frame,
                static_cast<unsigned long long>(burst.max_batch_frames),
                static_cast<unsigned long long>(burst.writable_events));

    if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f, "{\n  \"benchmark\": \"fanin_roundtrip\",\n");
        std::fprintf(f, "  \"rounds_per_rung\": %zu,\n", rounds);
        std::fprintf(f, "  \"payload_bytes\": %zu,\n", kPayload);
        std::fprintf(f, "  \"rungs\": [\n");
        for (std::size_t i = 0; i < kWireCountRungs; ++i) {
            emit_rung(f, "thread_per_wire", kWireCounts[i], tpw[i], false);
            emit_rung(f, "reactor", kWireCounts[i], reactor[i],
                      i + 1 == kWireCountRungs);
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"reactor_threads_at_64\": %zu,\n",
                     reactor64.reactor_threads);
        std::fprintf(f,
                     "  \"gated_interleaved\": {\"reactor64_p50_ns\": %lld, "
                     "\"reactor64_p99_ns\": %lld, \"tpw64_p50_ns\": %lld, "
                     "\"tpw64_p99_ns\": %lld, \"tpw8_p50_ns\": %lld, "
                     "\"tpw8_p99_ns\": %lld},\n",
                     static_cast<long long>(gated.reactor64.median),
                     static_cast<long long>(gated.reactor64.p99),
                     static_cast<long long>(gated.tpw64.median),
                     static_cast<long long>(gated.tpw64.p99),
                     static_cast<long long>(gated.tpw8.median),
                     static_cast<long long>(gated.tpw8.p99));
        if (backends.ran) {
            auto emit_leg = [f](const char* name, const BackendLeg& leg,
                                bool last) {
                std::fprintf(
                    f,
                    "    \"%s\": {\"p50_ns\": %lld, \"p99_ns\": %lld, "
                    "\"loop_syscalls_per_frame\": %.4f, "
                    "\"server_send_syscalls_per_frame\": %.4f, "
                    "\"allocs_per_message\": %.4f, \"frames_assembled\": "
                    "%llu, \"wait_syscalls\": %llu, \"read_syscalls\": %llu, "
                    "\"send_sqes\": %llu}%s\n",
                    name, static_cast<long long>(leg.lat.median),
                    static_cast<long long>(leg.lat.p99),
                    leg.loop_syscalls_per_frame,
                    leg.server_send_syscalls_per_frame, leg.allocs_per_message,
                    static_cast<unsigned long long>(leg.frames_assembled),
                    static_cast<unsigned long long>(leg.wait_syscalls),
                    static_cast<unsigned long long>(leg.read_syscalls),
                    static_cast<unsigned long long>(leg.send_sqes),
                    last ? "" : ",");
            };
            std::fprintf(f, "  \"backend_compare\": {\n    \"wires\": 64,\n");
            emit_leg("epoll", backends.epoll, false);
            emit_leg("uring", backends.uring, true);
            std::fprintf(f, "  },\n");
        } else {
            std::fprintf(f, "  \"backend_compare\": {\"skipped\": "
                            "\"io_uring unavailable\"},\n");
        }
        std::fprintf(f, "  \"allocs_per_message_steady_state\": %.4f,\n",
                     reactor64.allocs_per_message);
        std::fprintf(f,
                     "  \"reactor_burst\": {\"syscalls_per_frame\": %.3f, "
                     "\"max_batch_frames\": %llu, \"writable_events\": "
                     "%llu}\n}\n",
                     burst.syscalls_per_frame,
                     static_cast<unsigned long long>(burst.max_batch_frames),
                     static_cast<unsigned long long>(burst.writable_events));
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
    }

    bool ok = true;
    // Gate 1: heavy fan-in runs on a bounded pool.
    if (reactor64.reactor_threads == 0 || reactor64.reactor_threads > 4) {
        std::fprintf(stderr,
                     "FAIL: 64 wires served by %zu reactor threads (want "
                     "1..4)\n",
                     reactor64.reactor_threads);
        ok = false;
    }
    if (reactor64.frames_assembled == 0) {
        std::fprintf(stderr, "FAIL: reactor assembled no frames at 64 wires\n");
        ok = false;
    }
    // Gate 2: the reactor's frame path stays allocation-free in steady
    // state (sanitizer runtimes allocate behind the scenes; plain builds
    // only).
    if (!COMPADRES_UNDER_SANITIZER &&
        reactor64.allocs_per_message != 0.0) {
        std::fprintf(stderr,
                     "FAIL: reactor path allocated %.4f times per message in "
                     "steady state at 64 wires (want 0)\n",
                     reactor64.allocs_per_message);
        ok = false;
    }
    // Gate 3: syscall coalescing survives the move to non-blocking
    // EPOLLOUT-resumed writes.
    if (burst.syscalls_per_frame >= 1.0) {
        std::fprintf(stderr,
                     "FAIL: reactor-mode burst made %.3f syscalls per frame "
                     "(want < 1)\n",
                     burst.syscalls_per_frame);
        ok = false;
    }
    // Gate 4 (full runs on plain builds only — smoke samples and
    // sanitizer timing are noise): multiplexing 64 wires onto the bounded
    // pool is no worse than thread-per-wire at 8, judged on the
    // interleaved measurement. The bound is the *larger* of the tpw@8 and
    // tpw@64 legs: the client harness pays a topology cost for driving 64
    // sockets that is identical under both server models (the tpw@64 leg
    // measures exactly that cost, interleaved round-for-round), so on a
    // box where the harness itself is the bottleneck — one core running
    // client and servers serialized — the reactor is held to matching 64
    // dedicated reader threads rather than to out-running its own
    // client. On multi-core hosts tpw@8 is the smaller leg and the
    // cross-count comparison binds as written. A 5% band absorbs
    // scheduler noise that interleaving cannot cancel.
    if (!smoke && !COMPADRES_UNDER_SANITIZER) {
        const auto bound = [](std::int64_t tpw8, std::int64_t tpw64) {
            const std::int64_t base = tpw8 > tpw64 ? tpw8 : tpw64;
            return base + base / 20;
        };
        const std::int64_t p50_bound =
            bound(gated.tpw8.median, gated.tpw64.median);
        const std::int64_t p99_bound = bound(gated.tpw8.p99, gated.tpw64.p99);
        if (gated.reactor64.median > p50_bound) {
            std::fprintf(stderr,
                         "FAIL: reactor p50 at 64 wires (%lld ns) exceeds "
                         "thread-per-wire bound (%lld ns; tpw@8 %lld, "
                         "tpw@64 %lld)\n",
                         static_cast<long long>(gated.reactor64.median),
                         static_cast<long long>(p50_bound),
                         static_cast<long long>(gated.tpw8.median),
                         static_cast<long long>(gated.tpw64.median));
            ok = false;
        }
        if (gated.reactor64.p99 > p99_bound) {
            std::fprintf(stderr,
                         "FAIL: reactor p99 at 64 wires (%lld ns) exceeds "
                         "thread-per-wire bound (%lld ns; tpw@8 %lld, "
                         "tpw@64 %lld)\n",
                         static_cast<long long>(gated.reactor64.p99),
                         static_cast<long long>(p99_bound),
                         static_cast<long long>(gated.tpw8.p99),
                         static_cast<long long>(gated.tpw64.p99));
            ok = false;
        }
    }
    // Gate 5 (only where the kernel grants io_uring; skipping is a pass —
    // epoll stays the portable default): at 64 wires the uring backend
    // must (a) hold p50/p99 within the same 5% noise band of epoll,
    // (b) make strictly fewer loop-side syscalls per frame (multishot
    // recv replaces the read pump), (c) make strictly fewer write-side
    // syscalls per echoed frame (gather-send SQEs replace sendmsg), and
    // (d) preserve the zero-allocation steady state. Latency binds on
    // full plain runs only; the syscall ratios are deterministic enough
    // to bind everywhere.
    if (backends.ran) {
        if (!smoke && !COMPADRES_UNDER_SANITIZER) {
            // Unlike the reactor-vs-thread-per-wire gate (where the two
            // sides differ by 2x), the backends are designed to tie on
            // latency — the win is syscalls. Two near-identical
            // distributions make a tight p99 band a coin flip on a
            // single-core box (one preemption in the tail decides it),
            // so the median binds at 5% and the tail at 20%.
            if (backends.uring.lat.median >
                backends.epoll.lat.median + backends.epoll.lat.median / 20) {
                std::fprintf(stderr,
                             "FAIL: uring p50 at 64 wires (%lld ns) exceeds "
                             "epoll p50 (%lld ns) + 5%%\n",
                             static_cast<long long>(backends.uring.lat.median),
                             static_cast<long long>(backends.epoll.lat.median));
                ok = false;
            }
            if (backends.uring.lat.p99 >
                backends.epoll.lat.p99 + backends.epoll.lat.p99 / 5) {
                std::fprintf(stderr,
                             "FAIL: uring p99 at 64 wires (%lld ns) exceeds "
                             "epoll p99 (%lld ns) + 20%%\n",
                             static_cast<long long>(backends.uring.lat.p99),
                             static_cast<long long>(backends.epoll.lat.p99));
                ok = false;
            }
        }
        if (backends.uring.loop_syscalls_per_frame >=
            backends.epoll.loop_syscalls_per_frame) {
            std::fprintf(stderr,
                         "FAIL: uring loop syscalls/frame (%.4f) not below "
                         "epoll (%.4f)\n",
                         backends.uring.loop_syscalls_per_frame,
                         backends.epoll.loop_syscalls_per_frame);
            ok = false;
        }
        if (backends.uring.server_send_syscalls_per_frame >=
            backends.epoll.server_send_syscalls_per_frame) {
            std::fprintf(stderr,
                         "FAIL: uring server sendmsg/frame (%.4f) not below "
                         "epoll (%.4f)\n",
                         backends.uring.server_send_syscalls_per_frame,
                         backends.epoll.server_send_syscalls_per_frame);
            ok = false;
        }
        if (!COMPADRES_UNDER_SANITIZER &&
            backends.uring.allocs_per_message != 0.0) {
            std::fprintf(stderr,
                         "FAIL: uring echo path allocated %.4f times per "
                         "message in steady state (want 0)\n",
                         backends.uring.allocs_per_message);
            ok = false;
        }
    }
    std::printf("%s\n", ok ? "fanin gates PASSED" : "fanin gates FAILED");
    return ok ? 0 : 1;
}
