// Table 2 reproduction: median and jitter of the simple co-located
// client/server round trip on the three platforms of §3.1.
//
// Paper (on 2007 hardware/VMs):
//   Platform    behaviour
//   Mackinac    RT VM on non-RT SunOS — jitter 92 us (OS noise inflates max)
//   TimeSys RI  RT VM on RT Linux     — jitter 55 us (quietest)
//   JDK 1.4     plain Java + GC       — jitter large (GC preempts the app)
//
// The VMs cannot run here, so each platform's causal mechanism is injected
// (see src/simenv/). The *shape* to reproduce: JDK jitter >> Mackinac >
// TimeSys, RT platforms well under the 10 ms acceptability bound.
#include "common.hpp"

#include <cstdio>

using namespace compadres;

int main() {
    const std::size_t samples = bench::sample_count();
    const std::size_t warmup = bench::warmup_count();
    std::printf("=== Table 2: round-trip median/jitter per platform ===\n");
    std::printf("samples/platform: %zu steady-state (after %zu warm-up), "
                "rt-denied threads so far: %lld\n\n",
                samples, warmup, static_cast<long long>(rt::rt_denied_count()));

    struct Row {
        const char* name;
        rt::StatsSummary summary;
        std::int64_t gc_pauses;
        std::int64_t noise_events;
    };
    std::vector<Row> rows;

    // The three platforms of the paper's Table 2, plus an RTGC row — the
    // paper's s1 alternative (real-time garbage collection), included as an
    // extension so the RTSJ-vs-RTGC trade-off is visible in the same table.
    for (const auto platform :
         {simenv::Platform::kMackinac, simenv::Platform::kTimesysRI,
          simenv::Platform::kJdk14, simenv::Platform::kRtgc}) {
        simenv::PlatformRuntime runtime(
            simenv::PlatformProfile::for_platform(platform), 42);
        bench::PlatformInstaller install(runtime);
        bench::Fig6Harness harness;
        auto recorder = harness.measure(samples, warmup);
        rows.push_back({simenv::to_string(platform), recorder.summarize(),
                        runtime.gc_pause_count(), runtime.noise_event_count()});
    }

    std::printf("%-12s %12s %12s %12s %12s\n", "Platform", "Median(us)",
                "Jitter(us)", "GC pauses", "OS noise");
    for (const Row& row : rows) {
        std::printf("%-12s %12.1f %12.1f %12lld %12lld\n", row.name,
                    static_cast<double>(row.summary.median) / 1000.0,
                    static_cast<double>(row.summary.jitter) / 1000.0,
                    static_cast<long long>(row.gc_pauses),
                    static_cast<long long>(row.noise_events));
    }

    // Shape assertions (reported, not enforced): the orderings the paper's
    // Table 2 shows.
    const auto jitter = [&](const char* name) {
        for (const Row& row : rows) {
            if (std::string(row.name) == name) return row.summary.jitter;
        }
        return std::int64_t{0};
    };
    std::printf("\nshape check: JDK1.4 jitter > Mackinac jitter: %s\n",
                jitter("JDK1.4") > jitter("Mackinac") ? "yes" : "NO");
    std::printf("shape check: Mackinac jitter > TimesysRI jitter: %s\n",
                jitter("Mackinac") > jitter("TimesysRI") ? "yes" : "NO");
    std::printf("shape check: RT jitters < 10 ms bound: %s\n",
                (jitter("Mackinac") < 10'000'000 &&
                 jitter("TimesysRI") < 10'000'000)
                    ? "yes"
                    : "NO");
    std::printf("shape check (extension): RTGC jitter bounded below JDK1.4: %s\n",
                jitter("RTGC") < jitter("JDK1.4") ? "yes" : "NO");
    std::printf("shape check (extension): RTGC jitter > TimesysRI (collector "
                "overhead): %s\n",
                jitter("RTGC") > jitter("TimesysRI") ? "yes" : "NO");
    return 0;
}
