// Fig. 9 reproduction: the distribution of round-trip latencies per
// platform — min / median / max whiskers plus an ASCII histogram, the
// series behind the paper's box plot.
#include "common.hpp"
#include "core/hop_trace.hpp"

#include <algorithm>
#include <cstdio>

using namespace compadres;

namespace {

void print_histogram(const rt::StatsRecorder& recorder,
                     const rt::StatsSummary& s) {
    constexpr std::size_t kBuckets = 16;
    const auto hist = recorder.histogram(s.min, s.max + 1, kBuckets);
    const std::size_t peak = *std::max_element(hist.begin(), hist.end());
    const double width =
        static_cast<double>(s.max + 1 - s.min) / static_cast<double>(kBuckets);
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const double lo_us =
            (static_cast<double>(s.min) + width * static_cast<double>(b)) /
            1000.0;
        const int bar = peak == 0
                            ? 0
                            : static_cast<int>(50.0 *
                                               static_cast<double>(hist[b]) /
                                               static_cast<double>(peak));
        std::printf("  %9.1fus |%-50.*s| %zu\n", lo_us, bar,
                    "##################################################",
                    hist[b]);
    }
}

} // namespace

int main() {
    const std::size_t samples = bench::sample_count();
    const std::size_t warmup = bench::warmup_count();
    std::printf("=== Fig. 9: round-trip latency distribution, single host ===\n");
    std::printf("samples/platform: %zu steady-state\n", samples);

    for (const auto platform :
         {simenv::Platform::kMackinac, simenv::Platform::kTimesysRI,
          simenv::Platform::kJdk14}) {
        simenv::PlatformRuntime runtime(
            simenv::PlatformProfile::for_platform(platform), 42);
        bench::PlatformInstaller install(runtime);
        bench::Fig6Harness harness;
        auto recorder = harness.measure(samples, warmup);
        const auto s = recorder.summarize();
        std::printf("\n--- %s ---\n", simenv::to_string(platform));
        std::printf("  min=%.1fus  p50=%.1fus  p90=%.1fus  p99=%.1fus  "
                    "max=%.1fus  jitter=%.1fus\n",
                    static_cast<double>(s.min) / 1000.0,
                    static_cast<double>(s.median) / 1000.0,
                    static_cast<double>(s.p90) / 1000.0,
                    static_cast<double>(s.p99) / 1000.0,
                    static_cast<double>(s.max) / 1000.0,
                    static_cast<double>(s.jitter) / 1000.0);
        print_histogram(recorder, s);
    }
    std::printf("\nexpected shape (paper Fig. 9): tight whiskers for the RT\n"
                "platforms, a long upper whisker for JDK 1.4 where collector\n"
                "pauses preempt the application threads.\n");

    // Where does a round trip go? Hop-level tracing splits each port's
    // latency into queue wait (enqueue -> worker pickup) vs handler run
    // time — the breakdown behind the box plots above.
    std::printf("\n=== Per-port breakdown: queue wait vs handler time ===\n");
    core::HopTraceRecorder recorder;
    core::hooks::set_sink(&recorder);
    {
        bench::Fig6Harness harness;
        harness.measure(samples, warmup);
    }
    core::hooks::clear();
    std::printf("%-16s %14s %14s %14s\n", "Port", "queue-wait p50",
                "handler p50", "total p50");
    for (const auto& port : recorder.ports()) {
        const auto qw = recorder.queue_wait_summary(port);
        const auto hd = recorder.handler_summary(port);
        const auto tot = recorder.total_summary(port);
        std::printf("%-16s %12.2fus %12.2fus %12.2fus\n", port.c_str(),
                    static_cast<double>(qw.median) / 1000.0,
                    static_cast<double>(hd.median) / 1000.0,
                    static_cast<double>(tot.median) / 1000.0);
    }
    return 0;
}
