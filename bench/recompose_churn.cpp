// Live-recomposition churn bench + gates for the TransmissionPolicy seam.
//
// The scenario the quiesce-reroute-resume protocol exists for: a running
// ping/pong pipeline over a 2-band lane group whose ping route is
// repoliced every 50 ms (Block<->Ring, band 1<->0, coalescing on/off)
// while traffic keeps flowing. Two phases run back to back in the same
// process so the gate compares like with like:
//
//   baseline — round-trips with no recomposition,
//   churn    — the same round-trips while a control thread calls
//              RemoteBridge::repolicy_route on the live route at a fixed
//              cadence, recording each quiesce->resume pause.
//
// The binary is also a correctness gate (run by the `recompose_bench`
// tool target, and in --smoke form by ctest):
//   * zero messages lost or duplicated across the churn phase (every ping
//     produces exactly one pong),
//   * frames_dropped growth across both bridges == 0 — the drain-swap-
//     resume window never drops an in-flight frame,
//   * steady-state churn p50 within 5% of the same-run no-recompose
//     baseline p50 (full runs on plain builds only; timing under --smoke
//     or sanitizers is noise),
//   * the quiesce->resume pause p99 is reported (always, never gated —
//     it is the number an operator plans a maintenance window around).
// Results land in BENCH_recompose.json.
#include "common.hpp"

#include "core/recompose.hpp"
#include "net/lane_group.hpp"
#include "remote/bridge.hpp"
#include "rt/stats.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#if !defined(COMPADRES_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#endif
#ifndef COMPADRES_UNDER_SANITIZER
#define COMPADRES_UNDER_SANITIZER 0
#endif

namespace {

using namespace compadres;

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.min_threads = cfg.max_threads = 0;
    return cfg;
}

/// A.ping -> bridge -> B (echo) -> bridge -> A.pong over a real 2-band
/// TCP lane group, so band repolicies move frames between actual wires.
class ChurnHarness {
public:
    ChurnHarness() {
        core::register_builtin_message_types();
        remote::register_builtin_serializers();

        net::LaneGroupOptions opts;
        opts.bands = 2;
        net::LaneAcceptor acceptor(0, opts);
        std::unique_ptr<net::LaneGroup> server;
        std::thread accept_thread([&] { server = acceptor.accept(); });
        auto client =
            net::lane_connect("127.0.0.1", acceptor.bound_port(), opts);
        accept_thread.join();

        bridge_a_ = std::make_unique<remote::RemoteBridge>(
            app_a_, std::move(client), "churn-a");
        bridge_b_ = std::make_unique<remote::RemoteBridge>(
            app_b_, std::move(server), "churn-b");

        auto& pinger = app_a_.create_immortal<core::Component>("Pinger");
        ping_out_ = &pinger.add_out_port<core::MyInteger>("out", "MyInteger");
        core::TransmissionPolicy bulk;
        bulk.band = 1;
        bridge_a_->export_route(*ping_out_, "ping", bulk);
        auto& pong_in = pinger.add_in_port<core::MyInteger>(
            "back", "MyInteger", sync_port(),
            [this](core::MyInteger&, core::Smm&) {
                // Notify under the mutex: the waiter may destroy the
                // harness the moment the predicate holds, so the signal
                // must happen-before our unlock.
                std::lock_guard lk(mu_);
                ++pongs_;
                cv_.notify_one();
            });
        bridge_a_->import_route("pong", pong_in);

        auto& echo = app_b_.create_immortal<core::Component>("Echo");
        echo_out_ = &echo.add_out_port<core::MyInteger>("out", "MyInteger");
        bridge_b_->export_route(*echo_out_, "pong");
        auto& echo_in = echo.add_in_port<core::MyInteger>(
            "in", "MyInteger", sync_port(),
            [this](core::MyInteger& m, core::Smm&) {
                core::MyInteger* fwd = echo_out_->get_message();
                fwd->value = m.value;
                echo_out_->send(fwd, 5);
            });
        bridge_b_->import_route("ping", echo_in);

        bridge_a_->start();
        bridge_b_->start();
    }

    ~ChurnHarness() {
        // Stop frame delivery (reactor callbacks into the pong handler)
        // before mu_/cv_ — declared below the bridges, destroyed first —
        // go away.
        bridge_b_.reset();
        bridge_a_.reset();
    }

    /// One measured round trip (one message in flight).
    std::int64_t round_trip() {
        const std::uint64_t want = ++pings_;
        const std::int64_t t0 = rt::now_ns();
        core::MyInteger* msg = ping_out_->get_message();
        msg->value = static_cast<int>(want);
        ping_out_->send(msg, 5);
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return pongs_ >= want; });
        return rt::now_ns() - t0;
    }

    /// Alternate the live ping route between its bulk and urgent shapes;
    /// returns the quiesce->resume pause in nanoseconds.
    std::uint64_t flip_policy() {
        core::TransmissionPolicy next;
        if (flips_++ % 2 == 0) {
            next.overflow = core::OverflowPolicy::kRingOverwrite;
            next.band = 0;
            next.coalesce = false;
        } else {
            next.band = 1;
        }
        return bridge_a_->repolicy_route("ping", next);
    }

    std::uint64_t pings() const { return pings_; }
    std::uint64_t pongs() const {
        std::lock_guard lk(mu_);
        return pongs_;
    }
    std::uint64_t frames_dropped() const {
        return bridge_a_->frames_dropped() + bridge_b_->frames_dropped();
    }

private:
    core::Application app_a_{"churn-app-a"};
    core::Application app_b_{"churn-app-b"};
    std::unique_ptr<remote::RemoteBridge> bridge_a_;
    std::unique_ptr<remote::RemoteBridge> bridge_b_;
    core::OutPort<core::MyInteger>* ping_out_ = nullptr;
    core::OutPort<core::MyInteger>* echo_out_ = nullptr;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t pongs_ = 0;
    std::uint64_t pings_ = 0;
    std::uint64_t flips_ = 0;
};

struct PhaseResult {
    rt::StatsSummary stats;
    std::uint64_t messages = 0;
    std::uint64_t lost = 0;
    std::uint64_t dropped_growth = 0;
};

/// Round-trip for `duration_ms` (at least `min_samples` trips). When
/// `churn_every_ms` > 0 a control thread repolicies the live route at
/// that cadence, appending each pause to `pauses`.
PhaseResult run_phase(ChurnHarness& h, std::size_t min_samples,
                      std::size_t warmup, std::int64_t duration_ms,
                      std::int64_t churn_every_ms,
                      std::vector<std::uint64_t>* pauses) {
    const std::uint64_t dropped_before = h.frames_dropped();
    std::atomic<bool> stop_churn{false};
    std::thread churn;
    if (churn_every_ms > 0) {
        churn = std::thread([&] {
            while (!stop_churn.load()) {
                pauses->push_back(h.flip_policy());
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(churn_every_ms));
            }
        });
    }
    rt::StatsRecorder recorder(min_samples + warmup);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(duration_ms);
    std::size_t n = 0;
    while (n < min_samples + warmup ||
           std::chrono::steady_clock::now() < until) {
        recorder.record(h.round_trip());
        ++n;
    }
    if (churn.joinable()) {
        stop_churn.store(true);
        churn.join();
    }
    recorder.discard_warmup(warmup);
    PhaseResult r;
    r.stats = recorder.summarize();
    r.messages = n;
    r.lost = h.pings() - h.pongs(); // round_trip waits: 0 unless broken
    r.dropped_growth = h.frames_dropped() - dropped_before;
    return r;
}

std::uint64_t pct(std::vector<std::uint64_t> v, double q) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

void print_phase(const char* label, const PhaseResult& r) {
    std::printf("%-10s %8llu msgs  p50 %7.2f us  p90 %7.2f us  "
                "p99 %7.2f us  lost %llu  dropped+%llu\n",
                label, static_cast<unsigned long long>(r.messages),
                static_cast<double>(r.stats.median) / 1000.0,
                static_cast<double>(r.stats.p90) / 1000.0,
                static_cast<double>(r.stats.p99) / 1000.0,
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.dropped_growth));
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = "BENCH_recompose.json";
    bool smoke = false;
    bool no_timing = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--no-timing") == 0) {
            // Full-cadence churn with the p50-ratio gate off: what CI runs,
            // where a loaded shared runner would flake any latency ratio.
            no_timing = true;
        } else {
            json_path = argv[i];
        }
    }
    // Full: 5 s per phase, repolicy every 50 ms (~100 recompositions).
    // Smoke: a 250 ms phase with a tight churn cadence so the
    // drain-swap-resume path still runs dozens of times.
    const std::size_t min_samples = smoke ? 300 : bench::sample_count(2'000);
    const std::size_t warmup = smoke ? 30 : min_samples / 5;
    const std::int64_t phase_ms = smoke ? 250 : 5'000;
    const std::int64_t churn_ms = smoke ? 5 : 50;

    std::printf("=== Live recomposition churn: repolicy a route under "
                "traffic ===\n");
    std::printf("2-band lane group, repolicy every %lld ms%s\n\n",
                static_cast<long long>(churn_ms), smoke ? " (smoke)" : "");

    ChurnHarness h;
    std::vector<std::uint64_t> pauses;
    const PhaseResult baseline =
        run_phase(h, min_samples, warmup, phase_ms, 0, nullptr);
    const PhaseResult churn =
        run_phase(h, min_samples, warmup, phase_ms, churn_ms, &pauses);

    print_phase("baseline", baseline);
    print_phase("churn", churn);
    const std::uint64_t pause_p50 = pct(pauses, 50.0);
    const std::uint64_t pause_p99 = pct(pauses, 99.0);
    const std::uint64_t pause_max =
        pauses.empty() ? 0 : *std::max_element(pauses.begin(), pauses.end());
    std::printf("%zu repolicies  pause p50 %.2f us  p99 %.2f us  "
                "max %.2f us\n",
                pauses.size(), static_cast<double>(pause_p50) / 1000.0,
                static_cast<double>(pause_p99) / 1000.0,
                static_cast<double>(pause_max) / 1000.0);

    const double ratio = baseline.stats.median > 0
                             ? static_cast<double>(churn.stats.median) /
                                   static_cast<double>(baseline.stats.median)
                             : 0.0;
    std::printf("churn p50 / baseline p50 = %.3f\n", ratio);

    const bool zero_lost = baseline.lost == 0 && churn.lost == 0;
    const bool zero_dropped =
        baseline.dropped_growth == 0 && churn.dropped_growth == 0;
    const bool churned = !pauses.empty();
    const bool gate_timing =
        !smoke && !no_timing && !COMPADRES_UNDER_SANITIZER;
    const bool p50_ok = !gate_timing || ratio <= 1.05;

    if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"benchmark\": \"recompose_churn\",\n"
            "  \"smoke\": %s,\n"
            "  \"baseline\": {\"messages\": %llu, \"p50_ns\": %lld, "
            "\"p90_ns\": %lld, \"p99_ns\": %lld},\n"
            "  \"churn\": {\"messages\": %llu, \"p50_ns\": %lld, "
            "\"p90_ns\": %lld, \"p99_ns\": %lld},\n"
            "  \"p50_ratio\": %.4f,\n"
            "  \"repolicies\": %zu,\n"
            "  \"pause\": {\"p50_ns\": %llu, \"p99_ns\": %llu, "
            "\"max_ns\": %llu},\n"
            "  \"lost\": %llu,\n"
            "  \"frames_dropped_growth\": %llu,\n"
            "  \"gates\": {\"zero_lost\": %s, \"zero_dropped\": %s, "
            "\"churned\": %s, \"p50_within_5pct\": %s}\n"
            "}\n",
            smoke ? "true" : "false",
            static_cast<unsigned long long>(baseline.messages),
            static_cast<long long>(baseline.stats.median),
            static_cast<long long>(baseline.stats.p90),
            static_cast<long long>(baseline.stats.p99),
            static_cast<unsigned long long>(churn.messages),
            static_cast<long long>(churn.stats.median),
            static_cast<long long>(churn.stats.p90),
            static_cast<long long>(churn.stats.p99), ratio, pauses.size(),
            static_cast<unsigned long long>(pause_p50),
            static_cast<unsigned long long>(pause_p99),
            static_cast<unsigned long long>(pause_max),
            static_cast<unsigned long long>(baseline.lost + churn.lost),
            static_cast<unsigned long long>(baseline.dropped_growth +
                                            churn.dropped_growth),
            zero_lost ? "true" : "false", zero_dropped ? "true" : "false",
            churned ? "true" : "false",
            !gate_timing ? "null" : (ratio <= 1.05 ? "true" : "false"));
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }

    bool ok = true;
    if (!zero_lost) {
        std::fprintf(stderr, "GATE FAIL: messages lost during churn\n");
        ok = false;
    }
    if (!zero_dropped) {
        std::fprintf(stderr, "GATE FAIL: frames_dropped grew during churn\n");
        ok = false;
    }
    if (!churned) {
        std::fprintf(stderr, "GATE FAIL: no repolicy ever ran\n");
        ok = false;
    }
    if (!p50_ok) {
        std::fprintf(stderr,
                     "GATE FAIL: churn p50 %.3fx baseline (limit 1.05x)\n",
                     ratio);
        ok = false;
    }
    std::printf("gates: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
