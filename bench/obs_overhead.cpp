// Observability-plane overhead bench + gates.
//
// The same loopback echo harness as remote_roundtrip, run twice per batch
// pair: once with the observability plane fully off (tracer disabled,
// flight recorder disabled) and once with it on in its deployment shape
// (recorder enabled, 1-in-4 flows sampled — sampled frames pay the
// 16-byte GIOP trailer plus the span-scoped hop/span events). A separate
// trace-everything rung (shift 0, every flow traced) is measured and
// reported but not gated: that is the diagnostic mode. Batches alternate
// off/on within the same time window so scheduler and frequency drift hit
// both variants equally, and the gated number is the median of per-pair
// overhead ratios.
//
// Gates (run by the `obs_bench` tool target, and in --smoke form by ctest):
//   * tracing-enabled p50 is within 5% of tracing-disabled (full runs on
//     plain builds only; timing under --smoke or sanitizers is noise),
//   * steady-state allocations per message == 0 with the recorder and a
//     sampled trace context active (counted by a global operator new
//     override; ring/TLS setup is absorbed in warm-up, as a deployment
//     would during initialization),
//   * a traced round trip stitches: the flight-recorder dump decodes, and
//     one trace id carries span-send and span-recv events across at least
//     two threads (client side and server side of the wire), proving the
//     trailer survives the hop and RemoteBridge reinstalls the context.
// The stitched dump is also rendered through chrome_trace_json to
// BENCH_obs_trace.json — the same Perfetto-loadable output
// tools/compadres-trace produces. Results land in BENCH_obs.json.
#include "common.hpp"

#include "net/frame_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "remote/bridge.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <set>
#include <sstream>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#if !defined(COMPADRES_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#endif
#ifndef COMPADRES_UNDER_SANITIZER
#define COMPADRES_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

// Count every heap allocation in the process so the steady-state gate can
// assert the instrumented hop makes none.
void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(al);
    if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
    return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace compadres;

namespace {

constexpr std::size_t kBatch = 64;  ///< round trips in flight per sample
constexpr std::size_t kPayloadSizes[] = {32, 256};

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.min_threads = cfg.max_threads = 0;
    return cfg;
}

void obs_on(int sample_shift) {
    obs::FlightRecorder::enable();
    obs::Tracer::configure(sample_shift);
}

void obs_off() {
    obs::Tracer::configure(-1);
    obs::Tracer::clear_current();
    obs::FlightRecorder::disable();
}

/// A.ping -> bridge -> B (echo) -> bridge -> A.pong over one loopback wire.
class EchoHarness {
public:
    EchoHarness() {
        core::register_builtin_message_types();
        remote::register_builtin_serializers();
        auto [wire_a, wire_b] = net::make_loopback_pair(256);
        bridge_a_ = std::make_unique<remote::RemoteBridge>(
            app_a_, std::move(wire_a), "obs-a");
        bridge_b_ = std::make_unique<remote::RemoteBridge>(
            app_b_, std::move(wire_b), "obs-b");

        auto& pinger = app_a_.create_immortal<core::Component>("Pinger");
        ping_out_ = &pinger.add_out_port<core::OctetSeq>("out", "OctetSeq");
        bridge_a_->export_route(*ping_out_, "ping");
        auto& pong_in = pinger.add_in_port<core::OctetSeq>(
            "back", "OctetSeq", sync_port(),
            [this](core::OctetSeq&, core::Smm&) {
                bool wake;
                {
                    std::lock_guard lk(mu_);
                    wake = ++pongs_ >= target_.load(std::memory_order_relaxed);
                }
                if (wake) cv_.notify_one();
            });
        bridge_a_->import_route("pong", pong_in);

        auto& echo = app_b_.create_immortal<core::Component>("Echo");
        echo_out_ = &echo.add_out_port<core::OctetSeq>("out", "OctetSeq");
        bridge_b_->export_route(*echo_out_, "pong");
        auto& echo_in = echo.add_in_port<core::OctetSeq>(
            "in", "OctetSeq", sync_port(),
            [this](core::OctetSeq& m, core::Smm&) {
                core::OctetSeq* fwd = echo_out_->get_message();
                fwd->assign(m.data.data(), m.length);
                echo_out_->send(fwd, 5);
            });
        bridge_b_->import_route("ping", echo_in);

        bridge_a_->start();
        bridge_b_->start();
        // The payload bytes are never inspected (length is the knob), so
        // the pools' release scrub would only measure itself.
        ping_out_->pool()->set_scrub_on_release(false);
        echo_out_->pool()->set_scrub_on_release(false);
    }

    void send_ping(std::size_t payload_len) {
        core::OctetSeq* msg = ping_out_->get_message();
        msg->length = payload_len;
        ping_out_->send(msg, 5);
    }

    void set_target(std::uint64_t target) {
        target_.store(target, std::memory_order_relaxed);
    }

    void await_pongs(std::uint64_t target) {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return pongs_ >= target; });
    }

    std::uint64_t pongs() const {
        std::lock_guard lk(mu_);
        return pongs_;
    }

private:
    core::Application app_a_{"obs-app-a"};
    core::Application app_b_{"obs-app-b"};
    std::unique_ptr<remote::RemoteBridge> bridge_a_;
    std::unique_ptr<remote::RemoteBridge> bridge_b_;
    core::OutPort<core::OctetSeq>* ping_out_ = nullptr;
    core::OutPort<core::OctetSeq>* echo_out_ = nullptr;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t pongs_ = 0;
    std::atomic<std::uint64_t> target_{0};
};

struct RungResult {
    rt::StatsSummary off;            ///< per-message ns, plane disabled
    rt::StatsSummary on;             ///< per-message ns, plane fully on
    double overhead_pct = 0.0;       ///< median of per-pair (on-off)/off
    double allocs_per_message = 0.0; ///< steady state, plane on
};

/// One pipelined batch of round trips; returns per-message nanoseconds.
std::int64_t run_batch(EchoHarness& h, std::size_t payload,
                       std::uint64_t& done) {
    done += kBatch;
    h.set_target(done);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kBatch; ++k) h.send_ping(payload);
    h.await_pongs(done);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
               .count() /
           static_cast<std::int64_t>(kBatch);
}

/// Alternate plane-off and plane-on batches in one time window. The
/// allocation counter is read around the on-segment only: that is the
/// configuration the zero-alloc gate is about.
RungResult run_rung(EchoHarness& h, std::size_t payload, std::size_t iters,
                    std::size_t warmup, int sample_shift) {
    rt::StatsRecorder rec_off(iters);
    rt::StatsRecorder rec_on(iters);
    rt::StatsRecorder rec_overhead(iters); // per-pair overhead, ppm
    std::uint64_t done = h.pongs();
    std::uint64_t on_allocs = 0;
    for (std::size_t it = 0; it < warmup + iters; ++it) {
        obs_off();
        const std::int64_t ns_off = run_batch(h, payload, done);
        obs_on(sample_shift);
        const std::uint64_t a0 = g_allocs.load();
        const std::int64_t ns_on = run_batch(h, payload, done);
        const std::uint64_t a1 = g_allocs.load();
        if (it >= warmup) {
            on_allocs += a1 - a0;
            rec_off.record(ns_off);
            rec_on.record(ns_on);
            if (ns_off > 0) {
                rec_overhead.record((ns_on - ns_off) * 1'000'000 / ns_off);
            }
        }
    }
    obs_off();
    RungResult r;
    r.off = rec_off.summarize();
    r.on = rec_on.summarize();
    r.overhead_pct =
        static_cast<double>(rec_overhead.summarize().median) / 10'000.0;
    r.allocs_per_message = static_cast<double>(on_allocs) /
                           static_cast<double>(iters * kBatch);
    return r;
}

struct StitchResult {
    bool decoded = false;       ///< dump parsed back into events
    bool stitched = false;      ///< one trace id spans send+recv on >= 2 tids
    std::size_t events = 0;     ///< decoded event count
    std::size_t span_events = 0;
    std::uint64_t trace_id = 0; ///< the stitched trace id (report only)
    std::size_t perfetto_bytes = 0;
};

/// Run a handful of fully-traced round trips, dump the recorder, and
/// verify that client and server hops of one flow share a trace id. Also
/// renders the dump through chrome_trace_json (what compadres-trace does).
StitchResult run_stitch(EchoHarness& h, const char* perfetto_path) {
    obs::FlightRecorder::enable();
    obs::FlightRecorder::clear();
    obs::Tracer::configure(0);
    obs::Tracer::clear_current();
    std::uint64_t done = h.pongs();
    done += 8;
    h.set_target(done);
    for (int i = 0; i < 8; ++i) {
        obs::Tracer::clear_current(); // each ping starts a fresh trace
        h.send_ping(64);
    }
    h.await_pongs(done);
    obs_off();

    StitchResult r;
    std::ostringstream dump;
    obs::FlightRecorder::dump(dump);
    const std::string bytes = dump.str();
    std::vector<obs::Event> events;
    try {
        events = obs::decode_events(
            reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "stitch: dump failed to decode: %s\n", e.what());
        return r;
    }
    r.decoded = true;
    r.events = events.size();

    // trace id -> {tids seen, send seen, recv seen}
    struct Flow {
        std::set<std::uint32_t> tids;
        bool send = false;
        bool recv = false;
    };
    std::map<std::uint64_t, Flow> flows;
    for (const obs::Event& e : events) {
        if (e.type != obs::EventType::kSpanSend &&
            e.type != obs::EventType::kSpanRecv) {
            continue;
        }
        ++r.span_events;
        Flow& f = flows[e.a];
        f.tids.insert(e.tid);
        if (e.type == obs::EventType::kSpanSend) f.send = true;
        if (e.type == obs::EventType::kSpanRecv) f.recv = true;
    }
    for (const auto& [id, f] : flows) {
        if (f.send && f.recv && f.tids.size() >= 2) {
            r.stitched = true;
            r.trace_id = id;
            break;
        }
    }

    const std::string json = obs::chrome_trace_json(events);
    r.perfetto_bytes = json.size();
    if (std::FILE* f = std::fopen(perfetto_path, "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    }
    return r;
}

void print_row(const char* name, std::size_t payload,
               const rt::StatsSummary& s) {
    std::printf("%-10s %6zu B %10.2f %10.2f %10.2f %10.2f\n", name, payload,
                static_cast<double>(s.median) / 1000.0,
                static_cast<double>(s.p90) / 1000.0,
                static_cast<double>(s.p99) / 1000.0,
                static_cast<double>(s.max) / 1000.0);
}

void emit_stats(std::FILE* f, const rt::StatsSummary& s) {
    std::fprintf(f,
                 "{\"median_ns\": %lld, \"p90_ns\": %lld, \"p99_ns\": %lld, "
                 "\"max_ns\": %lld}",
                 static_cast<long long>(s.median),
                 static_cast<long long>(s.p90),
                 static_cast<long long>(s.p99),
                 static_cast<long long>(s.max));
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = "BENCH_obs.json";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            json_path = argv[i];
        }
    }
    const std::size_t iters = smoke ? 100 : bench::sample_count(2'000);
    const std::size_t warmup = smoke ? 30 : iters / 5;
    std::printf("=== Observability plane: overhead of tracing + recorder ===\n");
    std::printf("batched %zu in flight, %zu samples per rung%s\n\n", kBatch,
                iters, smoke ? " (smoke)" : "");

    constexpr std::size_t kSizeCount =
        sizeof(kPayloadSizes) / sizeof(kPayloadSizes[0]);
    // Pre-warm the frame pool past peak in-flight demand so a mid-run
    // burst never has to allocate (traced frames are 16 B longer but stay
    // within the same pool classes).
    net::FrameBufferPool::global().prewarm(512, 4 * kBatch);
    net::FrameBufferPool::global().prewarm(4096, 4 * kBatch);

    RungResult rungs[kSizeCount];
    RungResult trace_all; // shift 0: every flow traced (reported, ungated)
    StitchResult stitch;
    const std::string perfetto_path =
        std::string(json_path).find("smoke") != std::string::npos
            ? "BENCH_obs_trace_smoke.json"
            : "BENCH_obs_trace.json";
    {
        EchoHarness h;
        // Timed burn-in with the plane toggling exactly as the measured
        // loop will: first-event ring allocation, trace TLS setup, and
        // frame-pool growth for the 16-byte-longer traced frames all land
        // here, not in a measured or alloc-counted batch.
        {
            const auto burn_until = std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(smoke ? 50
                                                                    : 2000);
            std::uint64_t done = h.pongs();
            while (std::chrono::steady_clock::now() < burn_until) {
                obs_off();
                run_batch(h, kPayloadSizes[0], done);
                obs_on(0);
                run_batch(h, kPayloadSizes[0], done);
            }
            obs_off();
        }
        // Gated rungs run the deployment configuration: recorder on,
        // 1-in-4 flows sampled (CCL <SampleShift>2</SampleShift>). The
        // trace-everything rung (shift 0) is reported alongside so the
        // debug-configuration cost stays visible, but is not gated — it
        // is a diagnostic mode, not a steady-state deployment.
        for (std::size_t i = 0; i < kSizeCount; ++i) {
            rungs[i] = run_rung(h, kPayloadSizes[i], iters, warmup, 2);
        }
        trace_all = run_rung(h, kPayloadSizes[0], iters, warmup, 0);
        stitch = run_stitch(h, perfetto_path.c_str());
    }

    std::printf("%-10s %8s %10s %10s %10s %10s\n", "Variant", "payload",
                "p50(us)", "p90(us)", "p99(us)", "max(us)");
    for (std::size_t i = 0; i < kSizeCount; ++i) {
        print_row("off", kPayloadSizes[i], rungs[i].off);
        print_row("on", kPayloadSizes[i], rungs[i].on);
    }
    print_row("trace-all", kPayloadSizes[0], trace_all.on);

    double worst_allocs = trace_all.allocs_per_message;
    for (const RungResult& r : rungs) {
        worst_allocs = std::max(worst_allocs, r.allocs_per_message);
    }
    std::printf("\nsteady-state allocations per message (plane on): %.4f\n",
                worst_allocs);
    std::printf("p50 at %zu B: off %.2f us vs on %.2f us "
                "(paired median overhead %.1f%%; trace-all %.1f%%)\n",
                kPayloadSizes[0],
                static_cast<double>(rungs[0].off.median) / 1000.0,
                static_cast<double>(rungs[0].on.median) / 1000.0,
                rungs[0].overhead_pct, trace_all.overhead_pct);
    std::printf("trace stitch: %zu events (%zu span), %s, wrote %s (%zu B)\n",
                stitch.events, stitch.span_events,
                stitch.stitched ? "stitched across the wire" : "NOT stitched",
                perfetto_path.c_str(), stitch.perfetto_bytes);

    if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f, "{\n  \"benchmark\": \"obs_overhead\",\n");
        std::fprintf(f, "  \"batch_in_flight\": %zu,\n", kBatch);
        std::fprintf(f, "  \"samples_per_rung\": %zu,\n", iters);
        std::fprintf(f, "  \"sizes\": [\n");
        for (std::size_t i = 0; i < kSizeCount; ++i) {
            std::fprintf(f, "    {\"payload_bytes\": %zu, \"off\": ",
                         kPayloadSizes[i]);
            emit_stats(f, rungs[i].off);
            std::fprintf(f, ", \"on\": ");
            emit_stats(f, rungs[i].on);
            std::fprintf(f, ", \"overhead_pct\": %.1f}%s\n",
                         rungs[i].overhead_pct,
                         i + 1 < kSizeCount ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"sample_shift\": 2,\n");
        std::fprintf(f, "  \"overhead_p50_pct\": %.1f,\n",
                     rungs[0].overhead_pct);
        std::fprintf(f, "  \"trace_all_overhead_p50_pct\": %.1f,\n",
                     trace_all.overhead_pct);
        std::fprintf(f, "  \"allocs_per_message_steady_state\": %.4f,\n",
                     worst_allocs);
        std::fprintf(f,
                     "  \"trace_stitch\": {\"decoded\": %s, \"stitched\": %s, "
                     "\"events\": %zu, \"span_events\": %zu, "
                     "\"trace_id\": \"0x%llx\", \"perfetto_bytes\": %zu}\n}\n",
                     stitch.decoded ? "true" : "false",
                     stitch.stitched ? "true" : "false", stitch.events,
                     stitch.span_events,
                     static_cast<unsigned long long>(stitch.trace_id),
                     stitch.perfetto_bytes);
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
    }

    bool ok = true;
    // Gate 1: the instrumented steady state is allocation-free. Sanitizer
    // runtimes allocate behind the scenes, so plain builds only.
    if (!COMPADRES_UNDER_SANITIZER && worst_allocs != 0.0) {
        std::fprintf(stderr,
                     "FAIL: plane-on path allocated %.4f times per message "
                     "in steady state (want 0)\n",
                     worst_allocs);
        ok = false;
    }
    // Gate 2: a traced round trip stitches across the wire — the dump
    // decodes and one trace id carries span-send + span-recv events on at
    // least two threads.
    if (!stitch.decoded || !stitch.stitched) {
        std::fprintf(stderr,
                     "FAIL: trace stitch gate (decoded=%d stitched=%d, "
                     "%zu span events)\n",
                     stitch.decoded ? 1 : 0, stitch.stitched ? 1 : 0,
                     stitch.span_events);
        ok = false;
    }
    // Gate 3 (full runs on plain builds only): the fully-on plane costs at
    // most 5% of round-trip p50, by the paired-batch median that cancels
    // machine drift.
    if (!smoke && !COMPADRES_UNDER_SANITIZER &&
        rungs[0].overhead_pct > 5.0) {
        std::fprintf(stderr,
                     "FAIL: observability plane added %.1f%% to p50 at %zu B "
                     "(want <= 5%%)\n",
                     rungs[0].overhead_pct, kPayloadSizes[0]);
        ok = false;
    }
    std::printf("%s\n", ok ? "obs gates PASSED" : "obs gates FAILED");
    return ok ? 0 : 1;
}
