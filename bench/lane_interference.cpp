// Lane interference bench + gates for priority-banded connection lanes.
//
// The priority-inversion scenario the lanes exist to fix: one logical
// route carrying both a saturating 1024 B bulk stream (band 1) and sparse
// 32 B urgent round-trips (band 0). Four assemblies live at once and
// every sample is an adjacent four-way round, so machine drift inflates
// every leg instead of whichever one owned a slow scheduling window:
//
//   single-wire, uncontended — urgent ping-pong over one TCP wire,
//   single-wire, contended   — the same wire also carrying the bulk
//                              stream: urgent frames queue behind bulk in
//                              the coalescing intake and again in the
//                              kernel's bounded socket buffers,
//   2-lane group, uncontended — urgent ping-pong over lane 0 of a
//                              LaneGroup (the lane tax, if any),
//   2-lane group, contended  — bulk saturates lane 1 while urgent rides
//                              lane 0: no shared writer, no shared socket.
//
// The binary is also a correctness gate (run by the `lane_bench` tool
// target, and in --smoke form by ctest):
//   * the 2-lane groups really hold 2 lanes and finish the run with zero
//     lane failovers,
//   * steady-state allocations across the whole contended sampling window
//     == 0 (global operator new override, as in remote_roundtrip),
//   * a concurrent urgent burst through the group still coalesces to
//     < 1 syscall per frame on lane 0,
//   * 2-lane urgent p99 under bulk interference <= 1.5x its own
//     uncontended p99, while the single wire shows >= 3x inversion in the
//     same run (full runs on plain builds only; timing under --smoke or
//     sanitizers is noise).
// Results land in BENCH_lanes.json.
#include "common.hpp"

#include "cdr/giop.hpp"
#include "net/frame_pool.hpp"
#include "net/lane_group.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/uring.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#if !defined(COMPADRES_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#endif
#ifndef COMPADRES_UNDER_SANITIZER
#define COMPADRES_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

// Count every heap allocation in the process so the steady-state gate can
// assert the banded send path makes none.
void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(al);
    if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
    return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace compadres;

namespace {

constexpr std::size_t kUrgentPayload = 32;
/// Sized to the frame pool's 4 KiB class (frame = payload + GIOP/request
/// header) so the whole window recycles through one deep free list.
constexpr std::size_t kBulkPayload = 3072;
/// Bulk frames in flight (sent, echo not yet drained). A credit window
/// rather than a free-running stream: it bounds the backlog an urgent
/// frame can queue behind to a fixed ~0.8 MiB (window x frame x both
/// directions) so the inversion measurement is a deterministic quantity —
/// and it keeps both directions of the wire inside the kernel's buffer
/// autotune, which a free-running saturator defeats (zero-window persist
/// stalls collapse loopback throughput to ~KB/s and a single contended
/// round trip to ~1 s).
constexpr std::size_t kBulkWindow = 128;

std::vector<std::uint8_t> make_request(std::size_t payload_size,
                                       std::uint8_t band) {
    cdr::RequestHeader req;
    req.request_id = 1;
    req.object_key = "lanes";
    req.operation = "echo";
    std::vector<std::uint8_t> payload(payload_size, 0x5A);
    std::vector<std::uint8_t> frame =
        cdr::encode_request(req, payload.data(), payload.size());
    cdr::set_frame_band(frame.data(), band);
    return frame;
}

/// Streams band-1 bulk frames into `wire` under a credit window: at most
/// kBulkWindow frames sent-but-not-yet-echoed. The drain thread returns
/// credit with note_echo(). Keeps the route saturated with a bounded,
/// deterministic backlog (see kBulkWindow).
class BulkStream {
public:
    BulkStream(net::Transport& wire, const std::vector<std::uint8_t>& frame)
        : thread_([this, &wire, &frame] {
              for (;;) {
                  {
                      std::unique_lock lk(mu_);
                      cv_.wait(lk, [&] {
                          return stop_ || sent_ - echoed_ < kBulkWindow;
                      });
                      if (stop_) return;
                      ++sent_;
                  }
                  try {
                      wire.send_frame(frame);
                  } catch (const net::TransportError&) {
                      return; // wire closed: the run is over
                  }
              }
          }) {}

    void note_echo() {
        {
            std::lock_guard lk(mu_);
            ++echoed_;
        }
        cv_.notify_one();
    }

    void stop() {
        {
            std::lock_guard lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t sent_ = 0;
    std::uint64_t echoed_ = 0;
    bool stop_ = false;
    std::thread thread_;
};

/// One-slot rendezvous for the urgent echo: the demux reader parks the
/// band-0 frame here and the measuring thread collects it.
class UrgentSlot {
public:
    void deliver() {
        {
            std::lock_guard lk(mu_);
            ready_ = true;
        }
        cv_.notify_one();
    }
    bool take() {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return ready_ || dead_; });
        if (dead_) return false;
        ready_ = false;
        return true;
    }
    void kill() {
        {
            std::lock_guard lk(mu_);
            dead_ = true;
        }
        cv_.notify_all();
    }

private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool ready_ = false;
    bool dead_ = false;
};

/// Urgent + bulk multiplexed over ONE TCP wire (the pre-lane baseline).
/// A demux reader on the client separates the echo streams by the band
/// stamped in the GIOP flags octet.
class SingleWireRig {
public:
    explicit SingleWireRig(bool contended)
        : acceptor_(0),
          urgent_frame_(make_request(kUrgentPayload, 0)),
          bulk_frame_(make_request(kBulkPayload, 1)) {
        std::thread accept_thread([&] { server_ = acceptor_.accept(); });
        client_ = net::tcp_connect("127.0.0.1", acceptor_.bound_port());
        accept_thread.join();

        // Teardown races surface as TransportError on whichever reader is
        // mid-frame when the peer's close lands (the contended rigs close
        // with bulk in flight by design) — treat them like EOF.
        echo_ = std::thread([this] {
            try {
                while (auto f = server_->recv_frame()) {
                    server_->send_frame(std::move(*f));
                }
            } catch (const net::TransportError&) {
            }
        });
        // Bulk starts before the demux reader so the reader's view of the
        // optional is settled; early echoes just wait in kernel buffers.
        if (contended) bulk_.emplace(*client_, bulk_frame_);
        demux_ = std::thread([this] {
            try {
                while (auto f = client_->recv_frame()) {
                    if (cdr::frame_band(f->data()) == 0) {
                        urgent_.deliver();
                    } else {
                        ++bulk_echoes_;
                        if (bulk_.has_value()) bulk_->note_echo();
                    }
                }
            } catch (const net::TransportError&) {
            }
            urgent_.kill();
        });
    }

    /// One urgent round trip: send band-0 frame, wait for its echo.
    std::int64_t urgent_rt() {
        const std::int64_t t0 = rt::now_ns();
        client_->send_frame(urgent_frame_);
        if (!urgent_.take()) return -1;
        return rt::now_ns() - t0;
    }

    net::TransportStats client_stats() const { return client_->stats(); }

    void stop() {
        if (bulk_.has_value()) bulk_->stop();
        client_->close();
        server_->close();
        if (echo_.joinable()) echo_.join();
        if (demux_.joinable()) demux_.join();
    }

private:
    net::TcpAcceptor acceptor_;
    const std::vector<std::uint8_t> urgent_frame_;
    const std::vector<std::uint8_t> bulk_frame_;
    std::unique_ptr<net::Transport> client_;
    std::unique_ptr<net::Transport> server_;
    std::thread echo_;
    std::thread demux_;
    UrgentSlot urgent_;
    std::uint64_t bulk_echoes_ = 0;
    std::optional<BulkStream> bulk_;
};

/// The same traffic over a 2-lane LaneGroup: urgent on lane 0, bulk on
/// lane 1, classified by the band each frame carries. No demux reader on
/// the urgent path — band 0 echoes can only arrive on lane 0, so the
/// measuring thread reads that lane directly (the latency-sensitive
/// receive pattern the LaneGroup header documents).
class LaneRig {
public:
    explicit LaneRig(bool contended)
        : urgent_frame_(make_request(kUrgentPayload, 0)),
          bulk_frame_(make_request(kBulkPayload, 1)) {
        net::LaneGroupOptions opts;
        opts.bands = 2;
        net::LaneAcceptor acceptor(0, opts);
        std::unique_ptr<net::LaneGroup> server;
        std::thread accept_thread([&] { server = acceptor.accept(); });
        client_ = net::lane_connect("127.0.0.1", acceptor.bound_port(), opts);
        accept_thread.join();
        server_ = std::move(server);

        for (std::size_t i = 0; i < server_->lane_count(); ++i) {
            echo_.emplace_back([this, i] {
                try {
                    net::Transport& lane = server_->lane(i);
                    while (auto f = lane.recv_frame()) {
                        lane.send_frame(std::move(*f));
                    }
                } catch (const net::TransportError&) {
                    // teardown race: close landed mid-frame
                }
            });
        }
        if (contended) bulk_.emplace(*client_, bulk_frame_);
        bulk_drain_ = std::thread([this] {
            try {
                while (client_->lane(1).recv_frame().has_value()) {
                    ++bulk_echoes_;
                    if (bulk_.has_value()) bulk_->note_echo();
                }
            } catch (const net::TransportError&) {
            }
        });
    }

    /// Pre-fill both sides' per-lane pools so peak in-flight demand never
    /// touches the heap mid-measurement (the RTSJ-style initialization
    /// preallocation every bench in this repo models).
    void prewarm() {
        for (auto* group : {client_.get(), server_.get()}) {
            group->pool_for_band(0).prewarm(512, 256);
            group->pool_for_band(1).prewarm(kBulkPayload + 512, 192);
        }
    }

    std::int64_t urgent_rt() {
        const std::int64_t t0 = rt::now_ns();
        client_->send_frame(urgent_frame_);
        if (!client_->lane(0).recv_frame().has_value()) return -1;
        return rt::now_ns() - t0;
    }

    net::LaneGroup& client() { return *client_; }
    net::LaneGroup& server() { return *server_; }

    void stop() {
        if (bulk_.has_value()) bulk_->stop();
        client_->close();
        server_->close();
        for (auto& t : echo_) {
            if (t.joinable()) t.join();
        }
        if (bulk_drain_.joinable()) bulk_drain_.join();
    }

private:
    const std::vector<std::uint8_t> urgent_frame_;
    const std::vector<std::uint8_t> bulk_frame_;
    std::unique_ptr<net::LaneGroup> client_;
    std::unique_ptr<net::LaneGroup> server_;
    std::vector<std::thread> echo_;
    std::thread bulk_drain_;
    std::uint64_t bulk_echoes_ = 0;
    std::optional<BulkStream> bulk_;
};

/// LaneRig with the server's echo loop inverted into a reactor: every
/// server lane registers with one loop pool (band i pins lane i), so the
/// echo path exercises the loop backend under the same urgent-vs-bulk
/// pressure. Parameterized by ReactorOptions for the epoll-vs-uring rung.
class ReactorLaneRig {
public:
    ReactorLaneRig(bool contended, net::ReactorOptions options)
        : urgent_frame_(make_request(kUrgentPayload, 0)),
          bulk_frame_(make_request(kBulkPayload, 1)) {
        net::LaneGroupOptions opts;
        opts.bands = 2;
        net::LaneAcceptor acceptor(0, opts);
        std::unique_ptr<net::LaneGroup> server;
        std::thread accept_thread([&] { server = acceptor.accept(); });
        client_ = net::lane_connect("127.0.0.1", acceptor.bound_port(), opts);
        accept_thread.join();
        server_ = std::move(server);

        reactor_ = std::make_unique<net::Reactor>(options);
        for (std::size_t i = 0; i < server_->lane_count(); ++i) {
            net::Transport* lane = &server_->lane(i);
            ids_.push_back(reactor_->register_wire(
                *lane,
                [lane](net::FrameBuffer f) { lane->send_frame(std::move(f)); },
                {}, static_cast<int>(i)));
        }
        if (contended) bulk_.emplace(*client_, bulk_frame_);
        bulk_drain_ = std::thread([this] {
            try {
                while (client_->lane(1).recv_frame().has_value()) {
                    if (bulk_.has_value()) bulk_->note_echo();
                }
            } catch (const net::TransportError&) {
            }
        });
    }

    void prewarm() {
        for (auto* group : {client_.get(), server_.get()}) {
            group->pool_for_band(0).prewarm(512, 256);
            group->pool_for_band(1).prewarm(kBulkPayload + 512, 192);
        }
    }

    std::int64_t urgent_rt() {
        const std::int64_t t0 = rt::now_ns();
        client_->send_frame(urgent_frame_);
        if (!client_->lane(0).recv_frame().has_value()) return -1;
        return rt::now_ns() - t0;
    }

    net::Reactor& reactor() { return *reactor_; }

    void stop() {
        if (bulk_.has_value()) bulk_->stop();
        for (std::uint64_t id : ids_) reactor_->deregister_wire(id);
        client_->close();
        server_->close();
        if (bulk_drain_.joinable()) bulk_drain_.join();
    }

private:
    const std::vector<std::uint8_t> urgent_frame_;
    const std::vector<std::uint8_t> bulk_frame_;
    std::unique_ptr<net::LaneGroup> client_;
    std::unique_ptr<net::LaneGroup> server_;
    std::unique_ptr<net::Reactor> reactor_; ///< dies before the lanes it pins
    std::vector<std::uint64_t> ids_;
    std::thread bulk_drain_;
    std::optional<BulkStream> bulk_;
};

/// One backend's legs of the epoll-vs-uring lane rung.
struct LaneBackendLeg {
    rt::StatsSummary uncontended;
    rt::StatsSummary contended;
    double loop_syscalls_per_frame = 0.0; ///< contended rig's reactor
};

struct LaneBackendCompare {
    bool ran = false; ///< false: kernel denies io_uring, rung skipped
    LaneBackendLeg epoll;
    LaneBackendLeg uring;
};

/// The PR-10 lane rung: urgent-vs-bulk through reactor-served lane
/// groups on both backends at once, rounds interleaved four ways so
/// drift cancels. Lane isolation must survive the backend swap and the
/// uring loops must do the same work in fewer syscalls.
LaneBackendCompare run_backend_compare(std::size_t rounds,
                                       std::size_t warmup) {
    LaneBackendCompare out;
    if (!net::uring_available()) return out;

    // One loop per band: band pinning (band % thread_count) is what keeps
    // bulk's pump from head-of-line-blocking urgent's — with a single
    // loop both lanes would share it and isolation would be lost by
    // construction, on either backend.
    net::ReactorOptions epoll_opts;
    epoll_opts.threads = 2;
    epoll_opts.backend = net::ReactorBackend::kEpoll;
    net::ReactorOptions uring_opts;
    uring_opts.threads = 2;
    uring_opts.backend = net::ReactorBackend::kUring;
    ReactorLaneRig e_unc(/*contended=*/false, epoll_opts);
    ReactorLaneRig e_con(/*contended=*/true, epoll_opts);
    ReactorLaneRig u_unc(/*contended=*/false, uring_opts);
    ReactorLaneRig u_con(/*contended=*/true, uring_opts);
    if (std::strcmp(u_con.reactor().backend_name(), "uring") != 0) {
        // Probe passed but the loops still fell back: skip rather than
        // compare epoll to itself.
        for (auto* rig : {&u_con, &u_unc, &e_con, &e_unc}) rig->stop();
        return out;
    }
    out.ran = true;
    for (auto* rig : {&e_unc, &e_con, &u_unc, &u_con}) rig->prewarm();

    rt::StatsRecorder rec_e_unc(rounds), rec_e_con(rounds);
    rt::StatsRecorder rec_u_unc(rounds), rec_u_con(rounds);
    for (std::size_t i = 0; i < warmup + rounds; ++i) {
        const std::int64_t t_e_unc = e_unc.urgent_rt();
        const std::int64_t t_e_con = e_con.urgent_rt();
        const std::int64_t t_u_unc = u_unc.urgent_rt();
        const std::int64_t t_u_con = u_con.urgent_rt();
        if (t_e_unc < 0 || t_e_con < 0 || t_u_unc < 0 || t_u_con < 0) break;
        if (i >= warmup) {
            rec_e_unc.record(t_e_unc);
            rec_e_con.record(t_e_con);
            rec_u_unc.record(t_u_unc);
            rec_u_con.record(t_u_con);
        }
    }
    out.epoll.uncontended = rec_e_unc.summarize();
    out.epoll.contended = rec_e_con.summarize();
    out.epoll.loop_syscalls_per_frame =
        e_con.reactor().stats().loop_syscalls_per_frame();
    out.uring.uncontended = rec_u_unc.summarize();
    out.uring.contended = rec_u_con.summarize();
    out.uring.loop_syscalls_per_frame =
        u_con.reactor().stats().loop_syscalls_per_frame();

    for (auto* rig : {&u_con, &u_unc, &e_con, &e_unc}) rig->stop();
    return out;
}

struct BurstResult {
    double syscalls_per_frame = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t max_batch_frames = 0;
};

/// Concurrent urgent burst through a dedicated bounded-buffer group: 4
/// sender threads push band-0 frames through the lane classifier while a
/// deliberately delayed reader lets the small socket buffers back up, so
/// the coalescing writer blocks in sendmsg and the other senders' frames
/// pile into the intake — the same pressure shape as the PR-3/PR-4
/// syscall gates. Lane classification must not have cost the writer its
/// batching: < 1 syscall per frame on lane 0.
BurstResult run_urgent_burst() {
    net::LaneGroupOptions opts;
    opts.bands = 2;
    opts.tcp.send_buffer_bytes = 16 * 1024;
    opts.tcp.recv_buffer_bytes = 16 * 1024;
    net::LaneAcceptor acceptor(0, opts);
    std::unique_ptr<net::LaneGroup> server;
    std::thread accept_thread([&] { server = acceptor.accept(); });
    auto client = net::lane_connect("127.0.0.1", acceptor.bound_port(), opts);
    accept_thread.join();

    const std::vector<std::uint8_t> frame = make_request(kUrgentPayload, 0);
    constexpr int kSenders = 4;
    constexpr int kPerSender = 500;
    std::vector<std::thread> senders;
    for (int t = 0; t < kSenders; ++t) {
        senders.emplace_back([&client, &frame] {
            for (int i = 0; i < kPerSender; ++i) client->send_frame(frame);
        });
    }
    // The delayed drain is what makes the burst a burst: by the time the
    // server starts reading, every sender is parked on a full pipe.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int i = 0; i < kSenders * kPerSender; ++i) {
        if (!server->lane(0).recv_frame().has_value()) break;
    }
    for (auto& s : senders) s.join();

    const net::TransportStats stats = client->lane_stats(0);
    client->close();
    server->close();
    BurstResult r;
    r.frames = stats.frames_sent;
    r.max_batch_frames = stats.max_batch_frames;
    r.syscalls_per_frame =
        r.frames > 0 ? static_cast<double>(stats.send_syscalls) /
                           static_cast<double>(r.frames)
                     : 1.0;
    return r;
}

void print_row(const char* leg, const rt::StatsSummary& s) {
    std::printf("%-24s %10.2f %10.2f %10.2f %10.2f\n", leg,
                static_cast<double>(s.median) / 1000.0,
                static_cast<double>(s.p90) / 1000.0,
                static_cast<double>(s.p99) / 1000.0,
                static_cast<double>(s.max) / 1000.0);
}

void emit_leg(std::FILE* f, const char* leg, const rt::StatsSummary& s,
              bool last) {
    std::fprintf(f,
                 "    {\"leg\": \"%s\", \"p50_ns\": %lld, \"p90_ns\": %lld, "
                 "\"p99_ns\": %lld, \"max_ns\": %lld}%s\n",
                 leg, static_cast<long long>(s.median),
                 static_cast<long long>(s.p90),
                 static_cast<long long>(s.p99),
                 static_cast<long long>(s.max), last ? "" : ",");
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = "BENCH_lanes.json";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            json_path = argv[i];
        }
    }
    const std::size_t rounds = smoke ? 150 : 1500;
    const std::size_t warmup = rounds / 5;
    std::printf("=== Lane interference: 2-lane group vs single wire ===\n");
    std::printf("%zu rounds per leg, urgent %zu B / bulk %zu B%s\n\n", rounds,
                kUrgentPayload, kBulkPayload, smoke ? " (smoke)" : "");

    // The single-wire rigs draw from the process-global pool; prewarm it
    // past peak demand so their steady state never allocates either.
    net::FrameBufferPool::global().prewarm(512, 256);
    net::FrameBufferPool::global().prewarm(kBulkPayload + 512, 192);

    SingleWireRig sw_unc(/*contended=*/false);
    SingleWireRig sw_con(/*contended=*/true);
    LaneRig lane_unc(/*contended=*/false);
    LaneRig lane_con(/*contended=*/true);
    lane_unc.prewarm();
    lane_con.prewarm();

    rt::StatsRecorder rec_sw_unc(rounds);
    rt::StatsRecorder rec_sw_con(rounds);
    rt::StatsRecorder rec_lane_unc(rounds);
    rt::StatsRecorder rec_lane_con(rounds);
    std::uint64_t allocs = 0;
    std::uint64_t urgent_messages = 0;
    for (std::size_t i = 0; i < warmup + rounds; ++i) {
        const std::uint64_t a0 = g_allocs.load();
        const std::int64_t t_sw_unc = sw_unc.urgent_rt();
        const std::int64_t t_sw_con = sw_con.urgent_rt();
        const std::int64_t t_lane_unc = lane_unc.urgent_rt();
        const std::int64_t t_lane_con = lane_con.urgent_rt();
        const std::uint64_t a1 = g_allocs.load();
        if (t_sw_unc < 0 || t_sw_con < 0 || t_lane_unc < 0 || t_lane_con < 0)
            break; // a wire died; the structural gates will catch it
        if (i >= warmup) {
            rec_sw_unc.record(t_sw_unc);
            rec_sw_con.record(t_sw_con);
            rec_lane_unc.record(t_lane_unc);
            rec_lane_con.record(t_lane_con);
            allocs += a1 - a0;
            urgent_messages += 4;
        }
    }
    const rt::StatsSummary s_sw_unc = rec_sw_unc.summarize();
    const rt::StatsSummary s_sw_con = rec_sw_con.summarize();
    const rt::StatsSummary s_lane_unc = rec_lane_unc.summarize();
    const rt::StatsSummary s_lane_con = rec_lane_con.summarize();
    const double allocs_per_message =
        urgent_messages > 0
            ? static_cast<double>(allocs) / static_cast<double>(urgent_messages)
            : -1.0;

    std::printf("%-24s %10s %10s %10s %10s\n", "Leg (urgent RT)", "p50(us)",
                "p90(us)", "p99(us)", "max(us)");
    print_row("single-wire", s_sw_unc);
    print_row("single-wire +bulk", s_sw_con);
    print_row("2-lane", s_lane_unc);
    print_row("2-lane +bulk", s_lane_con);

    const net::TransportStats con_lane0 = lane_con.client().lane_stats(0);
    const net::TransportStats con_lane1 = lane_con.client().lane_stats(1);
    std::printf("\ncontended group, lane 0: %llu sent, %llu stalls, intake "
                "hwm %llu; lane 1: %llu sent, %llu stalls, intake hwm %llu\n",
                (unsigned long long)con_lane0.frames_sent,
                (unsigned long long)con_lane0.send_stalls,
                (unsigned long long)con_lane0.intake_depth_hwm,
                (unsigned long long)con_lane1.frames_sent,
                (unsigned long long)con_lane1.send_stalls,
                (unsigned long long)con_lane1.intake_depth_hwm);
    std::printf("steady state: %.4f allocs per urgent message\n",
                allocs_per_message);

    const LaneBackendCompare backends = run_backend_compare(rounds, warmup);
    if (backends.ran) {
        std::printf(
            "reactor-served lanes (interleaved): "
            "uring urgent p50 %.2f us / p99 %.2f us contended "
            "(%.2f us / %.2f us clean, %.4f loop syscalls/frame) vs "
            "epoll %.2f us / %.2f us contended "
            "(%.2f us / %.2f us clean, %.4f loop syscalls/frame)\n",
            static_cast<double>(backends.uring.contended.median) / 1000.0,
            static_cast<double>(backends.uring.contended.p99) / 1000.0,
            static_cast<double>(backends.uring.uncontended.median) / 1000.0,
            static_cast<double>(backends.uring.uncontended.p99) / 1000.0,
            backends.uring.loop_syscalls_per_frame,
            static_cast<double>(backends.epoll.contended.median) / 1000.0,
            static_cast<double>(backends.epoll.contended.p99) / 1000.0,
            static_cast<double>(backends.epoll.uncontended.median) / 1000.0,
            static_cast<double>(backends.epoll.uncontended.p99) / 1000.0,
            backends.epoll.loop_syscalls_per_frame);
    } else {
        std::printf("reactor-served lanes: kernel denies io_uring — "
                    "epoll-vs-uring rung skipped (gates vacuously pass)\n");
    }

    const BurstResult burst = run_urgent_burst();
    std::printf("urgent-lane burst: %.3f syscalls/frame over %llu frames "
                "(max batch %llu)\n",
                burst.syscalls_per_frame,
                static_cast<unsigned long long>(burst.frames),
                static_cast<unsigned long long>(burst.max_batch_frames));

    sw_unc.stop();
    sw_con.stop();
    lane_con.stop();
    lane_unc.stop(); // after the burst: it was the burst's test subject

    const std::uint64_t failovers = lane_unc.client().lane_failovers() +
                                    lane_con.client().lane_failovers() +
                                    lane_unc.server().lane_failovers() +
                                    lane_con.server().lane_failovers();
    const std::size_t lane_width = lane_con.client().lane_count();

    if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f, "{\n  \"benchmark\": \"lane_interference\",\n");
        std::fprintf(f, "  \"rounds_per_leg\": %zu,\n", rounds);
        std::fprintf(f, "  \"urgent_payload_bytes\": %zu,\n", kUrgentPayload);
        std::fprintf(f, "  \"bulk_payload_bytes\": %zu,\n", kBulkPayload);
        std::fprintf(f, "  \"legs\": [\n");
        emit_leg(f, "single_wire", s_sw_unc, false);
        emit_leg(f, "single_wire_bulk", s_sw_con, false);
        emit_leg(f, "two_lane", s_lane_unc, false);
        emit_leg(f, "two_lane_bulk", s_lane_con, true);
        std::fprintf(f, "  ],\n");
        std::fprintf(f, "  \"lanes\": %zu,\n", lane_width);
        std::fprintf(f, "  \"lane_failovers\": %llu,\n",
                     static_cast<unsigned long long>(failovers));
        std::fprintf(f,
                     "  \"contended_lane0\": {\"frames_sent\": %llu, "
                     "\"send_stalls\": %llu, \"intake_depth_hwm\": %llu},\n",
                     (unsigned long long)con_lane0.frames_sent,
                     (unsigned long long)con_lane0.send_stalls,
                     (unsigned long long)con_lane0.intake_depth_hwm);
        std::fprintf(f,
                     "  \"contended_lane1\": {\"frames_sent\": %llu, "
                     "\"send_stalls\": %llu, \"intake_depth_hwm\": %llu},\n",
                     (unsigned long long)con_lane1.frames_sent,
                     (unsigned long long)con_lane1.send_stalls,
                     (unsigned long long)con_lane1.intake_depth_hwm);
        if (backends.ran) {
            auto emit_backend = [f](const char* name,
                                    const LaneBackendLeg& leg, bool last) {
                std::fprintf(
                    f,
                    "    \"%s\": {\"uncontended_p50_ns\": %lld, "
                    "\"uncontended_p99_ns\": %lld, \"contended_p50_ns\": "
                    "%lld, \"contended_p99_ns\": %lld, "
                    "\"loop_syscalls_per_frame\": %.4f}%s\n",
                    name, static_cast<long long>(leg.uncontended.median),
                    static_cast<long long>(leg.uncontended.p99),
                    static_cast<long long>(leg.contended.median),
                    static_cast<long long>(leg.contended.p99),
                    leg.loop_syscalls_per_frame, last ? "" : ",");
            };
            std::fprintf(f, "  \"backends\": {\n");
            emit_backend("epoll", backends.epoll, false);
            emit_backend("uring", backends.uring, true);
            std::fprintf(f, "  },\n");
        } else {
            std::fprintf(f, "  \"backends\": {\"skipped\": "
                            "\"io_uring unavailable\"},\n");
        }
        std::fprintf(f, "  \"allocs_per_message_steady_state\": %.4f,\n",
                     allocs_per_message);
        std::fprintf(f,
                     "  \"urgent_burst\": {\"syscalls_per_frame\": %.3f, "
                     "\"frames\": %llu, \"max_batch_frames\": %llu}\n}\n",
                     burst.syscalls_per_frame,
                     static_cast<unsigned long long>(burst.frames),
                     static_cast<unsigned long long>(burst.max_batch_frames));
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
    }

    bool ok = true;
    // Gate 1: the groups really are 2 lanes wide and a clean run produced
    // no spurious failovers (failover behavior itself is unit-tested;
    // here it must simply never fire).
    if (lane_width != 2) {
        std::fprintf(stderr, "FAIL: lane group is %zu lanes wide (want 2)\n",
                     lane_width);
        ok = false;
    }
    if (failovers != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu lane failover(s) during a clean run "
                     "(want 0)\n",
                     static_cast<unsigned long long>(failovers));
        ok = false;
    }
    if (urgent_messages == 0) {
        std::fprintf(stderr, "FAIL: no urgent round trips completed\n");
        ok = false;
    }
    // Gate 2: the banded send path stays allocation-free in steady state
    // — across all four legs at once, bulk streams included (sanitizer
    // runtimes allocate behind the scenes; plain builds only).
    if (!COMPADRES_UNDER_SANITIZER && allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: %.4f allocations per urgent message in steady "
                     "state (want 0)\n",
                     allocs_per_message);
        ok = false;
    }
    // Gate 3: lane classification did not cost the coalescing writer its
    // batching — an urgent burst still makes < 1 syscall per frame.
    if (burst.syscalls_per_frame >= 1.0) {
        std::fprintf(stderr,
                     "FAIL: urgent-lane burst made %.3f syscalls per frame "
                     "(want < 1)\n",
                     burst.syscalls_per_frame);
        ok = false;
    }
    // Gate 4 (full runs on plain builds only — smoke samples and
    // sanitizer timing are noise): the whole point of the PR, both
    // directions. The lanes must hold urgent p99 under bulk interference
    // to within 1.5x of their own uncontended p99, AND the single wire
    // must actually exhibit >= 3x inversion in the same run — otherwise
    // the contended legs never generated the pressure the 1.5x bound
    // claims to survive, and the gate would pass vacuously.
    if (!smoke && !COMPADRES_UNDER_SANITIZER) {
        if (s_lane_con.p99 > s_lane_unc.p99 + s_lane_unc.p99 / 2) {
            std::fprintf(stderr,
                         "FAIL: 2-lane urgent p99 under bulk (%lld ns) "
                         "exceeds 1.5x uncontended p99 (%lld ns)\n",
                         static_cast<long long>(s_lane_con.p99),
                         static_cast<long long>(s_lane_unc.p99));
            ok = false;
        }
        // Inversion is judged at p50: it is a constant (the windowed
        // backlog), so the median carries it; the uncontended p99 on a
        // shared box is scheduling noise that would dilute the ratio.
        if (s_sw_con.median < 3 * s_sw_unc.median) {
            std::fprintf(stderr,
                         "FAIL: single-wire inversion only %lld ns p50 vs "
                         "%lld ns uncontended (want >= 3x: the bulk stream "
                         "failed to generate interference)\n",
                         static_cast<long long>(s_sw_con.median),
                         static_cast<long long>(s_sw_unc.median));
            ok = false;
        }
    }
    // Gate 5 (only where the kernel grants io_uring; skipping is a pass):
    // the uring loops must do the contended echo work in strictly fewer
    // syscalls per frame than epoll, and — full plain runs only — lane
    // isolation must survive the backend swap: uring's contended urgent
    // p99 within 1.5x of its own uncontended p99, the same bound the
    // epoll lanes are held to in gate 4.
    if (backends.ran) {
        if (backends.uring.loop_syscalls_per_frame >=
            backends.epoll.loop_syscalls_per_frame) {
            std::fprintf(stderr,
                         "FAIL: uring loop syscalls/frame (%.4f) not below "
                         "epoll (%.4f) on the contended lane rig\n",
                         backends.uring.loop_syscalls_per_frame,
                         backends.epoll.loop_syscalls_per_frame);
            ok = false;
        }
        if (!smoke && !COMPADRES_UNDER_SANITIZER) {
            const std::int64_t unc = backends.uring.uncontended.p99;
            if (backends.uring.contended.p99 > unc + unc / 2) {
                std::fprintf(stderr,
                             "FAIL: uring-served lanes lost isolation — "
                             "contended urgent p99 (%lld ns) exceeds 1.5x "
                             "uncontended p99 (%lld ns)\n",
                             static_cast<long long>(
                                 backends.uring.contended.p99),
                             static_cast<long long>(unc));
                ok = false;
            }
        }
    }
    std::printf("%s\n", ok ? "lane gates PASSED" : "lane gates FAILED");
    return ok ? 0 : 1;
}
