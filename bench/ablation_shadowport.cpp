// Ablation A2 (paper Fig. 5): shadow port vs per-level relay.
//
// Topology: A (immortal) > B (L1) > C (L2). C needs to talk to A.
//   relay  — C sends to B, B's handler copies into its own pool and
//            forwards to A ("additional and expensive message copying");
//   shadow — C's out port is wired straight to A; pool and buffer live in
//            A's SMM, nothing at B.
//
// Expected shape: shadow beats relay and the gap grows with message size.
#include "core/application.hpp"
#include "core/messages.hpp"

#include <benchmark/benchmark.h>

#include <cstring>

using namespace compadres;

namespace {

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.min_threads = cfg.max_threads = 0; // inline: measures data movement
    return cfg;
}

struct ShadowFixture {
    core::Application app{"shadow", [] {
        core::RtsjAttributes attrs;
        attrs.immortal_size = 16 * 1024 * 1024;
        attrs.scoped_pools = {{1, 1024 * 1024, 2}, {2, 1024 * 1024, 2}};
        return attrs;
    }()};
    core::Component* a;
    core::Component* b;
    core::Component* c;
    std::size_t received = 0;

    ShadowFixture() {
        core::register_builtin_message_types();
        a = &app.create_immortal<core::Component>("A");
        b = &app.create_scoped<core::Component>("B", *a, 1);
        c = &app.create_scoped<core::Component>("C", *b, 2);

        // Shadow path: C --> A directly.
        c->add_out_port<core::OctetSeq>("shadowOut", "OctetSeq");
        a->add_in_port<core::OctetSeq>(
            "shadowIn", "OctetSeq", sync_port(),
            [this](core::OctetSeq& m, core::Smm&) { received += m.length; });
        app.connect(*c, "shadowOut", *a, "shadowIn");

        // Relay path: C --> B (copy at B) --> A.
        c->add_out_port<core::OctetSeq>("relayOut", "OctetSeq");
        b->add_in_port<core::OctetSeq>(
            "relayIn", "OctetSeq", sync_port(),
            [this](core::OctetSeq& m, core::Smm&) {
                auto& up = b->out_port_t<core::OctetSeq>("relayUp");
                core::OctetSeq* fwd = up.get_message();
                *fwd = m; // the extra copy the paper calls expensive
                up.send(fwd, 5);
            });
        b->add_out_port<core::OctetSeq>("relayUp", "OctetSeq");
        a->add_in_port<core::OctetSeq>(
            "relayIn", "OctetSeq", sync_port(),
            [this](core::OctetSeq& m, core::Smm&) { received += m.length; });
        app.connect(*c, "relayOut", *b, "relayIn");
        app.connect(*b, "relayUp", *a, "relayIn");
        app.start();
    }
};

void BM_ShadowPort(benchmark::State& state) {
    ShadowFixture fx;
    auto& out = fx.c->out_port_t<core::OctetSeq>("shadowOut");
    const auto size = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> payload(size, 0x7E);
    for (auto _ : state) {
        core::OctetSeq* msg = out.get_message();
        msg->assign(payload.data(), payload.size());
        out.send(msg, 5);
    }
    benchmark::DoNotOptimize(fx.received);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void BM_RelayThroughParent(benchmark::State& state) {
    ShadowFixture fx;
    auto& out = fx.c->out_port_t<core::OctetSeq>("relayOut");
    const auto size = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> payload(size, 0x7E);
    for (auto _ : state) {
        core::OctetSeq* msg = out.get_message();
        msg->assign(payload.data(), payload.size());
        out.send(msg, 5);
    }
    benchmark::DoNotOptimize(fx.received);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

} // namespace

BENCHMARK(BM_ShadowPort)->Arg(32)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_RelayThroughParent)->Arg(32)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
