// Ablation A3: In-port dispatch strategies (paper §2.2 port attributes).
//
//   sync       — pool sizes 0: the calling thread runs process() inline;
//   dedicated  — one pool thread per port (cross-thread handoff per hop);
//   shared     — one SMM-wide pool serving both ports.
//
// Measures the full Fig. 6-style round trip. Expected shape: sync is
// cheapest (no context switches); dedicated and shared pay 3 cross-thread
// hops; shared ~ dedicated at this load (it exists for footprint, not
// speed — fewer idle threads on an embedded target).
#include "core/application.hpp"
#include "core/messages.hpp"

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>

using namespace compadres;

namespace {

enum class Strategy { kSync, kDedicated, kShared };

struct PingPong {
    core::Application app{"pingpong", [] {
        core::RtsjAttributes attrs;
        attrs.scoped_pools = {{1, 512 * 1024, 4}};
        return attrs;
    }()};
    core::Component* driver;
    core::Component* echo;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;

    explicit PingPong(Strategy strategy) {
        core::register_builtin_message_types();
        core::InPortConfig cfg;
        switch (strategy) {
            case Strategy::kSync:
                cfg.min_threads = cfg.max_threads = 0;
                break;
            case Strategy::kDedicated:
                cfg.buffer_size = 8;
                cfg.min_threads = cfg.max_threads = 1;
                break;
            case Strategy::kShared:
                cfg.buffer_size = 8;
                cfg.min_threads = 1;
                cfg.max_threads = 2;
                cfg.strategy = core::ThreadpoolStrategy::kShared;
                break;
        }
        driver = &app.create_immortal<core::Component>("Driver");
        echo = &app.create_immortal<core::Component>("Echo");
        driver->add_out_port<core::MyInteger>("ping", "MyInteger");
        echo->add_in_port<core::MyInteger>(
            "in", "MyInteger", cfg, [this](core::MyInteger& m, core::Smm&) {
                auto& out = echo->out_port_t<core::MyInteger>("out");
                core::MyInteger* reply = out.get_message();
                reply->value = m.value;
                out.send(reply, 5);
            });
        echo->add_out_port<core::MyInteger>("out", "MyInteger");
        driver->add_in_port<core::MyInteger>(
            "pong", "MyInteger", cfg, [this](core::MyInteger&, core::Smm&) {
                {
                    std::lock_guard lk(mu);
                    done = true;
                }
                cv.notify_one();
            });
        app.connect(*driver, "ping", *echo, "in");
        app.connect(*echo, "out", *driver, "pong");
        app.start();
    }

    void round_trip() {
        auto& out = driver->out_port_t<core::MyInteger>("ping");
        core::MyInteger* msg = out.get_message();
        out.send(msg, 5);
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return done; });
        done = false;
    }
};

void BM_RoundTrip(benchmark::State& state) {
    PingPong harness(static_cast<Strategy>(state.range(0)));
    for (auto _ : state) {
        harness.round_trip();
    }
}

} // namespace

BENCHMARK(BM_RoundTrip)
    ->Arg(static_cast<int>(Strategy::kSync))
    ->Arg(static_cast<int>(Strategy::kDedicated))
    ->Arg(static_cast<int>(Strategy::kShared))
    ->ArgNames({"strategy(0=sync,1=dedicated,2=shared)"})
    ->UseRealTime();

BENCHMARK_MAIN();
