// Fig. 11 + §3.3 reproduction: round-trip latency of the Compadres
// component ORB vs the hand-coded RTZen-style baseline for message sizes
// 32..1024 bytes, client and server co-located over a loopback connection.
//
// Paper result: both ORBs highly predictable (jitter 300 us Compadres vs
// 230 us RTZen); medians grow with message size; the component ORB sits
// slightly above the baseline — the price of ports, pools, and SMMs.
#include "common.hpp"

#include "net/transport.hpp"
#include "orb/client_orb.hpp"
#include "orb/server_orb.hpp"
#include "rtzen/rtzen.hpp"

#include <cstdio>

using namespace compadres;

namespace {

orb::Servant make_echo_servant() {
    return [](const std::string&, const std::uint8_t* payload, std::size_t len,
              std::vector<std::uint8_t>& reply) {
        reply.assign(payload, payload + len);
        return true;
    };
}

template <typename Client>
rt::StatsSummary measure(Client& client, std::size_t payload_size,
                         std::size_t samples, std::size_t warmup) {
    std::vector<std::uint8_t> payload(payload_size);
    for (std::size_t i = 0; i < payload_size; ++i) {
        payload[i] = static_cast<std::uint8_t>(i);
    }
    rt::StatsRecorder recorder(samples + warmup);
    for (std::size_t i = 0; i < samples + warmup; ++i) {
        const auto t0 = rt::now_ns();
        const auto reply =
            client.invoke("Echo", "echo", payload.data(), payload.size());
        recorder.record(rt::now_ns() - t0);
        if (reply.size() != payload.size()) std::abort();
    }
    recorder.discard_warmup(warmup);
    return recorder.summarize();
}

constexpr std::size_t kSizes[] = {32, 64, 128, 256, 512, 1024};

} // namespace

int main() {
    const std::size_t samples = bench::sample_count();
    const std::size_t warmup = bench::warmup_count();
    std::printf("=== Fig. 11: Compadres ORB vs RTZen, loopback, single host ===\n");
    std::printf("samples per (orb, size): %zu steady-state\n\n", samples);
    std::printf("%-14s %6s %12s %12s %12s %12s\n", "ORB", "bytes", "min(us)",
                "median(us)", "max(us)", "jitter(us)");

    std::int64_t compadres_jitter_max = 0;
    std::int64_t rtzen_jitter_max = 0;
    std::int64_t compadres_median_sum = 0;
    std::int64_t rtzen_median_sum = 0;

    // --- Compadres component ORB (Fig. 10 structure) ---
    {
        orb::ServerOrb server;
        server.register_servant("Echo", make_echo_servant());
        auto [client_wire, server_wire] = net::make_loopback_pair();
        server.attach(std::move(server_wire));
        orb::ClientOrb client(std::move(client_wire));
        for (const std::size_t size : kSizes) {
            const auto s = measure(client, size, samples, warmup);
            std::printf("%-14s %6zu %12.1f %12.1f %12.1f %12.1f\n",
                        "Compadres", size,
                        static_cast<double>(s.min) / 1000.0,
                        static_cast<double>(s.median) / 1000.0,
                        static_cast<double>(s.max) / 1000.0,
                        static_cast<double>(s.jitter) / 1000.0);
            compadres_jitter_max = std::max(compadres_jitter_max, s.jitter);
            compadres_median_sum += s.median;
        }
    }

    // --- RTZen-style hand-coded baseline ---
    {
        rtzen::RtzenServerOrb server;
        server.register_servant("Echo", make_echo_servant());
        auto [client_wire, server_wire] = net::make_loopback_pair();
        server.attach(std::move(server_wire));
        rtzen::RtzenClientOrb client(std::move(client_wire));
        for (const std::size_t size : kSizes) {
            const auto s = measure(client, size, samples, warmup);
            std::printf("%-14s %6zu %12.1f %12.1f %12.1f %12.1f\n", "RTZen",
                        size, static_cast<double>(s.min) / 1000.0,
                        static_cast<double>(s.median) / 1000.0,
                        static_cast<double>(s.max) / 1000.0,
                        static_cast<double>(s.jitter) / 1000.0);
            rtzen_jitter_max = std::max(rtzen_jitter_max, s.jitter);
            rtzen_median_sum += s.median;
        }
    }

    std::printf("\nworst-case jitter: Compadres=%.1fus RTZen=%.1fus "
                "(paper: 300us vs 230us)\n",
                static_cast<double>(compadres_jitter_max) / 1000.0,
                static_cast<double>(rtzen_jitter_max) / 1000.0);
    std::printf("shape check: Compadres median >= RTZen median overall: %s\n",
                compadres_median_sum >= rtzen_median_sum ? "yes" : "NO");
    std::printf("shape check: both jitters < 10 ms bound: %s\n",
                (compadres_jitter_max < 10'000'000 &&
                 rtzen_jitter_max < 10'000'000)
                    ? "yes"
                    : "NO");
    return 0;
}
