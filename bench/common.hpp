// Shared harness pieces for the paper-reproduction benches.
#pragma once

#include "core/application.hpp"
#include "core/hooks.hpp"
#include "core/messages.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"
#include "simenv/platform.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

namespace compadres::bench {

/// Sample count per configuration; the paper used 10,000 steady-state
/// observations (§3.1). Override with COMPADRES_SAMPLES for quick runs.
inline std::size_t sample_count(std::size_t fallback = 10'000) {
    if (const char* env = std::getenv("COMPADRES_SAMPLES")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return fallback;
}

/// Warm-up iterations discarded before summarizing (cold-start effects,
/// §3.1 "measurements were based on steady state observations").
inline std::size_t warmup_count() { return sample_count() / 5; }

/// TraceSink adapter feeding a simulated platform's cost model from the
/// framework's alloc/dispatch events.
class PlatformSink final : public core::hooks::TraceSink {
public:
    explicit PlatformSink(simenv::PlatformRuntime& runtime)
        : runtime_(&runtime) {}
    void on_alloc(std::size_t bytes) noexcept override {
        runtime_->on_allocate(bytes);
    }
    void on_dispatch() noexcept override { runtime_->on_dispatch(); }

private:
    simenv::PlatformRuntime* runtime_;
};

/// Installs a simulated platform as the framework's trace sink for the
/// lifetime of this object.
class PlatformInstaller {
public:
    explicit PlatformInstaller(simenv::PlatformRuntime& runtime)
        : sink_(runtime) {
        core::hooks::set_sink(&sink_);
        core::hooks::set_charge_all_acquires(
            !runtime.profile().pooled_messages);
    }
    ~PlatformInstaller() { core::hooks::clear(); }

private:
    PlatformSink sink_;
};

/// One-hop pipeline (Source.tick -> Sink.tick, pooled port, one worker)
/// for measuring the delivery fabric's per-hop cost in isolation.
class HopHarness {
public:
    HopHarness() {
        core::register_builtin_message_types();
        app_ = std::make_unique<core::Application>("hop-bench");
        auto& source = app_->create_immortal<core::Component>("Source");
        auto& sink = app_->create_immortal<core::Component>("Sink");
        out_ = &source.add_out_port<core::MyInteger>("tick", "MyInteger");
        core::InPortConfig cfg;
        cfg.buffer_size = 64; // never exhausted: hops stay uncontended
        cfg.min_threads = cfg.max_threads = 1;
        in_ = &sink.add_in_port<core::MyInteger>(
            "tick", "MyInteger", cfg, [this](core::MyInteger&, core::Smm&) {
                entry_ns_.store(rt::now_ns(), std::memory_order_relaxed);
                {
                    std::lock_guard lk(mu_);
                    done_ = true;
                }
                cv_.notify_one();
            });
        app_->connect(source, "tick", sink, "tick", /*pool_capacity=*/128);
        app_->start();
    }

    ~HopHarness() { app_->shutdown(); }

    /// One measured hop: send -> handler entry (one message in flight).
    std::int64_t hop() { return timed_hop(rt::now_ns()); }

    /// Same, but with the clock started by the caller — lets a legacy
    /// rung charge its extra admission work to the hop.
    std::int64_t timed_hop(std::int64_t t0) {
        core::MyInteger* msg = out_->get_message();
        msg->value = 1;
        out_->send(msg, 3);
        wait_done();
        return entry_ns_.load(std::memory_order_relaxed) - t0;
    }

    core::InPortBase& in() { return *in_; }

private:
    void wait_done() {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return done_; });
        done_ = false;
    }

    std::unique_ptr<core::Application> app_;
    core::OutPort<core::MyInteger>* out_ = nullptr;
    core::InPortBase* in_ = nullptr;
    std::atomic<std::int64_t> entry_ns_{0};
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
};

/// The legacy port-buffer rendezvous the credit fabric replaced: a mutex +
/// condvar guarding an in-flight count, taken once on admission and once on
/// completion. Wrapping a hop with it re-creates the old two-lock cost.
struct LegacyGate {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t in_flight = 0;
    std::size_t capacity = 64;

    void admit() {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return in_flight < capacity; });
        ++in_flight;
    }
    void complete() {
        {
            std::lock_guard lk(mu);
            --in_flight;
        }
        cv.notify_one();
    }
};

/// Steady-state hop latencies through the shipped single-lock fabric.
inline rt::StatsSummary measure_single_lock_hops(HopHarness& h,
                                                 std::size_t samples,
                                                 std::size_t warmup) {
    rt::StatsRecorder recorder(samples + warmup);
    for (std::size_t i = 0; i < samples + warmup; ++i) {
        recorder.record(h.hop());
    }
    recorder.discard_warmup(warmup);
    return recorder.summarize();
}

/// Steady-state hop latencies with the legacy two-lock rendezvous re-added.
inline rt::StatsSummary measure_two_lock_hops(HopHarness& h, LegacyGate& gate,
                                              std::size_t samples,
                                              std::size_t warmup) {
    rt::StatsRecorder recorder(samples + warmup);
    for (std::size_t i = 0; i < samples + warmup; ++i) {
        const std::int64_t t0 = rt::now_ns();
        gate.admit();
        const std::int64_t d = h.timed_hop(t0);
        gate.complete();
        recorder.record(d);
    }
    recorder.discard_warmup(warmup);
    return recorder.summarize();
}

/// The paper's Fig. 6 co-located client/server assembly, reused by the
/// Table 2 / Fig. 9 benches. Handlers match Figs. 7/8: a trigger on P1
/// makes the client send a request (P3 -> P4); the server replies
/// (P5 -> P6); P6's handler signals completion.
class Fig6Harness {
public:
    explicit Fig6Harness(bool synchronous_ports = false) {
        core::register_builtin_message_types();
        core::RtsjAttributes attrs;
        attrs.immortal_size = 8 * 1024 * 1024;
        attrs.scoped_pools = {{1, 256 * 1024, 4}};
        app_ = std::make_unique<core::Application>("fig6-bench", attrs);

        core::InPortConfig port_cfg;
        if (synchronous_ports) {
            port_cfg.min_threads = port_cfg.max_threads = 0;
        } else {
            port_cfg.buffer_size = 10;
            port_cfg.min_threads = 1;
            port_cfg.max_threads = 5;
        }

        imc_ = &app_->create_immortal<core::Component>("IMC");
        client_ = &app_->create_scoped<core::Component>("MyClient", *imc_, 1);
        server_ = &app_->create_scoped<core::Component>("MyServer", *imc_, 1);

        imc_->add_out_port<core::MyInteger>("P1", "MyInteger");
        client_->add_in_port<core::MyInteger>(
            "P2", "MyInteger", port_cfg, [](core::MyInteger&, core::Smm& smm) {
                auto& p3 = static_cast<core::OutPort<core::MyInteger>&>(
                    smm.get_out_port("P3"));
                core::MyInteger* request = p3.get_message();
                request->value = 3;
                p3.send(request, 3);
            });
        client_->add_out_port<core::MyInteger>("P3", "MyInteger");
        server_->add_in_port<core::MyInteger>(
            "P4", "MyInteger", port_cfg, [](core::MyInteger&, core::Smm& smm) {
                auto& p5 = static_cast<core::OutPort<core::MyInteger>&>(
                    smm.get_out_port("P5"));
                core::MyInteger* reply = p5.get_message();
                reply->value = 4;
                p5.send(reply, 3);
            });
        server_->add_out_port<core::MyInteger>("P5", "MyInteger");
        client_->add_in_port<core::MyInteger>(
            "P6", "MyInteger", port_cfg,
            [this](core::MyInteger&, core::Smm&) { complete(); });

        app_->connect(*imc_, "P1", *client_, "P2");
        app_->connect(*client_, "P3", *server_, "P4");
        app_->connect(*server_, "P5", *client_, "P6");
        app_->start();
    }

    ~Fig6Harness() { app_->shutdown(); }

    /// One measured round trip (trigger -> request -> reply -> done).
    std::int64_t round_trip() {
        const auto t0 = rt::now_ns();
        auto& p1 = imc_->out_port_t<core::MyInteger>("P1");
        core::MyInteger* trigger = p1.get_message();
        p1.send(trigger, 2);
        wait_complete();
        return rt::now_ns() - t0;
    }

    /// Run warm-up + samples; returns the steady-state recorder.
    rt::StatsRecorder measure(std::size_t samples, std::size_t warmup) {
        rt::StatsRecorder recorder(samples + warmup);
        for (std::size_t i = 0; i < samples + warmup; ++i) {
            recorder.record(round_trip());
        }
        recorder.discard_warmup(warmup);
        return recorder;
    }

private:
    void complete() {
        {
            std::lock_guard lk(mu_);
            done_ = true;
        }
        cv_.notify_one();
    }
    void wait_complete() {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return done_; });
        done_ = false;
    }

    std::unique_ptr<core::Application> app_;
    core::Component* imc_ = nullptr;
    core::Component* client_ = nullptr;
    core::Component* server_ = nullptr;
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
};

} // namespace compadres::bench
