// Before/after microbenchmark for the credit-based delivery fabric.
//
// One hop = OutPort::send() -> handler entry on a dispatcher worker. The
// shipped fabric settles admission with a lock-free credit CAS and pays a
// single lock acquisition per hop (the intake-queue push). The "before"
// rung re-creates the legacy rendezvous cost on the same pipeline: a
// port-level mutex + condition-variable bookkeeping wrapped around every
// send and completion, the way the old buffer-mutex worked, on top of the
// intake lock — two locks per hop.
//
// The binary is also a correctness gate (run by the `hop_bench` tool
// target): it asserts exactly one lock acquisition and zero credit stalls
// per uncontended hop, and that the single-lock median is not worse than
// the two-lock emulation. Results land in BENCH_hop.json.
#include "common.hpp"

#include <cstdio>

using namespace compadres;

namespace {

void print_row(const char* name, const rt::StatsSummary& s) {
    std::printf("%-24s %10.2f %10.2f %10.2f %10.2f\n", name,
                static_cast<double>(s.median) / 1000.0,
                static_cast<double>(s.p90) / 1000.0,
                static_cast<double>(s.p99) / 1000.0,
                static_cast<double>(s.max) / 1000.0);
}

void emit_json(const char* path, std::size_t hops,
               const rt::StatsSummary& single, const rt::StatsSummary& two,
               double locks_per_hop, std::uint64_t stalls) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    const auto obj = [&](const rt::StatsSummary& s) {
        std::fprintf(f,
                     "{\"median_ns\": %lld, \"mean_ns\": %lld, "
                     "\"p90_ns\": %lld, \"p99_ns\": %lld, \"max_ns\": %lld}",
                     static_cast<long long>(s.median),
                     static_cast<long long>(s.mean),
                     static_cast<long long>(s.p90),
                     static_cast<long long>(s.p99),
                     static_cast<long long>(s.max));
    };
    std::fprintf(f, "{\n  \"benchmark\": \"hop_microbench\",\n");
    std::fprintf(f, "  \"hops\": %zu,\n", hops);
    std::fprintf(f, "  \"single_lock\": ");
    obj(single);
    std::fprintf(f, ",\n  \"two_lock_emulation\": ");
    obj(two);
    std::fprintf(f, ",\n  \"locks_per_uncontended_hop\": %.3f,\n",
                 locks_per_hop);
    std::fprintf(f, "  \"credit_stalls\": %llu\n}\n",
                 static_cast<unsigned long long>(stalls));
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = argc > 1 ? argv[1] : "BENCH_hop.json";
    const std::size_t samples = bench::sample_count(5'000);
    const std::size_t warmup = bench::warmup_count();
    std::printf("=== Hop microbenchmark: credit fabric vs two-lock hop ===\n");
    std::printf("samples per rung: %zu steady-state\n\n", samples);

    rt::StatsSummary single;
    double locks_per_hop = 0.0;
    std::uint64_t stalls = 0;
    {
        bench::HopHarness h;
        single = bench::measure_single_lock_hops(h, samples, warmup);
        const std::size_t total = samples + warmup;
        locks_per_hop =
            static_cast<double>(h.in().dispatcher()->queue_lock_count()) /
            static_cast<double>(total);
        stalls = h.in().credits().stall_count();
    }
    rt::StatsSummary two;
    {
        bench::HopHarness h;
        bench::LegacyGate gate;
        two = bench::measure_two_lock_hops(h, gate, samples, warmup);
    }

    std::printf("%-24s %10s %10s %10s %10s\n", "Variant", "p50(us)",
                "p90(us)", "p99(us)", "max(us)");
    print_row("single-lock (shipped)", single);
    print_row("two-lock (emulated)", two);
    std::printf("\nlocks per uncontended hop: %.3f (credit stalls: %llu)\n",
                locks_per_hop, static_cast<unsigned long long>(stalls));

    emit_json(json_path, samples, single, two, locks_per_hop, stalls);

    // Gate 1: the uncontended hop takes exactly one lock — the intake push.
    bool ok = true;
    if (locks_per_hop > 1.0001 || stalls != 0) {
        std::fprintf(stderr,
                     "FAIL: expected 1 lock / 0 stalls per uncontended hop, "
                     "got %.3f locks, %llu stalls\n",
                     locks_per_hop, static_cast<unsigned long long>(stalls));
        ok = false;
    }
    // Gate 2: dropping a lock must not make the hop slower. Allow 10% + 2us
    // slack so scheduler noise can't flake the gate.
    if (single.median > two.median + two.median / 10 + 2'000) {
        std::fprintf(stderr,
                     "FAIL: single-lock median %lldns worse than two-lock "
                     "median %lldns\n",
                     static_cast<long long>(single.median),
                     static_cast<long long>(two.median));
        ok = false;
    }
    std::printf("%s\n", ok ? "hop gates PASSED" : "hop gates FAILED");
    return ok ? 0 : 1;
}
