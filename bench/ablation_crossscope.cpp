// Ablation A1 (paper §2.2 discussion): the three cross-scope message
// passing mechanisms the authors weighed before choosing shared objects.
//
//   serialization — serialize the object and copy it into an area the
//                   receiver can reference (paper: "much less efficient");
//   shared object — the pooled message in the common ancestor's SMM
//                   (what Compadres generates);
//   handoff       — a thread with structural knowledge writes straight
//                   into the destination (fastest, least reusable).
//
// Expected shape: handoff <= shared-object << serialization.
#include "cdr/cdr.hpp"
#include "core/message_pool.hpp"
#include "memory/immortal.hpp"

#include <benchmark/benchmark.h>

#include <array>

#include <cstring>
#include <vector>

using namespace compadres;

namespace {

struct Message {
    static constexpr std::size_t kCapacity = 2048;
    std::array<std::uint8_t, kCapacity> data{};
    std::size_t length = 0;
};

std::vector<std::uint8_t> make_payload(std::size_t n) {
    std::vector<std::uint8_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i);
    return p;
}

void BM_SharedObject(benchmark::State& state) {
    const auto payload = make_payload(static_cast<std::size_t>(state.range(0)));
    memory::ImmortalMemory ancestor(1024 * 1024, "ancestor");
    core::MessagePool<Message> pool(ancestor, "Message", 4);
    std::uint8_t sink[Message::kCapacity];
    for (auto _ : state) {
        // Sender: getMessage, fill, (deliver); receiver: read, release.
        Message* msg = pool.acquire();
        std::memcpy(msg->data.data(), payload.data(), payload.size());
        msg->length = payload.size();
        std::memcpy(sink, msg->data.data(), msg->length);
        pool.release(msg);
        benchmark::DoNotOptimize(sink);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void BM_Serialization(benchmark::State& state) {
    const auto payload = make_payload(static_cast<std::size_t>(state.range(0)));
    std::uint8_t sink[Message::kCapacity];
    for (auto _ : state) {
        // Sender: CDR-encode; the frame is copied into an accessible area
        // (the vector models it); receiver: decode into its own storage.
        cdr::OutputStream out;
        out.write_octet_seq(payload.data(), payload.size());
        cdr::InputStream in(out.buffer().data(), out.buffer().size());
        const auto [ptr, len] = in.read_octet_seq_view();
        std::memcpy(sink, ptr, len);
        benchmark::DoNotOptimize(sink);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

void BM_Handoff(benchmark::State& state) {
    const auto payload = make_payload(static_cast<std::size_t>(state.range(0)));
    // The handoff pattern: the sender knows exactly where the receiver's
    // buffer lives (tight coupling) and writes once, no pool, no framing.
    memory::ImmortalMemory ancestor(1024 * 1024, "ancestor");
    auto* dest = ancestor.make<Message>();
    for (auto _ : state) {
        std::memcpy(dest->data.data(), payload.data(), payload.size());
        dest->length = payload.size();
        benchmark::DoNotOptimize(dest->data.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}

} // namespace

BENCHMARK(BM_SharedObject)->Arg(32)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);
BENCHMARK(BM_Serialization)->Arg(32)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);
BENCHMARK(BM_Handoff)->Arg(32)->Arg(128)->Arg(512)->Arg(1024)->Arg(2048);

BENCHMARK_MAIN();
