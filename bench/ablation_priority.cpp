// Ablation A6 (paper §2.2): priority-ordered dispatch.
//
// "Messages are assigned a priority in the send() method of the Out port.
// When a message arrives at an In port, a thread from the threadpool is
// assigned the priority of the incoming message..."
//
// This bench measures what that buys: the latency of an urgent message
// that arrives behind a backlog of bulk traffic on the same In port.
// With priority dispatch the urgent message jumps the queue; with FIFO
// (everything sent at one priority) it waits out the backlog.
#include "core/application.hpp"
#include "core/messages.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace compadres;

namespace {

std::size_t iterations() {
    if (const char* env = std::getenv("COMPADRES_SAMPLES")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v) / 10 + 10;
    }
    return 120;
}

struct Harness {
    core::Application app{"priority-ablation"};
    core::Component* producer;
    core::Component* consumer;
    std::mutex mu;
    std::condition_variable cv;
    bool urgent_done = false;
    int bulk_done = 0;

    Harness() {
        core::register_builtin_message_types();
        producer = &app.create_immortal<core::Component>("Producer");
        consumer = &app.create_immortal<core::Component>("Consumer");
        producer->add_out_port<core::MyInteger>("out", "MyInteger");
        core::InPortConfig cfg;
        cfg.buffer_size = 64;
        cfg.min_threads = cfg.max_threads = 1; // single server: backlog forms
        consumer->add_in_port<core::MyInteger>(
            "in", "MyInteger", cfg, [this](core::MyInteger& m, core::Smm&) {
                // Each message costs ~0.5 ms of "work". The work SLEEPS
                // rather than spins so the producer can enqueue the whole
                // backlog even on a single-CPU host (a spinning worker
                // would starve the sender and no backlog would ever form).
                rt::sleep_ns(500'000);
                std::lock_guard lk(mu);
                if (m.value == -1) {
                    urgent_done = true;
                    cv.notify_all();
                } else {
                    ++bulk_done;
                    cv.notify_all();
                }
            });
        app.connect(*producer, "out", *consumer, "in", /*pool_capacity=*/80);
        app.start();
    }

    /// Queue `backlog` bulk messages, then one urgent message; return the
    /// urgent message's queue-to-completion latency.
    std::int64_t measure_urgent(int backlog, int bulk_prio, int urgent_prio) {
        auto& out = producer->out_port_t<core::MyInteger>("out");
        {
            std::lock_guard lk(mu);
            urgent_done = false;
            bulk_done = 0;
        }
        for (int i = 0; i < backlog; ++i) {
            core::MyInteger* m = out.get_message();
            m->value = i;
            out.send(m, bulk_prio);
        }
        const auto t0 = rt::now_ns();
        core::MyInteger* urgent = out.get_message();
        urgent->value = -1;
        out.send(urgent, urgent_prio);
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return urgent_done; });
        const auto latency = rt::now_ns() - t0;
        cv.wait(lk, [&] { return bulk_done >= backlog; }); // drain
        return latency;
    }
};

} // namespace

int main() {
    const std::size_t rounds = iterations();
    constexpr int kBacklog = 24;
    std::printf("=== priority dispatch vs FIFO: urgent message behind a "
                "%d-message backlog (%zu rounds) ===\n",
                kBacklog, rounds);

    Harness harness;
    rt::StatsRecorder fifo(rounds), prioritized(rounds);
    for (std::size_t i = 0; i < rounds; ++i) {
        // FIFO: urgent message carries the same priority as the bulk.
        fifo.record(harness.measure_urgent(kBacklog, 10, 10));
        // Priority dispatch: urgent message outranks the bulk.
        prioritized.record(harness.measure_urgent(kBacklog, 10, 90));
    }

    const auto f = fifo.summarize();
    const auto p = prioritized.summarize();
    std::printf("%s\n",
                rt::StatsRecorder::format_row_us("FIFO (equal prio)", f).c_str());
    std::printf("%s\n",
                rt::StatsRecorder::format_row_us("priority dispatch", p).c_str());
    std::printf("\nurgent-message median speedup: %.1fx (backlog of %d x 0.5ms "
                "of work ahead of it)\n",
                p.median > 0 ? static_cast<double>(f.median) /
                                   static_cast<double>(p.median)
                             : 0.0,
                kBacklog);
    std::printf("shape check: priority dispatch beats FIFO: %s\n",
                p.median < f.median ? "yes" : "NO");
    return 0;
}
