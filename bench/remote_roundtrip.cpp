// Remote round-trip bench + gates for the allocation-free wire fast path.
//
// Two applications bridged over an in-process loopback wire echo OctetSeq
// payloads: A.ping -> [bridge] -> B.echo -> [bridge] -> A.pong. Round
// trips run in pipelined batches (kBatch in flight) so reader threads stay
// hot and the per-message cost reflects the wire path, not scheduler
// wake-ups. Per payload size (32..1024 B) the bench reports p50/p99 for
// the shipped fast path and for the pre-change wire emulation
// (BridgeOptions::legacy_wire_path — fresh buffers, header-string copies,
// payload copied before decode) in the same run.
//
// The binary is also a correctness gate (run by the `remote_bench` tool
// target, and in --smoke form by ctest):
//   * steady-state allocations per message == 0 on the fast path (counted
//     by a global operator new override),
//   * syscalls per frame < 1 under a TCP send burst (the coalescing
//     writer's scatter-gather batching),
//   * p50 at 32 B at least 15% better than the legacy wire (full runs
//     only; skipped under --smoke and sanitizers, where timing is noise).
// Results land in BENCH_remote.json.
#include "common.hpp"

#include "cdr/giop.hpp"
#include "net/frame_pool.hpp"
#include "net/shm_transport.hpp"
#include "net/tcp.hpp"
#include "remote/bridge.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#if !defined(COMPADRES_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMPADRES_UNDER_SANITIZER 1
#endif
#endif
#ifndef COMPADRES_UNDER_SANITIZER
#define COMPADRES_UNDER_SANITIZER 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

// Count every heap allocation in the process so the steady-state gate can
// assert the remote hop makes none.
void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(al);
    if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
    return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace compadres;

namespace {

constexpr std::size_t kBatch = 64;  ///< round trips in flight per sample
constexpr std::size_t kPayloadSizes[] = {32, 128, 512, 1024};

core::InPortConfig sync_port() {
    core::InPortConfig cfg;
    cfg.min_threads = cfg.max_threads = 0;
    return cfg;
}

/// A.ping -> bridge -> B (echo) -> bridge -> A.pong over one loopback wire.
class EchoHarness {
public:
    explicit EchoHarness(bool legacy) {
        core::register_builtin_message_types();
        remote::register_builtin_serializers();
        auto [wire_a, wire_b] = net::make_loopback_pair(256);
        remote::BridgeOptions options;
        options.legacy_wire_path = legacy;
        bridge_a_ = std::make_unique<remote::RemoteBridge>(
            app_a_, std::move(wire_a), "rr-a", options);
        bridge_b_ = std::make_unique<remote::RemoteBridge>(
            app_b_, std::move(wire_b), "rr-b", options);

        auto& pinger = app_a_.create_immortal<core::Component>("Pinger");
        ping_out_ = &pinger.add_out_port<core::OctetSeq>("out", "OctetSeq");
        bridge_a_->export_route(*ping_out_, "ping");
        auto& pong_in = pinger.add_in_port<core::OctetSeq>(
            "back", "OctetSeq", sync_port(),
            [this](core::OctetSeq&, core::Smm&) {
                // Notify only when the batch target is met: a futex wake per
                // pong would be harness overhead drowning the wire delta.
                bool wake;
                {
                    std::lock_guard lk(mu_);
                    wake = ++pongs_ >= target_.load(std::memory_order_relaxed);
                }
                if (wake) cv_.notify_one();
            });
        bridge_a_->import_route("pong", pong_in);

        auto& echo = app_b_.create_immortal<core::Component>("Echo");
        echo_out_ = &echo.add_out_port<core::OctetSeq>("out", "OctetSeq");
        bridge_b_->export_route(*echo_out_, "pong");
        auto& echo_in = echo.add_in_port<core::OctetSeq>(
            "in", "OctetSeq", sync_port(),
            [this](core::OctetSeq& m, core::Smm&) {
                core::OctetSeq* fwd = echo_out_->get_message();
                fwd->assign(m.data.data(), m.length);
                echo_out_->send(fwd, 5);
            });
        bridge_b_->import_route("ping", echo_in);

        bridge_a_->start();
        bridge_b_->start();
        // The bench overwrites every message field it reads (length is the
        // knob, payload bytes are never inspected), so the pools' release
        // scrub — a 4 KiB object write per message — would only measure
        // itself. Applies to both harnesses equally.
        ping_out_->pool()->set_scrub_on_release(false);
        echo_out_->pool()->set_scrub_on_release(false);
    }

    void send_ping(std::size_t payload_len) {
        core::OctetSeq* msg = ping_out_->get_message();
        msg->length = payload_len; // stale bytes are fine: size is the knob
        ping_out_->send(msg, 5);
    }

    /// Arm the completion wake-up before a batch is sent.
    void set_target(std::uint64_t target) {
        target_.store(target, std::memory_order_relaxed);
    }

    void await_pongs(std::uint64_t target) {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return pongs_ >= target; });
    }

    std::uint64_t pongs() const {
        std::lock_guard lk(mu_);
        return pongs_;
    }

private:
    core::Application app_a_{"rr-app-a"};
    core::Application app_b_{"rr-app-b"};
    std::unique_ptr<remote::RemoteBridge> bridge_a_;
    std::unique_ptr<remote::RemoteBridge> bridge_b_;
    core::OutPort<core::OctetSeq>* ping_out_ = nullptr;
    core::OutPort<core::OctetSeq>* echo_out_ = nullptr;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t pongs_ = 0;
    std::atomic<std::uint64_t> target_{0};
};

struct RungResult {
    rt::StatsSummary stats;          ///< per-message round-trip latency
    double allocs_per_message = 0.0; ///< steady-state, all threads
};

struct PairResult {
    RungResult fast;
    RungResult legacy;
    /// Median over batches of the per-batch improvement (each fast batch
    /// paired with the legacy batch that ran right after it). Robust to
    /// drift: a slow scheduling window inflates both halves of a pair, so
    /// the pair's ratio survives where a ratio of global medians would not.
    double paired_improvement_pct = 0.0;
};

/// One pipelined batch of round trips; returns per-message nanoseconds.
std::int64_t run_batch(EchoHarness& h, std::size_t payload,
                       std::uint64_t& done) {
    done += kBatch;
    h.set_target(done);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kBatch; ++k) h.send_ping(payload);
    h.await_pongs(done);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
               .count() /
           static_cast<std::int64_t>(kBatch);
}

/// Alternate fast- and legacy-path batches within the same time window so
/// scheduler and frequency drift hit both variants equally — the p50
/// comparison would otherwise be noise. The allocation counter is read
/// around each fast segment only (the legacy harness is idle meanwhile),
/// so legacy's intentional allocations stay out of the zero-alloc gate.
PairResult run_pair(EchoHarness& h_fast, EchoHarness& h_legacy,
                    std::size_t payload, std::size_t iters,
                    std::size_t warmup) {
    rt::StatsRecorder rec_fast(iters);
    rt::StatsRecorder rec_legacy(iters);
    rt::StatsRecorder rec_improve(iters); // per-pair improvement, ppm
    std::uint64_t done_fast = h_fast.pongs();
    std::uint64_t done_legacy = h_legacy.pongs();
    std::uint64_t fast_allocs = 0;
    for (std::size_t it = 0; it < warmup + iters; ++it) {
        const std::uint64_t a0 = g_allocs.load();
        const std::int64_t ns_fast = run_batch(h_fast, payload, done_fast);
        const std::uint64_t a1 = g_allocs.load();
        const std::int64_t ns_legacy =
            run_batch(h_legacy, payload, done_legacy);
        if (it >= warmup) {
            fast_allocs += a1 - a0;
            rec_fast.record(ns_fast);
            rec_legacy.record(ns_legacy);
            if (ns_legacy > 0) {
                rec_improve.record((ns_legacy - ns_fast) * 1'000'000 /
                                   ns_legacy);
            }
        }
    }
    PairResult r;
    r.fast.allocs_per_message = static_cast<double>(fast_allocs) /
                                static_cast<double>(iters * kBatch);
    r.fast.stats = rec_fast.summarize();
    r.legacy.stats = rec_legacy.summarize();
    r.paired_improvement_pct =
        static_cast<double>(rec_improve.summarize().median) / 10'000.0;
    return r;
}

struct BurstResult {
    double syscalls_per_frame = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t max_batch_frames = 0;
};

/// Blast frames from several threads at a delayed TCP reader and measure
/// syscalls per frame on the sending transport.
BurstResult run_burst(net::WritePolicy policy) {
    net::TcpAcceptor acceptor(0);
    std::unique_ptr<net::Transport> server_side;
    std::thread accept_thread([&] { server_side = acceptor.accept(); });
    net::TcpOptions options;
    options.policy = policy;
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port(), options);
    accept_thread.join();

    cdr::RequestHeader req;
    req.object_key = "burst";
    req.operation = "op";
    std::vector<std::uint8_t> payload(4096, 0x5A);
    const std::vector<std::uint8_t> frame =
        cdr::encode_request(req, payload.data(), payload.size());

    constexpr int kSenders = 4;
    constexpr int kPerSender = 500;
    std::vector<std::thread> senders;
    for (int t = 0; t < kSenders; ++t) {
        senders.emplace_back([&client, &frame] {
            for (int i = 0; i < kPerSender; ++i) client->send_frame(frame);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int i = 0; i < kSenders * kPerSender; ++i) {
        if (!server_side->recv_frame().has_value()) break;
    }
    for (auto& s : senders) s.join();

    const net::TransportStats stats = client->stats();
    BurstResult r;
    r.frames = stats.frames_sent;
    r.max_batch_frames = stats.max_batch_frames;
    r.syscalls_per_frame = static_cast<double>(stats.send_syscalls) /
                           static_cast<double>(stats.frames_sent);
    return r;
}

// ---- co-located shm wire vs TCP fast path (wire level, pipelined) ----
//
// The shm rung measures the transport pair itself, not the full bridge
// path: batches of kBatch GIOP frames pushed through one wire and echoed
// back by a peer thread, shm and TCP batches interleaved in the same time
// window. On a one-core host the full middleware path is dominated by
// scheduler hand-offs that hit both wires identically; the wire-level
// pipeline is where the syscall-free segment actually shows up.

/// Echoes every frame straight back on the same wire until it closes.
/// Survives an shm failover: after the peer's bye the echo continues over
/// the TCP fallback until the client closes.
struct WireEcho {
    std::unique_ptr<net::Transport> wire;
    std::thread thread;

    void start() {
        thread = std::thread([this] {
            while (auto f = wire->recv_frame()) {
                wire->send_frame(std::move(*f));
            }
        });
    }
    void join() {
        if (thread.joinable()) thread.join();
    }
};

struct ShmWirePair {
    std::unique_ptr<net::Transport> client;
    WireEcho echo;
    bool shm = false;
    std::string detail;
};

ShmWirePair make_shm_pair(const net::ShmOptions& opts) {
    net::ShmAcceptor acceptor(0, opts);
    ShmWirePair pair;
    std::thread accept_thread([&] {
        net::ShmConnectResult r = acceptor.accept();
        pair.echo.wire = std::move(r.transport);
    });
    net::ShmConnectResult r =
        net::shm_upgrade_connect("127.0.0.1", acceptor.bound_port(), opts);
    accept_thread.join();
    pair.client = std::move(r.transport);
    pair.shm = r.shm;
    pair.detail = std::move(r.detail);
    return pair;
}

std::unique_ptr<net::Transport> make_tcp_pair(WireEcho& echo) {
    net::TcpAcceptor acceptor(0);
    std::thread accept_thread([&] { echo.wire = acceptor.accept(); });
    auto client = net::tcp_connect("127.0.0.1", acceptor.bound_port());
    accept_thread.join();
    return client;
}

/// One encoded GIOP request frame carrying `payload_len` bytes.
std::vector<std::uint8_t> wire_frame(std::size_t payload_len) {
    cdr::RequestHeader req;
    req.object_key = "bench";
    req.operation = "echo";
    std::vector<std::uint8_t> payload(payload_len, 0x42);
    return cdr::encode_request(req, payload.data(), payload.size());
}

/// Like wire_frame, stamped with a priority band for banded wires.
std::vector<std::uint8_t> wire_frame_band(std::size_t payload_len,
                                          std::uint8_t band) {
    std::vector<std::uint8_t> f = wire_frame(payload_len);
    cdr::set_frame_band(f.data(), band);
    return f;
}

/// One pipelined batch: kBatch frames out, kBatch echoes back. Returns
/// nanoseconds per round trip.
std::int64_t wire_batch(net::Transport& t,
                        const std::vector<std::uint8_t>& frame) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kBatch; ++k) {
        net::FrameBuffer fb =
            net::FrameBufferPool::global().acquire(frame.size());
        std::memcpy(fb.data(), frame.data(), frame.size());
        t.send_frame(std::move(fb));
    }
    for (std::size_t k = 0; k < kBatch; ++k) {
        if (!t.recv_frame().has_value()) {
            std::fprintf(stderr, "wire closed mid-batch\n");
            std::abort();
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
               .count() /
           static_cast<std::int64_t>(kBatch);
}

struct ShmRungResult {
    rt::StatsSummary shm;            ///< ns per round trip, shm wire
    rt::StatsSummary tcp;            ///< ns per round trip, TCP fast path
    double paired_speedup = 0.0;     ///< median of per-pair tcp/shm ratios
    double allocs_per_message = 0.0; ///< shm batches only
    /// Futex syscalls (waits + wakes, both endpoints) per round trip; the
    /// steady path's only kernel entries, paid once per pipeline stall,
    /// not per message.
    double futex_per_message = 0.0;
    double wakeups_per_message = 0.0;
    std::uint64_t shm_frames = 0;  ///< frames that crossed the segment
    std::uint64_t rx_copies = 0;   ///< copy-out fallbacks, both endpoints
    std::uint64_t rx_borrowed = 0; ///< zero-copy receives, both endpoints
};

std::uint64_t futex_count(const net::ShmCounters& c) {
    return c.wakeups + c.futex_waits;
}

/// Interleaved shm/TCP batches, allocation and futex counters read around
/// the shm segments only.
ShmRungResult run_shm_rung(net::Transport& shm_wire, net::Transport* shm_peer,
                           net::Transport& tcp_wire, std::size_t payload,
                           std::size_t iters, std::size_t warmup) {
    auto* shm_a = dynamic_cast<net::ShmTransport*>(&shm_wire);
    auto* shm_b = dynamic_cast<net::ShmTransport*>(shm_peer);
    const std::vector<std::uint8_t> frame = wire_frame(payload);
    rt::StatsRecorder rec_shm(iters);
    rt::StatsRecorder rec_tcp(iters);
    rt::StatsRecorder rec_ratio(iters); // per-pair tcp/shm ratio, x1000
    std::uint64_t allocs = 0, futexes = 0, wakeups = 0, shm_frames0 = 0;
    for (std::size_t it = 0; it < warmup + iters; ++it) {
        const std::uint64_t a0 = g_allocs.load();
        const std::uint64_t f0 =
            (shm_a ? futex_count(shm_a->counters()) : 0) +
            (shm_b ? futex_count(shm_b->counters()) : 0);
        const std::uint64_t w0 = (shm_a ? shm_a->counters().wakeups : 0) +
                                 (shm_b ? shm_b->counters().wakeups : 0);
        if (it == warmup && shm_a) {
            shm_frames0 = shm_a->counters().shm_frames_sent;
        }
        const std::int64_t ns_shm = wire_batch(shm_wire, frame);
        const std::uint64_t a1 = g_allocs.load();
        const std::uint64_t f1 =
            (shm_a ? futex_count(shm_a->counters()) : 0) +
            (shm_b ? futex_count(shm_b->counters()) : 0);
        const std::uint64_t w1 = (shm_a ? shm_a->counters().wakeups : 0) +
                                 (shm_b ? shm_b->counters().wakeups : 0);
        const std::int64_t ns_tcp = wire_batch(tcp_wire, frame);
        if (it >= warmup) {
            allocs += a1 - a0;
            futexes += f1 - f0;
            wakeups += w1 - w0;
            rec_shm.record(ns_shm);
            rec_tcp.record(ns_tcp);
            if (ns_shm > 0) rec_ratio.record(ns_tcp * 1000 / ns_shm);
        }
    }
    ShmRungResult r;
    r.shm = rec_shm.summarize();
    r.tcp = rec_tcp.summarize();
    r.paired_speedup =
        static_cast<double>(rec_ratio.summarize().median) / 1000.0;
    const double messages = static_cast<double>(iters * kBatch);
    r.allocs_per_message = static_cast<double>(allocs) / messages;
    r.futex_per_message = static_cast<double>(futexes) / messages;
    r.wakeups_per_message = static_cast<double>(wakeups) / messages;
    if (shm_a) {
        r.shm_frames = shm_a->counters().shm_frames_sent - shm_frames0;
    }
    for (auto* t : {shm_a, shm_b}) {
        if (t == nullptr) continue;
        const net::ShmCounters c = t->counters();
        r.rx_copies += c.rx_copies;
        r.rx_borrowed += c.rx_borrowed;
    }
    return r;
}

// ---- zero-copy receive payload sweep ----
//
// Two live segments in the same run, identical except for the receive
// discipline: one hands out borrowed frames (views into the rx arena),
// the other copies every frame into a pooled buffer first (the pre-change
// behavior, still available as the pin-budget fallback). The echo shape
// pays the receive cost on both endpoints, so a batch's delta is two
// memcpys per round trip.

struct SweepRow {
    std::size_t payload = 0;
    rt::StatsSummary zero_copy;
    rt::StatsSummary copying;
    /// Median over batches of the per-pair improvement; robust to drift
    /// (see PairResult::paired_improvement_pct).
    double paired_improvement_pct = 0.0;
};

SweepRow run_sweep_rung(net::Transport& zc_wire, net::Transport& copy_wire,
                        std::size_t payload, std::size_t iters,
                        std::size_t warmup) {
    const std::vector<std::uint8_t> frame = wire_frame(payload);
    rt::StatsRecorder rec_zc(iters);
    rt::StatsRecorder rec_copy(iters);
    rt::StatsRecorder rec_improve(iters);
    for (std::size_t it = 0; it < warmup + iters; ++it) {
        const std::int64_t ns_zc = wire_batch(zc_wire, frame);
        const std::int64_t ns_copy = wire_batch(copy_wire, frame);
        if (it >= warmup) {
            rec_zc.record(ns_zc);
            rec_copy.record(ns_copy);
            if (ns_copy > 0) {
                rec_improve.record((ns_copy - ns_zc) * 1'000'000 / ns_copy);
            }
        }
    }
    SweepRow r;
    r.payload = payload;
    r.zero_copy = rec_zc.summarize();
    r.copying = rec_copy.summarize();
    r.paired_improvement_pct =
        static_cast<double>(rec_improve.summarize().median) / 10'000.0;
    return r;
}

// ---- 2-band shm interference rung ----

struct TwoBandResult {
    rt::StatsSummary uncontended; ///< urgent-only round trips, ns
    rt::StatsSummary contended;   ///< urgent under a band-1 bulk window
    double p99_ratio = 0.0;
    std::uint64_t bulk_frames = 0;
    std::uint64_t urgent_band_frames = 0; ///< band-0 rx frames, client side
    bool ran = false;
};

/// Urgent (band 0, 32 B) round trips over a 2-band segment, alone and
/// under a credit-windowed band-1 bulk stream on the same wire. Both
/// endpoints drain band 0 first, so the urgent request overtakes the
/// queued bulk at the echo and its reply overtakes the queued echoes on
/// the way back; a single-band segment would serve the whole window FIFO
/// ahead of it. Phases alternate per round so drift hits both halves.
TwoBandResult run_two_band_rung(std::size_t probes, std::size_t rounds) {
    net::ShmOptions opts;
    opts.bands = 2;
    ShmWirePair pair = make_shm_pair(opts);
    TwoBandResult r;
    if (!pair.shm) return r;
    pair.echo.start();
    const std::vector<std::uint8_t> urgent = wire_frame_band(32, 0);
    const std::vector<std::uint8_t> bulk = wire_frame_band(3072, 1);
    constexpr std::size_t kBulkWindow = 24;
    rt::StatsRecorder rec_unc(probes * rounds);
    rt::StatsRecorder rec_con(probes * rounds);
    std::size_t bulk_out = 0;
    std::uint64_t bulk_frames = 0;
    auto send_copy = [&](const std::vector<std::uint8_t>& f) {
        net::FrameBuffer fb =
            net::FrameBufferPool::global().acquire(f.size());
        std::memcpy(fb.data(), f.data(), f.size());
        pair.client->send_frame(std::move(fb));
    };
    const auto is_bulk = [](const net::FrameBuffer& f) {
        return f.size() >= cdr::GiopHeader::kSize &&
               cdr::frame_band(f.data()) == 1;
    };
    // One urgent round trip: send, then pop until the band-0 echo comes
    // back, counting band-1 echoes against the bulk window.
    auto probe = [&]() -> std::int64_t {
        const auto t0 = std::chrono::steady_clock::now();
        send_copy(urgent);
        for (;;) {
            auto f = pair.client->recv_frame();
            if (!f.has_value()) {
                std::fprintf(stderr, "two-band wire closed mid-probe\n");
                std::abort();
            }
            if (is_bulk(*f)) {
                --bulk_out;
                continue;
            }
            break;
        }
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    };
    // Round 0 is warm-up: probes run but are not recorded.
    for (std::size_t round = 0; round <= rounds; ++round) {
        for (std::size_t i = 0; i < probes; ++i) {
            const std::int64_t ns = probe();
            if (round > 0) rec_unc.record(ns);
        }
        for (std::size_t i = 0; i < probes; ++i) {
            // Drain half the window's echoes, then top back up, so the
            // probe fires while the echo side is actively churning fresh
            // bulk — not against a window of already-delivered echoes
            // parked in the client's band-1 ring.
            while (bulk_out > kBulkWindow / 2) {
                auto f = pair.client->recv_frame();
                if (!f.has_value()) {
                    std::fprintf(stderr, "two-band wire closed mid-drain\n");
                    std::abort();
                }
                if (is_bulk(*f)) --bulk_out;
            }
            while (bulk_out < kBulkWindow) {
                send_copy(bulk);
                ++bulk_out;
                ++bulk_frames;
            }
            const std::int64_t ns = probe();
            if (round > 0) rec_con.record(ns);
        }
        // Drain the window so the next uncontended phase starts clean.
        while (bulk_out > 0) {
            auto f = pair.client->recv_frame();
            if (!f.has_value()) break;
            if (is_bulk(*f)) --bulk_out;
        }
    }
    if (auto* shm = dynamic_cast<net::ShmTransport*>(pair.client.get())) {
        r.urgent_band_frames = shm->counters().band_rx_frames[0];
    }
    pair.client->close();
    pair.echo.join();
    r.uncontended = rec_unc.summarize();
    r.contended = rec_con.summarize();
    if (r.uncontended.p99 > 0) {
        r.p99_ratio = static_cast<double>(r.contended.p99) /
                      static_cast<double>(r.uncontended.p99);
    }
    r.bulk_frames = bulk_frames;
    r.ran = true;
    return r;
}

struct FailoverResult {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;   ///< echoes received
    std::uint64_t duplicates = 0;  ///< sequence numbers seen twice
    std::uint64_t missing = 0;     ///< sequence numbers never echoed
    std::uint64_t failovers = 0;   ///< counted by the client transport
    std::uint64_t resent = 0;      ///< ring frames replayed over TCP
    std::uint64_t replay_skipped = 0; ///< replayed duplicates deduped
    std::uint64_t pinned_held = 0; ///< borrowed frames held across abandon
    bool pinned_ok = true;         ///< pinned bytes intact at the end
    bool shm_before = false;
    bool shm_after = true;
};

/// Sliding-window echo burst with a forced shm abandon halfway through:
/// every sequence number must come back exactly once, the late half over
/// the TCP fallback. Every 8th echo is pinned — the borrowed frame (a
/// live view into the segment) is held across the failover and its bytes
/// verified at the end — so the drill also proves the retire window and
/// the replay-dedup path under outstanding pins.
FailoverResult run_failover(const net::ShmOptions& opts) {
    ShmWirePair pair = make_shm_pair(opts);
    pair.echo.start();
    FailoverResult r;
    auto* shm = dynamic_cast<net::ShmTransport*>(pair.client.get());
    r.shm_before = shm != nullptr && shm->shm_active();

    constexpr std::uint32_t kCount = 400;
    constexpr std::uint32_t kWindow = 32;
    std::vector<std::uint8_t> frame = wire_frame(32);
    std::vector<std::uint32_t> seen(kCount, 0);
    std::vector<net::FrameBuffer> pinned;
    std::vector<std::uint32_t> pinned_seq;
    pinned.reserve(64);
    pinned_seq.reserve(64);
    std::uint32_t sent = 0, received = 0;
    while (received < kCount) {
        while (sent < kCount && sent - received < kWindow) {
            // Sequence number in the payload tail; the echo returns the
            // frame byte for byte.
            std::memcpy(frame.data() + frame.size() - 4, &sent, 4);
            net::FrameBuffer fb =
                net::FrameBufferPool::global().acquire(frame.size());
            std::memcpy(fb.data(), frame.data(), frame.size());
            pair.client->send_frame(std::move(fb));
            ++sent;
            if (shm != nullptr && sent == kCount / 2) {
                shm->abandon_shm("bench failover drill");
            }
        }
        auto f = pair.client->recv_frame();
        if (!f.has_value()) break;
        std::uint32_t seq = 0;
        std::memcpy(&seq, f->data() + f->size() - 4, 4);
        if (seq < kCount) ++seen[seq];
        ++received;
        // Pin every 8th echo across the failover (under the default pin
        // budget; pre-abandon pins are borrowed arena views, later ones
        // are pooled TCP frames — both must survive untouched).
        if (received % 8 == 0 && pinned.size() < 48 && f->size() >= 4) {
            pinned_seq.push_back(seq);
            pinned.push_back(std::move(*f));
        }
    }
    r.sent = sent;
    r.delivered = received;
    for (std::uint32_t n : seen) {
        if (n == 0) ++r.missing;
        if (n > 1) r.duplicates += n - 1;
    }
    r.pinned_held = pinned.size();
    for (std::size_t i = 0; i < pinned.size(); ++i) {
        std::uint32_t seq = 0;
        std::memcpy(&seq, pinned[i].data() + pinned[i].size() - 4, 4);
        if (seq != pinned_seq[i]) r.pinned_ok = false;
    }
    if (shm != nullptr) {
        const net::ShmCounters c = shm->counters();
        r.failovers = c.failovers;
        r.shm_after = shm->shm_active();
        r.replay_skipped = c.replay_skipped;
        // The replay happens on the peer: it owns the unconsumed half of
        // the abandoner's RX ring and resends it over TCP.
        r.resent = c.resent_frames;
        if (auto* peer = dynamic_cast<net::ShmTransport*>(pair.echo.wire.get())) {
            r.resent += peer->counters().resent_frames;
        }
    }
    pinned.clear(); // release the borrowed slots before closing the wire
    pair.client->close();
    pair.echo.join();
    return r;
}

void print_row(const char* name, std::size_t payload,
               const rt::StatsSummary& s) {
    std::printf("%-10s %6zu B %10.2f %10.2f %10.2f %10.2f\n", name, payload,
                static_cast<double>(s.median) / 1000.0,
                static_cast<double>(s.p90) / 1000.0,
                static_cast<double>(s.p99) / 1000.0,
                static_cast<double>(s.max) / 1000.0);
}

void emit_stats(std::FILE* f, const rt::StatsSummary& s) {
    std::fprintf(f,
                 "{\"median_ns\": %lld, \"p90_ns\": %lld, \"p99_ns\": %lld, "
                 "\"max_ns\": %lld}",
                 static_cast<long long>(s.median),
                 static_cast<long long>(s.p90),
                 static_cast<long long>(s.p99),
                 static_cast<long long>(s.max));
}

} // namespace

int main(int argc, char** argv) {
    const char* json_path = "BENCH_remote.json";
    bool smoke = false;
    bool shm_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--shm-only") == 0) {
            shm_only = true;
        } else {
            json_path = argv[i];
        }
    }
    const std::size_t iters = smoke ? 100 : bench::sample_count(2'000);
    const std::size_t warmup = smoke ? 30 : iters / 5;
    // A killed bench run leaves its segment in /dev/shm; reclaim stale ones
    // before creating new segments (transports sweep at startup too, this
    // just makes the bench self-cleaning when it is the first shm user).
    if (const std::size_t swept = net::sweep_orphan_segments()) {
        std::printf("reclaimed %zu orphaned shm segment(s)\n", swept);
    }
    std::printf("=== Remote round-trip: pooled wire fast path vs legacy ===\n");
    std::printf("batched %zu in flight, %zu samples per rung%s%s\n\n", kBatch,
                iters, smoke ? " (smoke)" : "", shm_only ? " (shm only)" : "");

    constexpr std::size_t kSizeCount =
        sizeof(kPayloadSizes) / sizeof(kPayloadSizes[0]);
    // Pre-warm the frame pool past peak in-flight demand (up to 2 frames
    // per round trip x kBatch in flight, both classes the payload sweep
    // touches) so a mid-run burst never has to allocate — the same
    // initialization-time preallocation a real-time deployment would do.
    net::FrameBufferPool::global().prewarm(512, 4 * kBatch);
    net::FrameBufferPool::global().prewarm(4096, 4 * kBatch);

    RungResult fast[kSizeCount];
    RungResult legacy[kSizeCount];
    double paired[kSizeCount] = {};
    double worst_allocs = 0.0;
    BurstResult coalesce, direct;
    double improvement = 0.0;
    if (!shm_only) {
        EchoHarness h_fast(false);
        EchoHarness h_legacy(true);
        // Timed burn-in before any rung is measured: the first rung would
        // otherwise be taken while the CPU governor is still ramping (its
        // p50 comes out *above* the larger payloads measured seconds
        // later), and the gate reads that first rung.
        {
            const auto burn_until = std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(smoke ? 50
                                                                    : 2000);
            std::uint64_t done_fast = h_fast.pongs();
            std::uint64_t done_legacy = h_legacy.pongs();
            while (std::chrono::steady_clock::now() < burn_until) {
                run_batch(h_fast, kPayloadSizes[0], done_fast);
                run_batch(h_legacy, kPayloadSizes[0], done_legacy);
            }
        }
        for (std::size_t i = 0; i < kSizeCount; ++i) {
            PairResult pair =
                run_pair(h_fast, h_legacy, kPayloadSizes[i], iters, warmup);
            fast[i] = pair.fast;
            legacy[i] = pair.legacy;
            paired[i] = pair.paired_improvement_pct;
        }

        std::printf("%-10s %8s %10s %10s %10s %10s\n", "Variant", "payload",
                    "p50(us)", "p90(us)", "p99(us)", "max(us)");
        for (std::size_t i = 0; i < kSizeCount; ++i) {
            print_row("fast", kPayloadSizes[i], fast[i].stats);
            print_row("legacy", kPayloadSizes[i], legacy[i].stats);
        }

        for (const RungResult& r : fast) {
            if (r.allocs_per_message > worst_allocs) {
                worst_allocs = r.allocs_per_message;
            }
        }
        std::printf(
            "\nsteady-state allocations per message (fast path): %.4f\n",
            worst_allocs);

        coalesce = run_burst(net::WritePolicy::kCoalesce);
        direct = run_burst(net::WritePolicy::kDirect);
        std::printf("burst syscalls/frame: coalesce %.3f (max batch %llu), "
                    "direct %.3f\n",
                    coalesce.syscalls_per_frame,
                    static_cast<unsigned long long>(coalesce.max_batch_frames),
                    direct.syscalls_per_frame);

        // The gated number is the median of per-pair improvements (each
        // fast batch against the legacy batch run back to back with it),
        // which cancels machine drift the ratio of two global medians is
        // exposed to.
        improvement = paired[0];
        std::printf("p50 at 32 B: fast %.2f us vs legacy %.2f us "
                    "(paired median improvement %.1f%%)\n",
                    static_cast<double>(fast[0].stats.median) / 1000.0,
                    static_cast<double>(legacy[0].stats.median) / 1000.0,
                    improvement);
    }

    // ---- co-located shm rung: segment wire vs TCP fast path, same run ----
    const net::ShmOptions shm_opts;
    std::printf("\n=== shm wire vs TCP fast path (32 B, pipelined) ===\n");
    ShmWirePair shm_pair = make_shm_pair(shm_opts);
    std::printf("shm upgrade: %s (%s)\n", shm_pair.shm ? "yes" : "NO",
                shm_pair.detail.c_str());
    ShmRungResult shm_rung;
    if (shm_pair.shm) {
        shm_pair.echo.start();
        WireEcho tcp_echo;
        auto tcp_client = make_tcp_pair(tcp_echo);
        tcp_echo.start();
        shm_rung = run_shm_rung(*shm_pair.client, shm_pair.echo.wire.get(),
                                *tcp_client, 32, iters, warmup);
        tcp_client->close();
        tcp_echo.join();
        shm_pair.client->close();
        shm_pair.echo.join();
        std::printf("%-10s %8s %10s %10s %10s %10s\n", "Wire", "payload",
                    "p50(us)", "p90(us)", "p99(us)", "max(us)");
        print_row("shm", 32, shm_rung.shm);
        print_row("tcp", 32, shm_rung.tcp);
        std::printf("paired p50 speedup: %.1fx; allocs/msg %.4f; "
                    "futex/roundtrip %.4f (wakeups %.4f); %llu frames over "
                    "the segment; rx borrowed %llu copies %llu\n",
                    shm_rung.paired_speedup, shm_rung.allocs_per_message,
                    shm_rung.futex_per_message, shm_rung.wakeups_per_message,
                    static_cast<unsigned long long>(shm_rung.shm_frames),
                    static_cast<unsigned long long>(shm_rung.rx_borrowed),
                    static_cast<unsigned long long>(shm_rung.rx_copies));
    }

    // ---- zero-copy receive sweep: borrowed frames vs copy-out, same run --
    constexpr std::size_t kSweepSizes[] = {32, 512, 4096};
    constexpr std::size_t kSweepCount =
        sizeof(kSweepSizes) / sizeof(kSweepSizes[0]);
    SweepRow sweep[kSweepCount] = {};
    bool sweep_ran = false;
    {
        net::FrameBufferPool::global().prewarm(8192, kBatch);
        net::ShmOptions zc_opts;
        zc_opts.borrowed_frames = true;
        net::ShmOptions copy_opts;
        copy_opts.borrowed_frames = false;
        ShmWirePair zc_pair = make_shm_pair(zc_opts);
        ShmWirePair copy_pair = make_shm_pair(copy_opts);
        if (zc_pair.shm && copy_pair.shm) {
            sweep_ran = true;
            zc_pair.echo.start();
            copy_pair.echo.start();
            std::printf("\n=== zero-copy receive vs copy-out (payload sweep) "
                        "===\n");
            std::printf("%-10s %8s %10s %10s %10s %10s\n", "Receive",
                        "payload", "p50(us)", "p90(us)", "p99(us)", "max(us)");
            for (std::size_t i = 0; i < kSweepCount; ++i) {
                sweep[i] = run_sweep_rung(*zc_pair.client, *copy_pair.client,
                                          kSweepSizes[i], iters, warmup);
                print_row("zero-copy", kSweepSizes[i], sweep[i].zero_copy);
                print_row("copy-out", kSweepSizes[i], sweep[i].copying);
                std::printf("%-10s %6zu B   paired p50 improvement %.1f%%\n",
                            "", kSweepSizes[i],
                            sweep[i].paired_improvement_pct);
            }
            zc_pair.client->close();
            zc_pair.echo.join();
            copy_pair.client->close();
            copy_pair.echo.join();
        } else {
            std::fprintf(stderr, "sweep skipped: shm upgrade failed (%s / %s)\n",
                         zc_pair.detail.c_str(), copy_pair.detail.c_str());
        }
    }

    // ---- 2-band interference rung ----
    const TwoBandResult two_band =
        run_two_band_rung(smoke ? 50 : iters / 2, smoke ? 1 : 4);
    if (two_band.ran) {
        std::printf("\n=== 2-band shm: urgent under bulk ===\n");
        std::printf("%-12s %10s %10s %10s\n", "Urgent", "p50(us)", "p99(us)",
                    "max(us)");
        std::printf("%-12s %10.2f %10.2f %10.2f\n", "alone",
                    static_cast<double>(two_band.uncontended.median) / 1000.0,
                    static_cast<double>(two_band.uncontended.p99) / 1000.0,
                    static_cast<double>(two_band.uncontended.max) / 1000.0);
        std::printf("%-12s %10.2f %10.2f %10.2f\n", "under bulk",
                    static_cast<double>(two_band.contended.median) / 1000.0,
                    static_cast<double>(two_band.contended.p99) / 1000.0,
                    static_cast<double>(two_band.contended.max) / 1000.0);
        std::printf("urgent p99 ratio %.2fx over %llu bulk frames\n",
                    two_band.p99_ratio,
                    static_cast<unsigned long long>(two_band.bulk_frames));
    } else {
        std::fprintf(stderr, "2-band rung skipped: shm upgrade failed\n");
    }

    const FailoverResult failover = run_failover(shm_opts);
    std::printf("failover drill: sent %llu delivered %llu duplicates %llu "
                "missing %llu resent %llu replay-skipped %llu failovers %llu "
                "pinned %llu (%s) (shm %s -> %s)\n",
                static_cast<unsigned long long>(failover.sent),
                static_cast<unsigned long long>(failover.delivered),
                static_cast<unsigned long long>(failover.duplicates),
                static_cast<unsigned long long>(failover.missing),
                static_cast<unsigned long long>(failover.resent),
                static_cast<unsigned long long>(failover.replay_skipped),
                static_cast<unsigned long long>(failover.failovers),
                static_cast<unsigned long long>(failover.pinned_held),
                failover.pinned_ok ? "intact" : "CORRUPT",
                failover.shm_before ? "up" : "down",
                failover.shm_after ? "up" : "down");

    if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f, "{\n  \"benchmark\": \"remote_roundtrip\",\n");
        std::fprintf(f, "  \"batch_in_flight\": %zu,\n", kBatch);
        std::fprintf(f, "  \"samples_per_rung\": %zu,\n", iters);
        if (!shm_only) {
            std::fprintf(f, "  \"sizes\": [\n");
            for (std::size_t i = 0; i < kSizeCount; ++i) {
                std::fprintf(f, "    {\"payload_bytes\": %zu, \"fast\": ",
                             kPayloadSizes[i]);
                emit_stats(f, fast[i].stats);
                std::fprintf(f, ", \"legacy\": ");
                emit_stats(f, legacy[i].stats);
                std::fprintf(f, "}%s\n", i + 1 < kSizeCount ? "," : "");
            }
            std::fprintf(f, "  ],\n");
            std::fprintf(f, "  \"allocs_per_message_steady_state\": %.4f,\n",
                         worst_allocs);
            std::fprintf(f,
                         "  \"burst\": {\"coalesce_syscalls_per_frame\": %.3f, "
                         "\"direct_syscalls_per_frame\": %.3f, "
                         "\"max_batch_frames\": %llu},\n",
                         coalesce.syscalls_per_frame,
                         direct.syscalls_per_frame,
                         static_cast<unsigned long long>(
                             coalesce.max_batch_frames));
            std::fprintf(f, "  \"improvement_p50_32B_pct\": %.1f,\n",
                         improvement);
            std::fprintf(f, "  \"paired_improvement_pct\": [%.1f, %.1f, "
                         "%.1f, %.1f],\n",
                         paired[0], paired[1], paired[2], paired[3]);
        }
        std::fprintf(f, "  \"shm\": {\n");
        std::fprintf(f, "    \"upgraded\": %s,\n",
                     shm_pair.shm ? "true" : "false");
        std::fprintf(f, "    \"payload_bytes\": 32,\n");
        std::fprintf(f, "    \"shm\": ");
        emit_stats(f, shm_rung.shm);
        std::fprintf(f, ",\n    \"tcp\": ");
        emit_stats(f, shm_rung.tcp);
        std::fprintf(f, ",\n    \"paired_p50_speedup\": %.2f,\n",
                     shm_rung.paired_speedup);
        std::fprintf(f, "    \"allocs_per_message\": %.4f,\n",
                     shm_rung.allocs_per_message);
        std::fprintf(f, "    \"futex_per_roundtrip\": %.4f,\n",
                     shm_rung.futex_per_message);
        std::fprintf(f, "    \"wakeups_per_roundtrip\": %.4f,\n",
                     shm_rung.wakeups_per_message);
        std::fprintf(f, "    \"shm_frames\": %llu,\n",
                     static_cast<unsigned long long>(shm_rung.shm_frames));
        std::fprintf(f, "    \"rx_copies\": %llu,\n",
                     static_cast<unsigned long long>(shm_rung.rx_copies));
        std::fprintf(f, "    \"rx_borrowed\": %llu,\n",
                     static_cast<unsigned long long>(shm_rung.rx_borrowed));
        if (sweep_ran) {
            std::fprintf(f, "    \"sweep\": [\n");
            for (std::size_t i = 0; i < kSweepCount; ++i) {
                std::fprintf(f, "      {\"payload_bytes\": %zu, "
                             "\"zero_copy\": ",
                             sweep[i].payload);
                emit_stats(f, sweep[i].zero_copy);
                std::fprintf(f, ", \"copying\": ");
                emit_stats(f, sweep[i].copying);
                std::fprintf(f, ", \"paired_improvement_pct\": %.1f}%s\n",
                             sweep[i].paired_improvement_pct,
                             i + 1 < kSweepCount ? "," : "");
            }
            std::fprintf(f, "    ],\n");
        }
        if (two_band.ran) {
            std::fprintf(f, "    \"two_band\": {\"uncontended\": ");
            emit_stats(f, two_band.uncontended);
            std::fprintf(f, ", \"contended\": ");
            emit_stats(f, two_band.contended);
            std::fprintf(f,
                         ", \"urgent_p99_ratio\": %.2f, "
                         "\"bulk_frames\": %llu},\n",
                         two_band.p99_ratio,
                         static_cast<unsigned long long>(
                             two_band.bulk_frames));
        }
        std::fprintf(f,
                     "    \"failover\": {\"sent\": %llu, \"delivered\": %llu, "
                     "\"duplicates\": %llu, \"missing\": %llu, "
                     "\"resent_frames\": %llu, \"replay_skipped\": %llu, "
                     "\"pinned_held\": %llu, \"pinned_ok\": %s, "
                     "\"failovers\": %llu}\n",
                     static_cast<unsigned long long>(failover.sent),
                     static_cast<unsigned long long>(failover.delivered),
                     static_cast<unsigned long long>(failover.duplicates),
                     static_cast<unsigned long long>(failover.missing),
                     static_cast<unsigned long long>(failover.resent),
                     static_cast<unsigned long long>(failover.replay_skipped),
                     static_cast<unsigned long long>(failover.pinned_held),
                     failover.pinned_ok ? "true" : "false",
                     static_cast<unsigned long long>(failover.failovers));
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path);
    }

    bool ok = true;
    // Gate 1: the steady-state remote hop is allocation-free. Sanitizer
    // runtimes allocate behind the scenes, so the gate only runs on plain
    // builds.
    if (!shm_only && !COMPADRES_UNDER_SANITIZER && worst_allocs != 0.0) {
        std::fprintf(stderr,
                     "FAIL: fast path allocated %.4f times per message in "
                     "steady state (want 0)\n",
                     worst_allocs);
        ok = false;
    }
    // Gate 2: bursts amortize syscalls — strictly fewer sendmsg calls than
    // frames.
    if (!shm_only && coalesce.syscalls_per_frame >= 1.0) {
        std::fprintf(stderr,
                     "FAIL: coalescing writer made %.3f syscalls per frame "
                     "under burst (want < 1)\n",
                     coalesce.syscalls_per_frame);
        ok = false;
    }
    // Gate 3 (full runs on plain builds only — timing under smoke samples
    // or sanitizers is noise): >= 15% p50 improvement at 32 B. The bound
    // was 20% when the blocking receive path issued two read() calls per
    // frame; the scratch-staged buffered read (one read per kernel chunk)
    // is shared by both wire formats, so the legacy baseline got faster
    // too and the copying overhead is now a smaller slice of a cheaper
    // round trip (measured 16-19% after, vs 21% before).
    if (!shm_only && !smoke && !COMPADRES_UNDER_SANITIZER &&
        improvement < 15.0) {
        std::fprintf(stderr,
                     "FAIL: p50 at 32 B improved only %.1f%% over the legacy "
                     "wire (want >= 15%%)\n",
                     improvement);
        ok = false;
    }
    // Gate 4: two endpoints on the same host must actually get the
    // segment; a fallback here means the handshake broke.
    if (!shm_pair.shm) {
        std::fprintf(stderr,
                     "FAIL: co-located shm upgrade fell back to TCP (%s)\n",
                     shm_pair.detail.c_str());
        ok = false;
    }
    // Gate 5: the shm steady path makes no heap allocations and enters the
    // kernel less than once per round trip (futex wakes amortize across
    // the pipelined batch; everything else is user-space only).
    if (shm_pair.shm && !COMPADRES_UNDER_SANITIZER) {
        if (shm_rung.allocs_per_message != 0.0) {
            std::fprintf(stderr,
                         "FAIL: shm wire allocated %.4f times per message in "
                         "steady state (want 0)\n",
                         shm_rung.allocs_per_message);
            ok = false;
        }
        if (shm_rung.futex_per_message >= 1.0) {
            std::fprintf(stderr,
                         "FAIL: shm wire made %.4f futex syscalls per round "
                         "trip (want < 1)\n",
                         shm_rung.futex_per_message);
            ok = false;
        }
    }
    // Gate 6 (full runs on plain builds only): the segment wire beats the
    // same-run TCP fast path by at least 5x at the 32 B rung.
    if (shm_pair.shm && !smoke && !COMPADRES_UNDER_SANITIZER &&
        shm_rung.paired_speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: shm p50 speedup over TCP is only %.1fx at 32 B "
                     "(want >= 5x)\n",
                     shm_rung.paired_speedup);
        ok = false;
    }
    // Gate 7: the failover drill loses nothing and duplicates nothing —
    // every sequence number echoed exactly once across the shm->TCP seam —
    // and the frames the app kept pinned across the failover still read the
    // bytes the producer wrote (the frozen segment stays mapped and intact
    // until every borrowed frame dies).
    if (failover.missing != 0 || failover.duplicates != 0 ||
        failover.delivered != failover.sent || failover.failovers == 0 ||
        failover.shm_after || !failover.pinned_ok) {
        std::fprintf(stderr,
                     "FAIL: failover drill sent %llu, delivered %llu "
                     "(%llu missing, %llu duplicates, %llu failovers, shm "
                     "%s after, pinned %s)\n",
                     static_cast<unsigned long long>(failover.sent),
                     static_cast<unsigned long long>(failover.delivered),
                     static_cast<unsigned long long>(failover.missing),
                     static_cast<unsigned long long>(failover.duplicates),
                     static_cast<unsigned long long>(failover.failovers),
                     failover.shm_after ? "still up" : "down",
                     failover.pinned_ok ? "intact" : "CORRUPT");
        ok = false;
    }
    // Gate 8: with borrowed frames on, the steady shm rung never falls back
    // to the copy-out path — every received frame is a view into the
    // segment.
    if (shm_pair.shm && shm_rung.rx_copies != 0) {
        std::fprintf(stderr,
                     "FAIL: shm receive path copied %llu frames out of the "
                     "segment in steady state (want 0; borrowed %llu)\n",
                     static_cast<unsigned long long>(shm_rung.rx_copies),
                     static_cast<unsigned long long>(shm_rung.rx_borrowed));
        ok = false;
    }
    // Gate 9 (full runs on plain builds only): the zero-copy receive path
    // never loses to the copy-out baseline at the smallest payload, and
    // wins by >= 15% paired p50 once the memcpy is 4 KiB per direction.
    if (sweep_ran && !smoke && !COMPADRES_UNDER_SANITIZER) {
        if (sweep[0].paired_improvement_pct < 0.0) {
            std::fprintf(stderr,
                         "FAIL: zero-copy receive is %.1f%% slower than the "
                         "copying baseline at %zu B (want >= 0%%)\n",
                         -sweep[0].paired_improvement_pct, sweep[0].payload);
            ok = false;
        }
        if (sweep[kSweepCount - 1].paired_improvement_pct < 15.0) {
            std::fprintf(stderr,
                         "FAIL: zero-copy receive improved paired p50 only "
                         "%.1f%% at %zu B (want >= 15%%)\n",
                         sweep[kSweepCount - 1].paired_improvement_pct,
                         sweep[kSweepCount - 1].payload);
            ok = false;
        }
    }
    // Gate 10 (full runs on plain builds only): a saturating bulk lane must
    // not queue ahead of the urgent lane — banded rings keep the urgent p99
    // within 2x of its uncontended baseline.
    if (two_band.ran && !smoke && !COMPADRES_UNDER_SANITIZER &&
        two_band.p99_ratio > 2.0) {
        std::fprintf(stderr,
                     "FAIL: urgent p99 under bulk is %.2fx the uncontended "
                     "p99 (want <= 2x; %llu bulk frames interleaved)\n",
                     two_band.p99_ratio,
                     static_cast<unsigned long long>(two_band.bulk_frames));
        ok = false;
    }
    std::printf("%s\n", ok ? "remote gates PASSED" : "remote gates FAILED");
    return ok ? 0 : 1;
}
