// Ablation A5 (paper §2.2): LT vs VT scoped memory.
//
// "our memory model only uses linear-time or LTScopedMemory, which is
// allocated in a time proportional to its size and therefore predictable."
//
// Two measurements back that choice:
//   * throughput: mean allocation cost of the bump allocator vs first-fit;
//   * predictability: worst-case/jitter of a single allocation once the
//     VT free list is fragmented — the tail a hard-real-time budget must
//     absorb. LT allocation cost is flat by construction.
#include "memory/immortal.hpp"
#include "memory/scoped.hpp"
#include "memory/vt_scoped.hpp"
#include "rt/clock.hpp"
#include "rt/stats.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <vector>

using namespace compadres;

namespace {

void BM_LtAllocate(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    memory::ImmortalMemory anchor(1024);
    memory::LTScopedMemory region(64 * 1024 * 1024);
    region.enter(anchor);
    for (auto _ : state) {
        benchmark::DoNotOptimize(region.allocate(size));
        if (region.used() > 63 * 1024 * 1024) {
            // Bulk reclaim (not counted separately; it is the LT model's
            // amortized cost and happens at scope exit in real use).
            state.PauseTiming();
            region.exit();
            region.enter(anchor);
            state.ResumeTiming();
        }
    }
    region.exit();
}

void BM_VtAllocateFreshArena(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    memory::VTScopedMemory region(64 * 1024 * 1024);
    std::vector<void*> live;
    live.reserve(1 << 20);
    for (auto _ : state) {
        void* p = nullptr;
        try {
            p = region.allocate(size);
        } catch (const memory::RegionExhausted&) {
            // Arena full (headers included): drain and continue — the
            // drain is the VT analogue of LT's bulk reclaim.
            state.PauseTiming();
            for (void* q : live) region.free(q);
            live.clear();
            state.ResumeTiming();
            p = region.allocate(size);
        }
        benchmark::DoNotOptimize(p);
        live.push_back(p);
    }
}

void BM_VtAllocateFragmented(benchmark::State& state) {
    // Pre-fragment: fill with small blocks, free every other one, so the
    // free list is long and first-fit walks it.
    const auto size = static_cast<std::size_t>(state.range(0));
    memory::VTScopedMemory region(64 * 1024 * 1024);
    std::vector<void*> blocks;
    for (;;) {
        try {
            blocks.push_back(region.allocate(64));
        } catch (const memory::RegionExhausted&) {
            break;
        }
    }
    for (std::size_t i = 0; i < blocks.size(); i += 2) region.free(blocks[i]);

    for (auto _ : state) {
        void* p = nullptr;
        try {
            p = region.allocate(size);
        } catch (const memory::RegionExhausted&) {
            state.SkipWithError("fragmented arena cannot satisfy request");
            break;
        }
        benchmark::DoNotOptimize(p);
        region.free(p); // keep the fragmentation pattern stable
    }
    state.SetLabel("free-blocks=" + std::to_string(region.free_block_count()));
}

} // namespace

BENCHMARK(BM_LtAllocate)->Arg(32)->Arg(512);
BENCHMARK(BM_VtAllocateFreshArena)->Arg(32)->Arg(512);
// Note: steady-state reuse (free puts the block back at the list head)
// makes this flatter than real VT workloads; the predictability table
// printed after the benchmarks captures the tail a mixed workload shows.
BENCHMARK(BM_VtAllocateFragmented)->Arg(32)->Arg(64);

// Predictability table: exact per-allocation latency distributions, the
// statistic google-benchmark's mean hides.
int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // Predictability under a mixed workload: random-size allocations with
    // random frees (the lifetime pattern scoped components avoid but a VT
    // region invites). Identical allocation-size sequence for both
    // allocators; LT reclaims in bulk when full (its actual model).
    std::printf("\n=== allocation-time predictability, mixed random workload "
                "(20k timed allocations) ===\n");
    constexpr int kTimed = 20'000;
    constexpr std::size_t kArena = 16 * 1024 * 1024;
    // Bimodal sizes: mostly small blocks plus occasional large ones —
    // the large requests must walk past the small free fragments.
    const auto random_size = [](std::mt19937& rng) {
        if (rng() % 10 == 0) {
            return static_cast<std::size_t>(2048 + rng() % 6144);
        }
        return static_cast<std::size_t>(16 + rng() % 81);
    };
    {
        std::mt19937 rng(7);
        memory::ImmortalMemory anchor(1024);
        memory::LTScopedMemory lt(kArena);
        lt.enter(anchor);
        rt::StatsRecorder rec(kTimed);
        for (int i = 0; i < kTimed; ++i) {
            const std::size_t size = random_size(rng);
            if (lt.used() + size + 64 > kArena) {
                lt.exit(); // bulk reclaim, the LT lifecycle
                lt.enter(anchor);
            }
            const auto t0 = rt::now_ns();
            benchmark::DoNotOptimize(lt.allocate(size));
            rec.record(rt::now_ns() - t0);
        }
        lt.exit();
        const auto s = rec.summarize();
        std::printf("LT (bump)       p50=%6.2fus p90=%6.2fus p99=%6.2fus "
                    "max=%8.2fus\n",
                    static_cast<double>(s.median) / 1000.0,
                    static_cast<double>(s.p90) / 1000.0,
                    static_cast<double>(s.p99) / 1000.0,
                    static_cast<double>(s.max) / 1000.0);
    }
    {
        std::mt19937 rng(7);
        memory::VTScopedMemory vt(kArena);
        std::vector<void*> live;
        rt::StatsRecorder rec(kTimed);
        for (int i = 0; i < kTimed; ++i) {
            const std::size_t size = random_size(rng);
            // Random frees keep the region about half full and fragmented.
            while (live.size() > 60'000 ||
                   (vt.used() + size + 64 > (3 * kArena) / 4 && !live.empty())) {
                const std::size_t idx = rng() % live.size();
                vt.free(live[idx]);
                live[idx] = live.back();
                live.pop_back();
            }
            const auto t0 = rt::now_ns();
            void* p = vt.allocate(size);
            rec.record(rt::now_ns() - t0);
            live.push_back(p);
        }
        const auto s = rec.summarize();
        std::printf("VT (first-fit)  p50=%6.2fus p90=%6.2fus p99=%6.2fus "
                    "max=%8.2fus\n",
                    static_cast<double>(s.median) / 1000.0,
                    static_cast<double>(s.p90) / 1000.0,
                    static_cast<double>(s.p99) / 1000.0,
                    static_cast<double>(s.max) / 1000.0);
    }
    std::printf("expected shape: LT max/jitter flat and tiny; VT inflated "
                "by free-list walks — the paper's reason to use LT.\n");
    benchmark::Shutdown();
    return 0;
}
