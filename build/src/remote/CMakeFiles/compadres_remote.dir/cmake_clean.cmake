file(REMOVE_RECURSE
  "CMakeFiles/compadres_remote.dir/bridge.cpp.o"
  "CMakeFiles/compadres_remote.dir/bridge.cpp.o.d"
  "CMakeFiles/compadres_remote.dir/serializer.cpp.o"
  "CMakeFiles/compadres_remote.dir/serializer.cpp.o.d"
  "libcompadres_remote.a"
  "libcompadres_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
