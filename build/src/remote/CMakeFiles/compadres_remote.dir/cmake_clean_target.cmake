file(REMOVE_RECURSE
  "libcompadres_remote.a"
)
