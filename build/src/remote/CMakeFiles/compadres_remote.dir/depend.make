# Empty dependencies file for compadres_remote.
# This may be replaced when dependencies are built.
