file(REMOVE_RECURSE
  "libcompadres_rtzen.a"
)
