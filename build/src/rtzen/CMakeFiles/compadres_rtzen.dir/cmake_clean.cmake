file(REMOVE_RECURSE
  "CMakeFiles/compadres_rtzen.dir/rtzen.cpp.o"
  "CMakeFiles/compadres_rtzen.dir/rtzen.cpp.o.d"
  "libcompadres_rtzen.a"
  "libcompadres_rtzen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_rtzen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
