# Empty compiler generated dependencies file for compadres_rtzen.
# This may be replaced when dependencies are built.
