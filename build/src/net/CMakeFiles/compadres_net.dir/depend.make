# Empty dependencies file for compadres_net.
# This may be replaced when dependencies are built.
