file(REMOVE_RECURSE
  "CMakeFiles/compadres_net.dir/loopback.cpp.o"
  "CMakeFiles/compadres_net.dir/loopback.cpp.o.d"
  "CMakeFiles/compadres_net.dir/tcp.cpp.o"
  "CMakeFiles/compadres_net.dir/tcp.cpp.o.d"
  "libcompadres_net.a"
  "libcompadres_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
