
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/loopback.cpp" "src/net/CMakeFiles/compadres_net.dir/loopback.cpp.o" "gcc" "src/net/CMakeFiles/compadres_net.dir/loopback.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/compadres_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/compadres_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/compadres_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/compadres_cdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
