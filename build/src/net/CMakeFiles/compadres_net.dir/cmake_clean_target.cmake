file(REMOVE_RECURSE
  "libcompadres_net.a"
)
