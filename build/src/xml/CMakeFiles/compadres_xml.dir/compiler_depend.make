# Empty compiler generated dependencies file for compadres_xml.
# This may be replaced when dependencies are built.
