file(REMOVE_RECURSE
  "CMakeFiles/compadres_xml.dir/xml.cpp.o"
  "CMakeFiles/compadres_xml.dir/xml.cpp.o.d"
  "libcompadres_xml.a"
  "libcompadres_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
