file(REMOVE_RECURSE
  "libcompadres_xml.a"
)
