
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/assembler.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/assembler.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/assembler.cpp.o.d"
  "/root/repo/src/compiler/ccl.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/ccl.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/ccl.cpp.o.d"
  "/root/repo/src/compiler/cdl.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/cdl.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/cdl.cpp.o.d"
  "/root/repo/src/compiler/cli.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/cli.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/cli.cpp.o.d"
  "/root/repo/src/compiler/codegen.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/codegen.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/codegen.cpp.o.d"
  "/root/repo/src/compiler/emit.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/emit.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/emit.cpp.o.d"
  "/root/repo/src/compiler/validator.cpp" "src/compiler/CMakeFiles/compadres_compiler.dir/validator.cpp.o" "gcc" "src/compiler/CMakeFiles/compadres_compiler.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/compadres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/compadres_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/compadres_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/compadres_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
