# Empty compiler generated dependencies file for compadres_compiler.
# This may be replaced when dependencies are built.
