file(REMOVE_RECURSE
  "libcompadres_compiler.a"
)
