file(REMOVE_RECURSE
  "CMakeFiles/compadres_compiler.dir/assembler.cpp.o"
  "CMakeFiles/compadres_compiler.dir/assembler.cpp.o.d"
  "CMakeFiles/compadres_compiler.dir/ccl.cpp.o"
  "CMakeFiles/compadres_compiler.dir/ccl.cpp.o.d"
  "CMakeFiles/compadres_compiler.dir/cdl.cpp.o"
  "CMakeFiles/compadres_compiler.dir/cdl.cpp.o.d"
  "CMakeFiles/compadres_compiler.dir/cli.cpp.o"
  "CMakeFiles/compadres_compiler.dir/cli.cpp.o.d"
  "CMakeFiles/compadres_compiler.dir/codegen.cpp.o"
  "CMakeFiles/compadres_compiler.dir/codegen.cpp.o.d"
  "CMakeFiles/compadres_compiler.dir/emit.cpp.o"
  "CMakeFiles/compadres_compiler.dir/emit.cpp.o.d"
  "CMakeFiles/compadres_compiler.dir/validator.cpp.o"
  "CMakeFiles/compadres_compiler.dir/validator.cpp.o.d"
  "libcompadres_compiler.a"
  "libcompadres_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
