file(REMOVE_RECURSE
  "CMakeFiles/compadres_cdr.dir/cdr.cpp.o"
  "CMakeFiles/compadres_cdr.dir/cdr.cpp.o.d"
  "CMakeFiles/compadres_cdr.dir/giop.cpp.o"
  "CMakeFiles/compadres_cdr.dir/giop.cpp.o.d"
  "libcompadres_cdr.a"
  "libcompadres_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
