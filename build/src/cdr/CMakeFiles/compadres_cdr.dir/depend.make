# Empty dependencies file for compadres_cdr.
# This may be replaced when dependencies are built.
