file(REMOVE_RECURSE
  "libcompadres_cdr.a"
)
