file(REMOVE_RECURSE
  "CMakeFiles/compadres_orb.dir/orb.cpp.o"
  "CMakeFiles/compadres_orb.dir/orb.cpp.o.d"
  "libcompadres_orb.a"
  "libcompadres_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
