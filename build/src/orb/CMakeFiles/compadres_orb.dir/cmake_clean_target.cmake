file(REMOVE_RECURSE
  "libcompadres_orb.a"
)
