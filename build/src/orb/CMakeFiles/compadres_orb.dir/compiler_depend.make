# Empty compiler generated dependencies file for compadres_orb.
# This may be replaced when dependencies are built.
