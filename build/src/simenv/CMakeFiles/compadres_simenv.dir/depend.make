# Empty dependencies file for compadres_simenv.
# This may be replaced when dependencies are built.
