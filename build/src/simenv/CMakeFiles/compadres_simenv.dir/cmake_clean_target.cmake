file(REMOVE_RECURSE
  "libcompadres_simenv.a"
)
