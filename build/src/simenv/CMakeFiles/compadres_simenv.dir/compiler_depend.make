# Empty compiler generated dependencies file for compadres_simenv.
# This may be replaced when dependencies are built.
