file(REMOVE_RECURSE
  "CMakeFiles/compadres_simenv.dir/platform.cpp.o"
  "CMakeFiles/compadres_simenv.dir/platform.cpp.o.d"
  "libcompadres_simenv.a"
  "libcompadres_simenv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_simenv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
