# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("rt")
subdirs("memory")
subdirs("xml")
subdirs("simenv")
subdirs("core")
subdirs("components")
subdirs("compiler")
subdirs("cdr")
subdirs("net")
subdirs("remote")
subdirs("orb")
subdirs("rtzen")
