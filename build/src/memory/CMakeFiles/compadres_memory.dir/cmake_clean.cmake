file(REMOVE_RECURSE
  "CMakeFiles/compadres_memory.dir/region.cpp.o"
  "CMakeFiles/compadres_memory.dir/region.cpp.o.d"
  "CMakeFiles/compadres_memory.dir/scope_pool.cpp.o"
  "CMakeFiles/compadres_memory.dir/scope_pool.cpp.o.d"
  "CMakeFiles/compadres_memory.dir/scoped.cpp.o"
  "CMakeFiles/compadres_memory.dir/scoped.cpp.o.d"
  "CMakeFiles/compadres_memory.dir/vt_scoped.cpp.o"
  "CMakeFiles/compadres_memory.dir/vt_scoped.cpp.o.d"
  "libcompadres_memory.a"
  "libcompadres_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
