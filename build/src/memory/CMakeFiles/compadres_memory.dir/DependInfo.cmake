
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/region.cpp" "src/memory/CMakeFiles/compadres_memory.dir/region.cpp.o" "gcc" "src/memory/CMakeFiles/compadres_memory.dir/region.cpp.o.d"
  "/root/repo/src/memory/scope_pool.cpp" "src/memory/CMakeFiles/compadres_memory.dir/scope_pool.cpp.o" "gcc" "src/memory/CMakeFiles/compadres_memory.dir/scope_pool.cpp.o.d"
  "/root/repo/src/memory/scoped.cpp" "src/memory/CMakeFiles/compadres_memory.dir/scoped.cpp.o" "gcc" "src/memory/CMakeFiles/compadres_memory.dir/scoped.cpp.o.d"
  "/root/repo/src/memory/vt_scoped.cpp" "src/memory/CMakeFiles/compadres_memory.dir/vt_scoped.cpp.o" "gcc" "src/memory/CMakeFiles/compadres_memory.dir/vt_scoped.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/compadres_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
