file(REMOVE_RECURSE
  "libcompadres_memory.a"
)
