# Empty compiler generated dependencies file for compadres_memory.
# This may be replaced when dependencies are built.
