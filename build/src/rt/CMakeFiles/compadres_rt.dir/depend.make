# Empty dependencies file for compadres_rt.
# This may be replaced when dependencies are built.
