
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/periodic.cpp" "src/rt/CMakeFiles/compadres_rt.dir/periodic.cpp.o" "gcc" "src/rt/CMakeFiles/compadres_rt.dir/periodic.cpp.o.d"
  "/root/repo/src/rt/stats.cpp" "src/rt/CMakeFiles/compadres_rt.dir/stats.cpp.o" "gcc" "src/rt/CMakeFiles/compadres_rt.dir/stats.cpp.o.d"
  "/root/repo/src/rt/thread.cpp" "src/rt/CMakeFiles/compadres_rt.dir/thread.cpp.o" "gcc" "src/rt/CMakeFiles/compadres_rt.dir/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
