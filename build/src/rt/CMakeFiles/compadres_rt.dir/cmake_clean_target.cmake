file(REMOVE_RECURSE
  "libcompadres_rt.a"
)
