file(REMOVE_RECURSE
  "CMakeFiles/compadres_rt.dir/periodic.cpp.o"
  "CMakeFiles/compadres_rt.dir/periodic.cpp.o.d"
  "CMakeFiles/compadres_rt.dir/stats.cpp.o"
  "CMakeFiles/compadres_rt.dir/stats.cpp.o.d"
  "CMakeFiles/compadres_rt.dir/thread.cpp.o"
  "CMakeFiles/compadres_rt.dir/thread.cpp.o.d"
  "libcompadres_rt.a"
  "libcompadres_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
