file(REMOVE_RECURSE
  "CMakeFiles/compadres_components.dir/standard.cpp.o"
  "CMakeFiles/compadres_components.dir/standard.cpp.o.d"
  "libcompadres_components.a"
  "libcompadres_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
