# Empty compiler generated dependencies file for compadres_components.
# This may be replaced when dependencies are built.
