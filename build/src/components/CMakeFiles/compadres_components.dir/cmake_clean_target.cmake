file(REMOVE_RECURSE
  "libcompadres_components.a"
)
