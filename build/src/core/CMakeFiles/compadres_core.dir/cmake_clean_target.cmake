file(REMOVE_RECURSE
  "libcompadres_core.a"
)
