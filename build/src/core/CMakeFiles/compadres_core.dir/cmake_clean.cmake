file(REMOVE_RECURSE
  "CMakeFiles/compadres_core.dir/application.cpp.o"
  "CMakeFiles/compadres_core.dir/application.cpp.o.d"
  "CMakeFiles/compadres_core.dir/component.cpp.o"
  "CMakeFiles/compadres_core.dir/component.cpp.o.d"
  "CMakeFiles/compadres_core.dir/dispatcher.cpp.o"
  "CMakeFiles/compadres_core.dir/dispatcher.cpp.o.d"
  "CMakeFiles/compadres_core.dir/hooks.cpp.o"
  "CMakeFiles/compadres_core.dir/hooks.cpp.o.d"
  "CMakeFiles/compadres_core.dir/port.cpp.o"
  "CMakeFiles/compadres_core.dir/port.cpp.o.d"
  "CMakeFiles/compadres_core.dir/registry.cpp.o"
  "CMakeFiles/compadres_core.dir/registry.cpp.o.d"
  "CMakeFiles/compadres_core.dir/smm.cpp.o"
  "CMakeFiles/compadres_core.dir/smm.cpp.o.d"
  "libcompadres_core.a"
  "libcompadres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
