
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/application.cpp" "src/core/CMakeFiles/compadres_core.dir/application.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/application.cpp.o.d"
  "/root/repo/src/core/component.cpp" "src/core/CMakeFiles/compadres_core.dir/component.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/component.cpp.o.d"
  "/root/repo/src/core/dispatcher.cpp" "src/core/CMakeFiles/compadres_core.dir/dispatcher.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/dispatcher.cpp.o.d"
  "/root/repo/src/core/hooks.cpp" "src/core/CMakeFiles/compadres_core.dir/hooks.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/hooks.cpp.o.d"
  "/root/repo/src/core/port.cpp" "src/core/CMakeFiles/compadres_core.dir/port.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/port.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/compadres_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/smm.cpp" "src/core/CMakeFiles/compadres_core.dir/smm.cpp.o" "gcc" "src/core/CMakeFiles/compadres_core.dir/smm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/compadres_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/compadres_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
