# Empty compiler generated dependencies file for compadres_core.
# This may be replaced when dependencies are built.
