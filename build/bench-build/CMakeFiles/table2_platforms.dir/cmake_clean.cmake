file(REMOVE_RECURSE
  "../bench/table2_platforms"
  "../bench/table2_platforms.pdb"
  "CMakeFiles/table2_platforms.dir/table2_platforms.cpp.o"
  "CMakeFiles/table2_platforms.dir/table2_platforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
