# Empty compiler generated dependencies file for ablation_shadowport.
# This may be replaced when dependencies are built.
