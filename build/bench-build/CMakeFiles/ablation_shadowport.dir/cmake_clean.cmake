file(REMOVE_RECURSE
  "../bench/ablation_shadowport"
  "../bench/ablation_shadowport.pdb"
  "CMakeFiles/ablation_shadowport.dir/ablation_shadowport.cpp.o"
  "CMakeFiles/ablation_shadowport.dir/ablation_shadowport.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shadowport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
