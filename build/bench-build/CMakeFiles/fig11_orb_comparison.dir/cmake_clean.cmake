file(REMOVE_RECURSE
  "../bench/fig11_orb_comparison"
  "../bench/fig11_orb_comparison.pdb"
  "CMakeFiles/fig11_orb_comparison.dir/fig11_orb_comparison.cpp.o"
  "CMakeFiles/fig11_orb_comparison.dir/fig11_orb_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_orb_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
