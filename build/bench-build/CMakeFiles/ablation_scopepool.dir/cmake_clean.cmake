file(REMOVE_RECURSE
  "../bench/ablation_scopepool"
  "../bench/ablation_scopepool.pdb"
  "CMakeFiles/ablation_scopepool.dir/ablation_scopepool.cpp.o"
  "CMakeFiles/ablation_scopepool.dir/ablation_scopepool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scopepool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
