# Empty compiler generated dependencies file for ablation_scopepool.
# This may be replaced when dependencies are built.
