# Empty dependencies file for ablation_crossscope.
# This may be replaced when dependencies are built.
