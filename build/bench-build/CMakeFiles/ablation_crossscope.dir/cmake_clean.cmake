file(REMOVE_RECURSE
  "../bench/ablation_crossscope"
  "../bench/ablation_crossscope.pdb"
  "CMakeFiles/ablation_crossscope.dir/ablation_crossscope.cpp.o"
  "CMakeFiles/ablation_crossscope.dir/ablation_crossscope.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crossscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
