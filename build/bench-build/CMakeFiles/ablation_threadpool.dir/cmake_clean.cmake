file(REMOVE_RECURSE
  "../bench/ablation_threadpool"
  "../bench/ablation_threadpool.pdb"
  "CMakeFiles/ablation_threadpool.dir/ablation_threadpool.cpp.o"
  "CMakeFiles/ablation_threadpool.dir/ablation_threadpool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
