# Empty compiler generated dependencies file for ablation_threadpool.
# This may be replaced when dependencies are built.
