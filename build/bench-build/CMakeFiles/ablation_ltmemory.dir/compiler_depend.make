# Empty compiler generated dependencies file for ablation_ltmemory.
# This may be replaced when dependencies are built.
