file(REMOVE_RECURSE
  "../bench/ablation_ltmemory"
  "../bench/ablation_ltmemory.pdb"
  "CMakeFiles/ablation_ltmemory.dir/ablation_ltmemory.cpp.o"
  "CMakeFiles/ablation_ltmemory.dir/ablation_ltmemory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ltmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
