file(REMOVE_RECURSE
  "../bench/overhead_framework"
  "../bench/overhead_framework.pdb"
  "CMakeFiles/overhead_framework.dir/overhead_framework.cpp.o"
  "CMakeFiles/overhead_framework.dir/overhead_framework.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
