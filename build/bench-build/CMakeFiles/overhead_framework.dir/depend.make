# Empty dependencies file for overhead_framework.
# This may be replaced when dependencies are built.
