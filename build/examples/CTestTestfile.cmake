# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "200")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_pipeline "/root/repo/build/examples/sensor_pipeline" "2000")
set_tests_properties(example_sensor_pipeline PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_orb_echo "/root/repo/build/examples/orb_echo" "200" "64")
set_tests_properties(example_orb_echo PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xml_assembly "/root/repo/build/examples/xml_assembly")
set_tests_properties(example_xml_assembly PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_pipeline "/root/repo/build/examples/remote_pipeline" "200")
set_tests_properties(example_remote_pipeline PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_control_loop "/root/repo/build/examples/control_loop" "150")
set_tests_properties(example_control_loop PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
