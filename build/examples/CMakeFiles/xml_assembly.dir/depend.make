# Empty dependencies file for xml_assembly.
# This may be replaced when dependencies are built.
