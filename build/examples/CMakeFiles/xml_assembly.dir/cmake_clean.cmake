file(REMOVE_RECURSE
  "CMakeFiles/xml_assembly.dir/xml_assembly.cpp.o"
  "CMakeFiles/xml_assembly.dir/xml_assembly.cpp.o.d"
  "xml_assembly"
  "xml_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
