# Empty compiler generated dependencies file for orb_echo.
# This may be replaced when dependencies are built.
