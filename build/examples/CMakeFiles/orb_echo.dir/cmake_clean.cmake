file(REMOVE_RECURSE
  "CMakeFiles/orb_echo.dir/orb_echo.cpp.o"
  "CMakeFiles/orb_echo.dir/orb_echo.cpp.o.d"
  "orb_echo"
  "orb_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orb_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
