file(REMOVE_RECURSE
  "CMakeFiles/remote_pipeline.dir/remote_pipeline.cpp.o"
  "CMakeFiles/remote_pipeline.dir/remote_pipeline.cpp.o.d"
  "remote_pipeline"
  "remote_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
