# Empty compiler generated dependencies file for remote_pipeline.
# This may be replaced when dependencies are built.
