file(REMOVE_RECURSE
  "CMakeFiles/compadresc.dir/compadresc.cpp.o"
  "CMakeFiles/compadresc.dir/compadresc.cpp.o.d"
  "compadresc"
  "compadresc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compadresc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
