# Empty dependencies file for compadresc.
# This may be replaced when dependencies are built.
