file(REMOVE_RECURSE
  "CMakeFiles/compiler_assembler_test.dir/compiler/assembler_test.cpp.o"
  "CMakeFiles/compiler_assembler_test.dir/compiler/assembler_test.cpp.o.d"
  "compiler_assembler_test"
  "compiler_assembler_test.pdb"
  "compiler_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
