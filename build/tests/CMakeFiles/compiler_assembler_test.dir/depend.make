# Empty dependencies file for compiler_assembler_test.
# This may be replaced when dependencies are built.
