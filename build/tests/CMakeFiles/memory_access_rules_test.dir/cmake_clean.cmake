file(REMOVE_RECURSE
  "CMakeFiles/memory_access_rules_test.dir/memory/access_rules_test.cpp.o"
  "CMakeFiles/memory_access_rules_test.dir/memory/access_rules_test.cpp.o.d"
  "memory_access_rules_test"
  "memory_access_rules_test.pdb"
  "memory_access_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_access_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
