# Empty dependencies file for memory_access_rules_test.
# This may be replaced when dependencies are built.
