file(REMOVE_RECURSE
  "CMakeFiles/rtzen_test.dir/orb/rtzen_test.cpp.o"
  "CMakeFiles/rtzen_test.dir/orb/rtzen_test.cpp.o.d"
  "rtzen_test"
  "rtzen_test.pdb"
  "rtzen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtzen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
