# Empty dependencies file for rtzen_test.
# This may be replaced when dependencies are built.
