file(REMOVE_RECURSE
  "CMakeFiles/compiler_validator_test.dir/compiler/validator_test.cpp.o"
  "CMakeFiles/compiler_validator_test.dir/compiler/validator_test.cpp.o.d"
  "compiler_validator_test"
  "compiler_validator_test.pdb"
  "compiler_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
