file(REMOVE_RECURSE
  "CMakeFiles/integration_topology_fuzz_test.dir/integration/topology_fuzz_test.cpp.o"
  "CMakeFiles/integration_topology_fuzz_test.dir/integration/topology_fuzz_test.cpp.o.d"
  "integration_topology_fuzz_test"
  "integration_topology_fuzz_test.pdb"
  "integration_topology_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_topology_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
