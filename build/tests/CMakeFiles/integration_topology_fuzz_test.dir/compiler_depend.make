# Empty compiler generated dependencies file for integration_topology_fuzz_test.
# This may be replaced when dependencies are built.
