# Empty dependencies file for core_application_test.
# This may be replaced when dependencies are built.
