file(REMOVE_RECURSE
  "CMakeFiles/core_application_test.dir/core/application_test.cpp.o"
  "CMakeFiles/core_application_test.dir/core/application_test.cpp.o.d"
  "core_application_test"
  "core_application_test.pdb"
  "core_application_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_application_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
