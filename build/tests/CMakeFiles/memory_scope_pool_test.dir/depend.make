# Empty dependencies file for memory_scope_pool_test.
# This may be replaced when dependencies are built.
