file(REMOVE_RECURSE
  "CMakeFiles/memory_scope_pool_test.dir/memory/scope_pool_test.cpp.o"
  "CMakeFiles/memory_scope_pool_test.dir/memory/scope_pool_test.cpp.o.d"
  "memory_scope_pool_test"
  "memory_scope_pool_test.pdb"
  "memory_scope_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_scope_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
