# Empty dependencies file for simenv_test.
# This may be replaced when dependencies are built.
