file(REMOVE_RECURSE
  "CMakeFiles/simenv_test.dir/simenv/simenv_test.cpp.o"
  "CMakeFiles/simenv_test.dir/simenv/simenv_test.cpp.o.d"
  "simenv_test"
  "simenv_test.pdb"
  "simenv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simenv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
