# Empty compiler generated dependencies file for integration_fig6_test.
# This may be replaced when dependencies are built.
