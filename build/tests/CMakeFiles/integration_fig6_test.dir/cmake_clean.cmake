file(REMOVE_RECURSE
  "CMakeFiles/integration_fig6_test.dir/integration/fig6_test.cpp.o"
  "CMakeFiles/integration_fig6_test.dir/integration/fig6_test.cpp.o.d"
  "integration_fig6_test"
  "integration_fig6_test.pdb"
  "integration_fig6_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fig6_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
