file(REMOVE_RECURSE
  "CMakeFiles/core_message_pool_test.dir/core/message_pool_test.cpp.o"
  "CMakeFiles/core_message_pool_test.dir/core/message_pool_test.cpp.o.d"
  "core_message_pool_test"
  "core_message_pool_test.pdb"
  "core_message_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_message_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
