# Empty dependencies file for core_message_pool_test.
# This may be replaced when dependencies are built.
