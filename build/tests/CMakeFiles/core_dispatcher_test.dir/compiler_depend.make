# Empty compiler generated dependencies file for core_dispatcher_test.
# This may be replaced when dependencies are built.
