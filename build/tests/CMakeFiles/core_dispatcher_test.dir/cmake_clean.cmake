file(REMOVE_RECURSE
  "CMakeFiles/core_dispatcher_test.dir/core/dispatcher_test.cpp.o"
  "CMakeFiles/core_dispatcher_test.dir/core/dispatcher_test.cpp.o.d"
  "core_dispatcher_test"
  "core_dispatcher_test.pdb"
  "core_dispatcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dispatcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
