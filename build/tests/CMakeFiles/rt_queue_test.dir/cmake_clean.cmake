file(REMOVE_RECURSE
  "CMakeFiles/rt_queue_test.dir/rt/queue_test.cpp.o"
  "CMakeFiles/rt_queue_test.dir/rt/queue_test.cpp.o.d"
  "rt_queue_test"
  "rt_queue_test.pdb"
  "rt_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
