# Empty dependencies file for rt_queue_test.
# This may be replaced when dependencies are built.
