file(REMOVE_RECURSE
  "CMakeFiles/memory_scoped_test.dir/memory/scoped_test.cpp.o"
  "CMakeFiles/memory_scoped_test.dir/memory/scoped_test.cpp.o.d"
  "memory_scoped_test"
  "memory_scoped_test.pdb"
  "memory_scoped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_scoped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
