# Empty compiler generated dependencies file for memory_scoped_test.
# This may be replaced when dependencies are built.
