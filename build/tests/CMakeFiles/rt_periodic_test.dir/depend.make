# Empty dependencies file for rt_periodic_test.
# This may be replaced when dependencies are built.
