file(REMOVE_RECURSE
  "CMakeFiles/rt_periodic_test.dir/rt/periodic_test.cpp.o"
  "CMakeFiles/rt_periodic_test.dir/rt/periodic_test.cpp.o.d"
  "rt_periodic_test"
  "rt_periodic_test.pdb"
  "rt_periodic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_periodic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
