# Empty dependencies file for memory_region_test.
# This may be replaced when dependencies are built.
