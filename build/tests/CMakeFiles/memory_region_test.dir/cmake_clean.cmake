file(REMOVE_RECURSE
  "CMakeFiles/memory_region_test.dir/memory/region_test.cpp.o"
  "CMakeFiles/memory_region_test.dir/memory/region_test.cpp.o.d"
  "memory_region_test"
  "memory_region_test.pdb"
  "memory_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
