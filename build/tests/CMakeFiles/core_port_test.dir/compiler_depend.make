# Empty compiler generated dependencies file for core_port_test.
# This may be replaced when dependencies are built.
