file(REMOVE_RECURSE
  "CMakeFiles/core_port_test.dir/core/port_test.cpp.o"
  "CMakeFiles/core_port_test.dir/core/port_test.cpp.o.d"
  "core_port_test"
  "core_port_test.pdb"
  "core_port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
