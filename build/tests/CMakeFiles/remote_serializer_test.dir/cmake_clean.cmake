file(REMOVE_RECURSE
  "CMakeFiles/remote_serializer_test.dir/remote/serializer_test.cpp.o"
  "CMakeFiles/remote_serializer_test.dir/remote/serializer_test.cpp.o.d"
  "remote_serializer_test"
  "remote_serializer_test.pdb"
  "remote_serializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
