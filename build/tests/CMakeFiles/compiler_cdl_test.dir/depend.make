# Empty dependencies file for compiler_cdl_test.
# This may be replaced when dependencies are built.
