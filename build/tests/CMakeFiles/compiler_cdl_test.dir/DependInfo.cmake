
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compiler/cdl_test.cpp" "tests/CMakeFiles/compiler_cdl_test.dir/compiler/cdl_test.cpp.o" "gcc" "tests/CMakeFiles/compiler_cdl_test.dir/compiler/cdl_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/compadres_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/compadres_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/rtzen/CMakeFiles/compadres_rtzen.dir/DependInfo.cmake"
  "/root/repo/build/src/simenv/CMakeFiles/compadres_simenv.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/compadres_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/compadres_components.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/compadres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/compadres_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/compadres_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/compadres_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/compadres_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/compadres_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
