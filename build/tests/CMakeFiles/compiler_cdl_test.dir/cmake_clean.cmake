file(REMOVE_RECURSE
  "CMakeFiles/compiler_cdl_test.dir/compiler/cdl_test.cpp.o"
  "CMakeFiles/compiler_cdl_test.dir/compiler/cdl_test.cpp.o.d"
  "compiler_cdl_test"
  "compiler_cdl_test.pdb"
  "compiler_cdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_cdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
