# Empty dependencies file for core_component_test.
# This may be replaced when dependencies are built.
