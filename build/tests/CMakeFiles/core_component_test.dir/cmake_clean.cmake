file(REMOVE_RECURSE
  "CMakeFiles/core_component_test.dir/core/component_test.cpp.o"
  "CMakeFiles/core_component_test.dir/core/component_test.cpp.o.d"
  "core_component_test"
  "core_component_test.pdb"
  "core_component_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
