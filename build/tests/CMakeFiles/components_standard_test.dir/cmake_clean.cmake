file(REMOVE_RECURSE
  "CMakeFiles/components_standard_test.dir/components/standard_test.cpp.o"
  "CMakeFiles/components_standard_test.dir/components/standard_test.cpp.o.d"
  "components_standard_test"
  "components_standard_test.pdb"
  "components_standard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_standard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
