# Empty dependencies file for compiler_cli_test.
# This may be replaced when dependencies are built.
