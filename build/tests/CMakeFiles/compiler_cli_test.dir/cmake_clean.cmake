file(REMOVE_RECURSE
  "CMakeFiles/compiler_cli_test.dir/compiler/cli_test.cpp.o"
  "CMakeFiles/compiler_cli_test.dir/compiler/cli_test.cpp.o.d"
  "compiler_cli_test"
  "compiler_cli_test.pdb"
  "compiler_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
