file(REMOVE_RECURSE
  "CMakeFiles/rt_thread_test.dir/rt/thread_test.cpp.o"
  "CMakeFiles/rt_thread_test.dir/rt/thread_test.cpp.o.d"
  "rt_thread_test"
  "rt_thread_test.pdb"
  "rt_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
