# Empty dependencies file for remote_bridge_test.
# This may be replaced when dependencies are built.
