file(REMOVE_RECURSE
  "CMakeFiles/remote_bridge_test.dir/remote/bridge_test.cpp.o"
  "CMakeFiles/remote_bridge_test.dir/remote/bridge_test.cpp.o.d"
  "remote_bridge_test"
  "remote_bridge_test.pdb"
  "remote_bridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_bridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
