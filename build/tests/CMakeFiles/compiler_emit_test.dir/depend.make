# Empty dependencies file for compiler_emit_test.
# This may be replaced when dependencies are built.
