file(REMOVE_RECURSE
  "CMakeFiles/compiler_emit_test.dir/compiler/emit_test.cpp.o"
  "CMakeFiles/compiler_emit_test.dir/compiler/emit_test.cpp.o.d"
  "compiler_emit_test"
  "compiler_emit_test.pdb"
  "compiler_emit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_emit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
