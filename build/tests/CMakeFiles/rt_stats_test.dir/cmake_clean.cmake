file(REMOVE_RECURSE
  "CMakeFiles/rt_stats_test.dir/rt/stats_test.cpp.o"
  "CMakeFiles/rt_stats_test.dir/rt/stats_test.cpp.o.d"
  "rt_stats_test"
  "rt_stats_test.pdb"
  "rt_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
