# Empty compiler generated dependencies file for rt_stats_test.
# This may be replaced when dependencies are built.
