# Empty compiler generated dependencies file for core_smm_test.
# This may be replaced when dependencies are built.
