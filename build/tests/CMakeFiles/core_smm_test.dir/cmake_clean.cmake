file(REMOVE_RECURSE
  "CMakeFiles/core_smm_test.dir/core/smm_test.cpp.o"
  "CMakeFiles/core_smm_test.dir/core/smm_test.cpp.o.d"
  "core_smm_test"
  "core_smm_test.pdb"
  "core_smm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_smm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
