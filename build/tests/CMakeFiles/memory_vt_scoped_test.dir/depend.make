# Empty dependencies file for memory_vt_scoped_test.
# This may be replaced when dependencies are built.
