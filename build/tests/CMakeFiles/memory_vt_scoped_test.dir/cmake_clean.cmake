file(REMOVE_RECURSE
  "CMakeFiles/memory_vt_scoped_test.dir/memory/vt_scoped_test.cpp.o"
  "CMakeFiles/memory_vt_scoped_test.dir/memory/vt_scoped_test.cpp.o.d"
  "memory_vt_scoped_test"
  "memory_vt_scoped_test.pdb"
  "memory_vt_scoped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_vt_scoped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
