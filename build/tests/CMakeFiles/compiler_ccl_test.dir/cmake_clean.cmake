file(REMOVE_RECURSE
  "CMakeFiles/compiler_ccl_test.dir/compiler/ccl_test.cpp.o"
  "CMakeFiles/compiler_ccl_test.dir/compiler/ccl_test.cpp.o.d"
  "compiler_ccl_test"
  "compiler_ccl_test.pdb"
  "compiler_ccl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_ccl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
