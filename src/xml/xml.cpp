#include "xml/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace compadres::xml {

namespace {

std::string trim(std::string_view s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

class Parser {
public:
    explicit Parser(std::string_view input) : in_(input) {}

    std::unique_ptr<XmlNode> parse_document() {
        skip_misc();
        if (eof()) fail("document has no root element");
        auto root = parse_element();
        skip_misc();
        if (!eof()) fail("trailing content after root element");
        return root;
    }

private:
    std::string_view in_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;

    [[noreturn]] void fail(const std::string& msg) const {
        throw XmlError(msg, line_, col_);
    }

    bool eof() const noexcept { return pos_ >= in_.size(); }

    char peek() const noexcept { return eof() ? '\0' : in_[pos_]; }

    bool starts_with(std::string_view s) const noexcept {
        return in_.substr(pos_, s.size()) == s;
    }

    char advance() {
        if (eof()) fail("unexpected end of input");
        const char c = in_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void advance_n(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) advance();
    }

    void skip_ws() {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
        advance();
    }

    /// Skip whitespace, comments, processing instructions, and DOCTYPE —
    /// the "misc" productions allowed around the root element.
    void skip_misc() {
        for (;;) {
            skip_ws();
            if (starts_with("<!--")) {
                skip_comment();
            } else if (starts_with("<?")) {
                skip_pi();
            } else if (starts_with("<!DOCTYPE")) {
                skip_until('>');
            } else {
                return;
            }
        }
    }

    void skip_comment() {
        advance_n(4); // <!--
        while (!starts_with("-->")) {
            if (eof()) fail("unterminated comment");
            advance();
        }
        advance_n(3);
    }

    void skip_pi() {
        advance_n(2); // <?
        while (!starts_with("?>")) {
            if (eof()) fail("unterminated processing instruction");
            advance();
        }
        advance_n(2);
    }

    void skip_until(char c) {
        while (!eof() && peek() != c) advance();
        if (eof()) fail(std::string("expected '") + c + "'");
        advance();
    }

    static bool is_name_start(char c) noexcept {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    }
    static bool is_name_char(char c) noexcept {
        return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
               c == '-' || c == '.';
    }

    std::string parse_name() {
        if (!is_name_start(peek())) fail("expected a name");
        std::string name;
        while (!eof() && is_name_char(peek())) name.push_back(advance());
        return name;
    }

    std::string parse_entity() {
        // '&' already consumed by caller? No: caller sees '&' and calls us.
        expect('&');
        std::string ref;
        while (!eof() && peek() != ';') ref.push_back(advance());
        expect(';');
        if (ref == "lt") return "<";
        if (ref == "gt") return ">";
        if (ref == "amp") return "&";
        if (ref == "quot") return "\"";
        if (ref == "apos") return "'";
        if (!ref.empty() && ref[0] == '#') {
            const bool hex = ref.size() > 1 && (ref[1] == 'x' || ref[1] == 'X');
            const long code = std::strtol(ref.c_str() + (hex ? 2 : 1), nullptr,
                                          hex ? 16 : 10);
            if (code <= 0 || code > 0x10FFFF) fail("bad character reference &" + ref + ";");
            // Encode as UTF-8.
            std::string out;
            const auto cp = static_cast<unsigned long>(code);
            if (cp < 0x80) {
                out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
                out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else if (cp < 0x10000) {
                out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
                out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
                out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
                out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            return out;
        }
        fail("unknown entity &" + ref + ";");
    }

    std::string parse_attr_value() {
        const char quote = peek();
        if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
        advance();
        std::string value;
        while (peek() != quote) {
            if (eof()) fail("unterminated attribute value");
            if (peek() == '&') {
                value += parse_entity();
            } else if (peek() == '<') {
                fail("'<' in attribute value");
            } else {
                value.push_back(advance());
            }
        }
        advance();
        return value;
    }

    std::unique_ptr<XmlNode> parse_element() {
        expect('<');
        auto node = std::make_unique<XmlNode>();
        node->line = line_;
        node->name = parse_name();

        // Attributes.
        for (;;) {
            skip_ws();
            if (peek() == '>' || starts_with("/>")) break;
            std::string attr_name = parse_name();
            skip_ws();
            expect('=');
            skip_ws();
            node->attributes.emplace_back(std::move(attr_name), parse_attr_value());
        }

        if (starts_with("/>")) {
            advance_n(2);
            return node;
        }
        expect('>');

        // Content.
        std::string text;
        for (;;) {
            if (eof()) fail("unterminated element <" + node->name + ">");
            if (starts_with("</")) {
                advance_n(2);
                const std::string closing = parse_name();
                if (closing != node->name) {
                    fail("mismatched closing tag </" + closing + "> for <" +
                         node->name + ">");
                }
                skip_ws();
                expect('>');
                node->text = trim(text);
                return node;
            }
            if (starts_with("<!--")) {
                skip_comment();
            } else if (starts_with("<![CDATA[")) {
                advance_n(9);
                while (!starts_with("]]>")) {
                    if (eof()) fail("unterminated CDATA section");
                    text.push_back(advance());
                }
                advance_n(3);
            } else if (starts_with("<?")) {
                skip_pi();
            } else if (peek() == '<') {
                node->children.push_back(parse_element());
            } else if (peek() == '&') {
                text += parse_entity();
            } else {
                text.push_back(advance());
            }
        }
    }
};

void escape_into(std::ostringstream& out, std::string_view s, bool attr) {
    for (const char c : s) {
        switch (c) {
            case '<': out << "&lt;"; break;
            case '>': out << "&gt;"; break;
            case '&': out << "&amp;"; break;
            case '"':
                if (attr) out << "&quot;";
                else out << c;
                break;
            default: out << c;
        }
    }
}

void write_node(std::ostringstream& out, const XmlNode& node, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    out << pad << '<' << node.name;
    for (const auto& [k, v] : node.attributes) {
        out << ' ' << k << "=\"";
        escape_into(out, v, /*attr=*/true);
        out << '"';
    }
    if (node.children.empty() && node.text.empty()) {
        out << "/>\n";
        return;
    }
    out << '>';
    if (node.children.empty()) {
        escape_into(out, node.text, /*attr=*/false);
        out << "</" << node.name << ">\n";
        return;
    }
    out << '\n';
    if (!node.text.empty()) {
        out << pad << "  ";
        escape_into(out, node.text, /*attr=*/false);
        out << '\n';
    }
    for (const auto& child : node.children) {
        write_node(out, *child, indent + 1);
    }
    out << pad << "</" << node.name << ">\n";
}

} // namespace

const XmlNode* XmlNode::child(std::string_view child_name) const noexcept {
    for (const auto& c : children) {
        if (c->name == child_name) return c.get();
    }
    return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view child_name) const {
    std::vector<const XmlNode*> out;
    for (const auto& c : children) {
        if (c->name == child_name) out.push_back(c.get());
    }
    return out;
}

std::string XmlNode::child_text(std::string_view child_name,
                                std::string fallback) const {
    const XmlNode* c = child(child_name);
    return c != nullptr ? c->text : std::move(fallback);
}

const std::string* XmlNode::attribute(std::string_view attr_name) const noexcept {
    for (const auto& [k, v] : attributes) {
        if (k == attr_name) return &v;
    }
    return nullptr;
}

std::unique_ptr<XmlNode> parse(std::string_view input) {
    return Parser(input).parse_document();
}

std::unique_ptr<XmlNode> parse_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("cannot open XML file: " + path);
    std::ostringstream ss;
    ss << f.rdbuf();
    return parse(ss.str());
}

std::string write(const XmlNode& root) {
    std::ostringstream out;
    out << "<?xml version=\"1.0\"?>\n";
    write_node(out, root, 0);
    return out.str();
}

} // namespace compadres::xml
