// Minimal non-validating XML parser and writer.
//
// The Compadres toolchain is driven by two XML dialects — the Component
// Definition Language (CDL) and the Component Composition Language (CCL).
// This parser covers the XML subset those dialects use (elements,
// attributes, character data, comments, declarations, CDATA, the five
// predefined entities) with line-accurate error reporting, and is built
// from scratch so the repository has no external dependencies.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace compadres::xml {

/// Parse error with 1-based line/column of the offending input.
class XmlError : public std::runtime_error {
public:
    XmlError(const std::string& message, int line, int column)
        : std::runtime_error("XML error at " + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message),
          line_(line), column_(column) {}

    int line() const noexcept { return line_; }
    int column() const noexcept { return column_; }

private:
    int line_;
    int column_;
};

/// One element. Character data of all text nodes directly under the element
/// is concatenated (whitespace-trimmed) into `text` — sufficient for the
/// CDL/CCL dialects, which never interleave text and elements.
class XmlNode {
public:
    std::string name;
    std::vector<std::pair<std::string, std::string>> attributes;
    std::vector<std::unique_ptr<XmlNode>> children;
    std::string text;
    int line = 0;

    /// First child with the given element name, or nullptr.
    const XmlNode* child(std::string_view child_name) const noexcept;

    /// All children with the given element name.
    std::vector<const XmlNode*> children_named(std::string_view child_name) const;

    /// Trimmed text of the named child; `fallback` if absent.
    std::string child_text(std::string_view child_name,
                           std::string fallback = {}) const;

    /// Attribute value, or nullptr if absent.
    const std::string* attribute(std::string_view attr_name) const noexcept;

    /// True if a child with this name exists.
    bool has_child(std::string_view child_name) const noexcept {
        return child(child_name) != nullptr;
    }
};

/// Parse a complete document; returns the root element.
/// Throws XmlError on malformed input (mismatched tags, bad entities,
/// trailing content, ...).
std::unique_ptr<XmlNode> parse(std::string_view input);

/// Parse the file at `path` (throws std::runtime_error if unreadable).
std::unique_ptr<XmlNode> parse_file(const std::string& path);

/// Serialize a tree back to text (2-space indentation, entities escaped).
std::string write(const XmlNode& root);

} // namespace compadres::xml
