// Compiler-to-bridge glue: apply a validated <Remote> plan to a live
// RemoteBridge.
//
// The CCL compiler turned <Remote>/<Bands>/<Export>/<Import> into a
// PlannedRemote (parse -> validate -> plan); this translates that plan
// into export_route/import_route calls against the assembled application,
// so band assignment stays a composition-time artifact — generated from
// the CCL, never hand-wired in application code. The paper's RT-OSGi
// contemporaries make the same argument for priority mapping (PAPERS.md);
// this is the Compadres version of it.
//
// Lives in the remote library (not the compiler): the compiler stays free
// of transport dependencies, while the remote layer already links both.
#pragma once

#include "compiler/validator.hpp"
#include "net/lane_group.hpp"
#include "net/shm_transport.hpp"
#include "remote/bridge.hpp"

namespace compadres::remote {

/// Wire dialed for a PlannedRemote: the transport plus whether the shm
/// upgrade actually stuck (false + detail = degraded to TCP).
struct PlannedWire {
    std::unique_ptr<net::Transport> transport;
    bool shm = false;
    std::string detail;
};

/// Dial the wire `remote` declares: <Transport>shm runs the segment
/// handshake (falling back to the same TCP connection when the peer
/// cannot share memory), multi-band tcp opens a LaneGroup, single-band
/// tcp a plain connection. The CCL's <Host> picks the endpoint. Throws
/// TransportError when TCP itself cannot connect.
PlannedWire connect_planned_wire(
    const compiler::PlannedRemote& remote, std::uint16_t port,
    const net::ShmOptions& shm_options = {},
    const net::LaneGroupOptions& lane_options = {});

/// Find `remote_name` in the plan and wire its routes into `bridge`
/// (exports with their planned bands, imports at frame-carried priority).
/// `app` must be the application assembled from the same plan. Call
/// before bridge.start(). Throws BridgeError when the plan has no such
/// remote or the assembled application is missing a named instance/port.
void apply_remote_plan(const compiler::AssemblyPlan& plan,
                       const std::string& remote_name,
                       core::Application& app, RemoteBridge& bridge);

} // namespace compadres::remote
