#include "remote/bridge.hpp"

#include "cdr/giop.hpp"
#include "net/lane_group.hpp"
#include "net/shm_transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"

#include <cstdio>

namespace compadres::remote {

namespace {
constexpr const char* kBridgeObjectKey = "compadres.bridge";
} // namespace

/// Type-erased handler on an export route's In port: serialize and ship.
///
/// Fast path: encodes headers and body straight into pooled storage — one
/// stream, no intermediate payload buffer, no header-string copies — and
/// hands the filled buffer to the transport without copying. Everything up
/// to the payload-length field is invariant per route, so the constructor
/// renders it once and each message starts with a single memcpy instead of
/// a dozen field writes. The scratch hint remembers the largest frame this
/// route has produced, so after the first message the pooled storage is
/// always big enough and encoding never grows the buffer.
class RemoteBridge::ExportHandler final : public core::MessageHandlerBase {
public:
    ExportHandler(RemoteBridge& bridge, const Serializer& serializer,
                  std::string route, std::uint32_t route_id, int priority,
                  const core::TransmissionPolicy& policy)
        : bridge_(&bridge), encode_fn_(serializer.encode_fn),
          encode_ctx_(serializer.encode_ctx), encode_state_(serializer.state),
          route_(std::move(route)), priority_(priority) {
        cdr::OutputStream prefix;
        // The route id rides in the (otherwise unused) GIOP request_id
        // field, rendered into the template for free; the receiving bridge
        // uses it to skip the per-message route-map lookup.
        len_offset_ = cdr::begin_request_payload(
            prefix, route_id, /*response_expected=*/false, kBridgeObjectKey,
            route_);
        header_template_ = prefix.take_buffer();
        apply_policy(policy);
        // Legacy baseline keeps the seed's doubly-erased std::function shape.
        std::function<void(const void*, cdr::OutputStream&)> inner =
            [fn = encode_fn_, ctx = encode_ctx_](const void* msg,
                                                 cdr::OutputStream& out) {
                fn(ctx, msg, out);
            };
        legacy_encode_ = [inner = std::move(inner)](const void* msg,
                                                    cdr::OutputStream& out) {
            inner(msg, out);
        };
    }

    void process_raw(void* msg, core::Smm&) override {
        if (bridge_->options_.legacy_wire_path) {
            process_legacy(msg);
            return;
        }
        cdr::OutputStream out(pool_->acquire_storage(
            scratch_hint_.load(std::memory_order_relaxed)));
        out.write_raw(header_template_.data(), header_template_.size());
        out.rebase(); // body alignment is payload-relative, as on the wire
        out.write_ulong(static_cast<std::uint32_t>(priority_));
        encode_fn_(encode_ctx_, msg, out);
        cdr::finish_payload(out, len_offset_);
        // Wire trace propagation: when the sampler elects this message (or
        // the exporting thread already carries a context from an upstream
        // hop), a 16-byte trailer rides after the payload. Frames without a
        // context stay byte-identical to stock GIOP 1.0 — untraced traffic
        // pays one relaxed load here.
        if (obs::Tracer::active()) {
            const obs::TraceContext ctx = obs::Tracer::on_send();
            if (ctx) {
                cdr::append_trace_trailer(out, ctx.trace_id, ctx.span_id);
                obs::FlightRecorder::emit(obs::EventType::kSpanSend,
                                          ctx.trace_id, ctx.span_id);
            }
        }
        if (out.size() > scratch_hint_.load(std::memory_order_relaxed)) {
            scratch_hint_.store(out.size(), std::memory_order_relaxed);
        }
        bridge_->wire_->send_frame(pool_->adopt(out.take_buffer()));
        bridge_->sent_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Re-resolve everything the route's TransmissionPolicy drives: the
    /// band stamped into the header template (every frame classifies for
    /// free), the lane pool outbound storage is drawn from (a route's
    /// whole send path stays inside one pool ring), and the carrying
    /// lane's coalescing writer. Called at construction and by
    /// repolicy_route — the latter only while the export In port's credit
    /// window is closed and drained, so no concurrent process_raw can
    /// observe the mutation half-applied.
    void apply_policy(const core::TransmissionPolicy& policy) {
        const std::size_t lanes = bridge_->wire_->lane_count();
        int band = policy.band;
        if (band < 0 && lanes > 1) {
            // No explicit band: derive one from the port's default
            // priority, the same composition-time mapping the CCL
            // compiler performs.
            band = static_cast<int>(
                net::LanePolicy{}.band_for_priority(priority_, lanes));
        }
        pool_ = &bridge_->wire_->frame_pool();
        if (band >= 0 && lanes > 1) {
            cdr::set_frame_band(header_template_.data(),
                                static_cast<std::uint8_t>(band));
            const std::size_t lane = net::LanePolicy::band_for_frame(
                header_template_.data(), lanes);
            pool_ = &bridge_->wire_->lane(lane).frame_pool();
        }
        if (auto* group = dynamic_cast<net::LaneGroup*>(bridge_->wire_.get())) {
            group->set_band_coalescing(
                band >= 0 ? static_cast<std::size_t>(band) : 0,
                policy.coalesce);
        } else {
            bridge_->wire_->set_coalescing(policy.coalesce);
        }
    }

private:
    /// Pre-pool wire path: separate payload stream, header-string copies,
    /// and a frame vector copied through the transport shim. Byte-identical
    /// frames; kept as the bench baseline (BridgeOptions::legacy_wire_path).
    void process_legacy(void* msg) {
        cdr::OutputStream body;
        body.write_ulong(static_cast<std::uint32_t>(priority_));
        legacy_encode_(msg, body);

        cdr::RequestHeader header;
        header.request_id = 0;
        header.response_expected = false;
        header.object_key = kBridgeObjectKey;
        header.operation = route_;
        const std::vector<std::uint8_t> frame = cdr::encode_request(
            header, body.buffer().data(), body.buffer().size());
        // The pre-change wire took frames by const reference and its
        // bounded queue's push(T value) copy-constructed them: a second
        // allocation + memcpy per message the baseline has to keep paying.
        std::vector<std::uint8_t> queued(frame);
        bridge_->wire_->send_frame(queued);
        bridge_->sent_.fetch_add(1, std::memory_order_relaxed);
    }

    RemoteBridge* bridge_;
    Serializer::EncodeFn encode_fn_;
    const void* encode_ctx_;
    std::shared_ptr<const void> encode_state_;
    /// Pre-change dispatch shape for the legacy_wire_path baseline.
    std::function<void(const void*, cdr::OutputStream&)> legacy_encode_;
    std::string route_;
    int priority_;
    /// The band lane's pool (or the wire's default pool): outbound frame
    /// storage is acquired from and recycles back into it.
    net::FrameBufferPool* pool_ = nullptr;
    /// GIOP + request header bytes, rendered once; only the two length
    /// fields (message_size, payload length) get patched per message.
    std::vector<std::uint8_t> header_template_;
    std::size_t len_offset_ = 0; ///< payload-length field within the template
    /// Largest frame produced so far — the pooled-storage size hint.
    std::atomic<std::size_t> scratch_hint_{256};
};

RemoteBridge::RemoteBridge(core::Application& app,
                           std::unique_ptr<net::Transport> wire,
                           std::string name, BridgeOptions options)
    : app_(&app), name_(std::move(name)), options_(options),
      wire_(std::move(wire)) {
    register_builtin_serializers();
    component_ = &app_->create_immortal<core::Component>(name_);
    // Surface the wire and frame-pool health next to the delivery-fabric
    // counters; removed in shutdown() before the wire can die.
    counter_token_ = app_->add_counter_source([this] {
        core::CounterGroup g;
        g.source = "bridge:" + name_;
        const net::TransportStats wire_stats = wire_->stats();
        const net::FrameBufferPool::Stats pool =
            net::FrameBufferPool::global().stats();
        g.counters = {
            {"frames_sent", frames_sent()},
            {"frames_received", frames_received()},
            {"frames_dropped", frames_dropped()},
            {"send_syscalls", wire_stats.send_syscalls},
            {"send_batches", wire_stats.send_batches},
            {"pool_hits", pool.hits},
            {"pool_tls_hits", pool.tls_hits},
            {"pool_misses", pool.allocations},
            {"pool_borrowed", pool.borrowed},
        };
        // Lane-group wires: per-lane depth/stall/drop visibility plus the
        // failover counters, so lane starvation is observable in
        // trace_report instead of inferred from end-to-end latency.
        if (auto* group = dynamic_cast<net::LaneGroup*>(wire_.get())) {
            g.counters.emplace_back("lane_failovers",
                                    group->lane_failovers());
            g.counters.emplace_back("lanes_down", lanes_down_.load());
            for (std::size_t i = 0; i < group->lane_count(); ++i) {
                const net::TransportStats ls = group->lane_stats(i);
                const std::string p = "lane" + std::to_string(i) + "_";
                g.counters.emplace_back(p + "frames_sent", ls.frames_sent);
                g.counters.emplace_back(p + "frames_dropped",
                                        ls.frames_dropped);
                g.counters.emplace_back(p + "send_stalls", ls.send_stalls);
                g.counters.emplace_back(p + "intake_depth_hwm",
                                        ls.intake_depth_hwm);
            }
        }
        // Shared-memory wires: ring depth, wakeup/spin discipline, and the
        // failover path. shm_active flips to 0 when the wire degrades to
        // its TCP fallback (peer death, oversize frame, forced abandon).
        if (auto* shm = dynamic_cast<net::ShmTransport*>(wire_.get())) {
            const net::ShmCounters c = shm->counters();
            g.counters.emplace_back("shm_active", shm->shm_active() ? 1 : 0);
            g.counters.emplace_back("shm_frames_sent", c.shm_frames_sent);
            g.counters.emplace_back("shm_frames_received",
                                    c.shm_frames_received);
            g.counters.emplace_back("shm_tcp_frames_sent", c.tcp_frames_sent);
            g.counters.emplace_back("shm_tcp_frames_received",
                                    c.tcp_frames_received);
            g.counters.emplace_back("shm_tx_depth", c.tx_depth);
            g.counters.emplace_back("shm_rx_depth", c.rx_depth);
            g.counters.emplace_back("shm_wakeups", c.wakeups);
            g.counters.emplace_back("shm_futex_waits", c.futex_waits);
            g.counters.emplace_back("shm_spins", c.spins);
            g.counters.emplace_back("shm_failovers", c.failovers);
            g.counters.emplace_back("shm_resent_frames", c.resent_frames);
            g.counters.emplace_back("shm_dropped_on_failover",
                                    c.dropped_on_failover);
            g.counters.emplace_back("shm_replay_skipped", c.replay_skipped);
            // Zero-copy receive health: borrowed is the steady state,
            // copies should stay 0 (a nonzero value means the pin budget
            // forced copy-out fallbacks, visible in pin_stalls too).
            g.counters.emplace_back("shm_rx_borrowed", c.rx_borrowed);
            g.counters.emplace_back("shm_rx_copies", c.rx_copies);
            g.counters.emplace_back("shm_rx_pinned", c.rx_pinned);
            g.counters.emplace_back("shm_rx_pin_stalls", c.rx_pin_stalls);
            g.counters.emplace_back("shm_bands", c.bands);
            if (c.bands > 1) {
                for (std::uint32_t b = 0; b < c.bands; ++b) {
                    const std::string p = "shm_band" + std::to_string(b) + "_";
                    g.counters.emplace_back(p + "tx_depth",
                                            c.band_tx_depth[b]);
                    g.counters.emplace_back(p + "rx_depth",
                                            c.band_rx_depth[b]);
                    g.counters.emplace_back(p + "tx_stalls",
                                            c.band_tx_stalls[b]);
                    g.counters.emplace_back(p + "tx_frames",
                                            c.band_tx_frames[b]);
                    g.counters.emplace_back(p + "rx_frames",
                                            c.band_rx_frames[b]);
                }
            }
        }
        if (reactor_ != nullptr) {
            const net::ReactorStats rs = reactor_->stats();
            g.counters.emplace_back("reactor_wire_add_failures",
                                    rs.wire_add_failures);
            // Loop-side syscall economics, both backends: waits + pump
            // reads over assembled frames. Published as a per-1k-frames
            // integer (counters are integral); uring loops should sit far
            // below epoll here — reads complete in-ring.
            g.counters.emplace_back("reactor_wait_syscalls",
                                    rs.wait_syscalls);
            g.counters.emplace_back("reactor_read_syscalls",
                                    rs.read_syscalls);
            g.counters.emplace_back(
                "reactor_syscalls_per_1k_frames",
                static_cast<std::uint64_t>(rs.loop_syscalls_per_frame() *
                                           1000.0));
            g.counters.emplace_back("reactor_send_sqes", rs.send_sqes);
            g.counters.emplace_back("reactor_recv_enobufs",
                                    rs.recv_enobufs);
            g.counters.emplace_back("reactor_uring_loops", rs.uring_loops);
            g.counters.emplace_back("reactor_uring_fallbacks",
                                    rs.uring_fallbacks);
        }
        return g;
    });
}

RemoteBridge::~RemoteBridge() { shutdown(); }

void RemoteBridge::export_route(core::OutPortBase& local_out,
                                const std::string& route,
                                core::TransmissionPolicy policy) {
    if (started_.load()) {
        throw BridgeError("cannot add routes after start()");
    }
    const Serializer& serializer =
        SerializerRegistry::global().find(local_out.type());
    if (policy.band >= static_cast<int>(net::kMaxLanes)) {
        throw BridgeError("route '" + route + "': band " +
                          std::to_string(policy.band) +
                          " exceeds the wire limit (" +
                          std::to_string(net::kMaxLanes - 1) + ")");
    }
    {
        std::lock_guard lk(mu_);
        if (exports_.count(route) != 0) {
            throw BridgeError("route '" + route + "' already exported");
        }
    }
    // A sync In port on the bridge component: the sending component's
    // thread serializes and writes the frame (natural backpressure). The
    // route's policy IS the port's policy — overflow admission included.
    core::InPortConfig cfg;
    cfg.buffer_size = 16;
    cfg.min_threads = cfg.max_threads = 0;
    cfg.policy = policy;
    auto* handler = component_->region().make<ExportHandler>(
        *this, serializer, route, ++next_export_id_,
        local_out.default_priority(), policy);
    core::InPortBase& in = component_->add_in_port_erased(
        "exp" + std::to_string(next_port_id_++) + ":" + route,
        local_out.type(), local_out.type_name(), cfg, *handler);
    app_->connect(local_out, in);
    std::lock_guard lk(mu_);
    exports_.emplace(route, ExportRoute{&in, handler, policy});
}

std::uint64_t RemoteBridge::repolicy_route(const std::string& route,
                                           core::TransmissionPolicy policy) {
    if (policy.band >= static_cast<int>(net::kMaxLanes)) {
        throw BridgeError("route '" + route + "': band " +
                          std::to_string(policy.band) +
                          " exceeds the wire limit (" +
                          std::to_string(net::kMaxLanes - 1) + ")");
    }
    if (stopped_.load()) {
        throw BridgeError("cannot repolicy after shutdown()");
    }
    ExportRoute* exp = nullptr;
    {
        std::lock_guard lk(mu_);
        auto it = exports_.find(route);
        if (it == exports_.end()) {
            throw BridgeError("route '" + route + "' is not exported");
        }
        exp = &it->second;
    }
    // Quiesce-reroute-resume on the export In port: new senders park at
    // the closed credit window, in-flight serializations drain, and the
    // swap mutates both the port's admission policy and the handler's
    // wire-side state (band stamp, lane pool, coalescing) while nothing
    // can observe them.
    const std::uint64_t pause = core::quiesced_swap(*exp->in, [&] {
        exp->in->set_policy(policy);
        exp->handler->apply_policy(policy);
    });
    std::lock_guard lk(mu_);
    exp->policy = policy;
    return pause;
}

core::TransmissionPolicy
RemoteBridge::export_policy(const std::string& route) const {
    std::lock_guard lk(mu_);
    auto it = exports_.find(route);
    if (it == exports_.end()) {
        throw BridgeError("route '" + route + "' is not exported");
    }
    return it->second.policy;
}

void RemoteBridge::import_route(const std::string& route,
                                core::InPortBase& local_in, int priority) {
    if (started_.load()) {
        throw BridgeError("cannot add routes after start()");
    }
    std::lock_guard lk(mu_);
    if (imports_.count(route) != 0) {
        throw BridgeError("route '" + route + "' already imported");
    }
    const Serializer& serializer =
        SerializerRegistry::global().find(local_in.type());
    core::OutPortBase& out = component_->add_out_port_erased(
        "imp" + std::to_string(next_port_id_++) + ":" + route, local_in.type(),
        local_in.type_name());
    app_->connect(out, local_in);
    // Every message this pool hands out is completely overwritten by the
    // in-place decode before any handler sees it, so the release-time
    // scrub (a full-object write per message) buys nothing here.
    out.pool()->set_scrub_on_release(false);
    ImportRoute r;
    r.out = &out;
    r.decode_fn = serializer.decode_fn;
    r.decode_ctx = serializer.decode_ctx;
    r.decode_state = serializer.state;
    // Legacy baseline keeps the seed's doubly-erased std::function shape.
    std::function<void(void*, cdr::InputStream&)> inner =
        [fn = serializer.decode_fn, ctx = serializer.decode_ctx](
            void* msg, cdr::InputStream& in) { fn(ctx, msg, in); };
    r.legacy_decode = [inner = std::move(inner)](void* msg,
                                                 cdr::InputStream& in) {
        inner(msg, in);
    };
    r.priority = priority;
    imports_.emplace(route, std::move(r));
}

void RemoteBridge::start() {
    if (started_.exchange(true)) return;
    // Fixed-size id cache, allocated before any reader exists so the hot
    // path never grows it. Ids above the bound just take the map path.
    id_cache_.reset(64);
    const std::size_t lanes = wire_->lane_count();
    if (options_.reader_model == ReaderModel::kReactor &&
        wire_->lane(0).reactor_hook() != nullptr) {
        reactor_ = options_.reactor != nullptr ? options_.reactor
                                               : &net::Reactor::shared();
        // Each lane registers individually, pinned to the reactor loop of
        // its band: lane i = band i (offset by reactor_band when the
        // caller reserved a loop range), so an urgent lane never shares a
        // loop thread with a bulk lane. All lanes share handle_frame —
        // routes multiplex across lanes, route-id cache included.
        reactor_wires_.reserve(lanes);
        for (std::size_t i = 0; i < lanes; ++i) {
            const int band =
                options_.reactor_band >= 0
                    ? options_.reactor_band + static_cast<int>(i)
                    : (lanes > 1 ? static_cast<int>(i) : -1);
            net::Reactor::ClosedHandler on_closed;
            if (lanes > 1) {
                // A lane dying under a live group is a counted failover
                // event on the receive side, not a route teardown.
                on_closed = [this] {
                    lanes_down_.fetch_add(1, std::memory_order_relaxed);
                };
            }
            reactor_wires_.push_back(reactor_->register_wire(
                wire_->lane(i),
                [this](net::FrameBuffer frame) {
                    // In-place decode on the resident buffer; the pooled
                    // storage recycles when `frame` dies on return.
                    handle_frame(frame.data(), frame.size());
                },
                std::move(on_closed), band));
        }
        reactor_attached_ = true;
        return;
    }
    readers_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
        const std::string suffix =
            lanes > 1 ? "-reader" + std::to_string(i) : "-reader";
        readers_.push_back(std::make_unique<rt::RtThread>(
            name_ + suffix, rt::Priority{}, [this, i] { reader_loop(i); }));
    }
}

void RemoteBridge::reader_loop(std::size_t lane) {
    net::Transport& wire = wire_->lane(lane);
    for (;;) {
        std::optional<net::FrameBuffer> frame;
        try {
            frame = wire.recv_frame();
        } catch (const std::exception&) {
            if (wire_->lane_count() > 1) {
                lanes_down_.fetch_add(1, std::memory_order_relaxed);
            }
            return;
        }
        if (!frame.has_value()) return;
        // Decode happens in place on the resident receive buffer; the
        // buffer recycles into the pool when `frame` dies at loop bottom.
        handle_frame(frame->data(), frame->size());
    }
}

void RemoteBridge::handle_frame(const std::uint8_t* frame, std::size_t size) {
    if (options_.legacy_wire_path) {
        handle_frame_legacy(frame, size);
        return;
    }
    received_.fetch_add(1, std::memory_order_relaxed);
    try {
        const cdr::DecodedRequestView req = cdr::decode_request_view(frame, size);
        if (req.header.object_key != kBridgeObjectKey) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Routes are frozen at start(), so imports_ needs no lock here.
        // Repeat traffic resolves through the lock-free request-id cache
        // (array index + one name check — ids are peer-assigned and
        // untrusted; see route_cache.hpp for why concurrent readers are
        // safe); the map — found by string_view thanks to std::less<>, no
        // temporary std::string — is only walked for untagged or
        // first-seen ids.
        const std::uint32_t id = req.header.request_id;
        const ImportRoute* found = id_cache_.lookup(id, req.header.operation);
        if (found == nullptr) {
            auto it = imports_.find(req.header.operation);
            if (it == imports_.end()) {
                dropped_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            found = &it->second;
            if (id != 0) id_cache_.publish(id, found, it->first);
        }
        const ImportRoute& route = *found;
        cdr::InputStream body(req.payload, req.payload_len, req.byte_order);
        const auto carried_priority = static_cast<int>(body.read_ulong());
        void* msg = route.out->get_message_raw();
        try {
            route.decode_fn(route.decode_ctx, msg, body);
        } catch (...) {
            route.out->pool()->release_raw(msg);
            throw;
        }
        // Stitch: a trace trailer on the frame re-installs the sender's
        // context around the local fan-out, so both processes' hops share
        // one trace id. The no-trailer path is one flag test on the header.
        std::uint64_t trace_id = 0;
        std::uint32_t span_id = 0;
        if (cdr::read_trace_trailer(frame, size, trace_id, span_id)) {
            obs::FlightRecorder::emit(obs::EventType::kSpanRecv, trace_id,
                                      span_id);
        }
        const obs::ScopedTraceContext trace_scope(
            obs::TraceContext{trace_id, span_id});
        route.out->send_raw(msg, route.priority >= 0 ? route.priority
                                                     : carried_priority);
    } catch (const std::exception& e) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "[compadres] bridge %s dropped a frame: %s\n",
                     name_.c_str(), e.what());
    }
}

/// Pre-pool receive path, kept byte-for-byte faithful to the seed as the
/// bench baseline: header strings copied out of the frame (decode_request
/// materializes std::strings), std::function dispatch through the route's
/// Serializer, and the registry map behind the route mutex.
void RemoteBridge::handle_frame_legacy(const std::uint8_t* frame,
                                       std::size_t size) {
    received_.fetch_add(1, std::memory_order_relaxed);
    try {
        const cdr::DecodedRequest req = cdr::decode_request(frame, size);
        if (req.header.object_key != kBridgeObjectKey) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        const ImportRoute* route = nullptr;
        {
            std::lock_guard lk(mu_);
            auto it = imports_.find(req.header.operation);
            if (it == imports_.end()) {
                dropped_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            route = &it->second;
        }
        cdr::InputStream body(req.payload, req.payload_len);
        const auto carried_priority = static_cast<int>(body.read_ulong());
        void* msg = route->out->get_message_raw();
        try {
            route->legacy_decode(msg, body);
        } catch (...) {
            route->out->pool()->release_raw(msg);
            throw;
        }
        route->out->send_raw(msg, route->priority >= 0 ? route->priority
                                                       : carried_priority);
    } catch (const std::exception& e) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "[compadres] bridge %s dropped a frame: %s\n",
                     name_.c_str(), e.what());
    }
}

void RemoteBridge::shutdown() {
    if (stopped_.exchange(true)) return;
    // Deterministic teardown order: (1) deregister from the reactor —
    // this flushes the coalescing intake on the loop thread before the
    // descriptor leaves epoll, so no frame handler runs past this line;
    // (2) close the wire, which drops-and-counts anything still unsent;
    // (3) join the blocking reader, if this bridge ran one; (4) retire
    // the counter source so trace_report can never touch a dead wire.
    if (reactor_attached_) {
        for (const std::uint64_t id : reactor_wires_) {
            reactor_->deregister_wire(id);
        }
        reactor_attached_ = false;
    }
    if (wire_ != nullptr) wire_->close();
    for (auto& reader : readers_) {
        if (reader != nullptr) reader->join();
    }
    if (counter_token_ != 0) {
        app_->remove_counter_source(counter_token_);
        counter_token_ = 0;
    }
}

std::function<std::uint64_t(const core::RecomposeRepolicy&)>
recompose_applier(RemoteBridge& bridge) {
    return [&bridge](const core::RecomposeRepolicy& r) {
        return bridge.repolicy_route(r.route, r.to);
    };
}

} // namespace compadres::remote
