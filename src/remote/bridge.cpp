#include "remote/bridge.hpp"

#include "cdr/giop.hpp"

#include <cstdio>

namespace compadres::remote {

namespace {
constexpr const char* kBridgeObjectKey = "compadres.bridge";
} // namespace

/// Type-erased handler on an export route's In port: serialize and ship.
class RemoteBridge::ExportHandler final : public core::MessageHandlerBase {
public:
    ExportHandler(RemoteBridge& bridge, const Serializer& serializer,
                  std::string route, int priority)
        : bridge_(&bridge), serializer_(&serializer), route_(std::move(route)),
          priority_(priority) {}

    void process_raw(void* msg, core::Smm&) override {
        cdr::OutputStream body;
        body.write_ulong(static_cast<std::uint32_t>(priority_));
        serializer_->encode(msg, body);

        cdr::RequestHeader header;
        header.request_id = 0;
        header.response_expected = false;
        header.object_key = kBridgeObjectKey;
        header.operation = route_;
        bridge_->wire_->send_frame(cdr::encode_request(
            header, body.buffer().data(), body.buffer().size()));
        bridge_->sent_.fetch_add(1);
    }

private:
    RemoteBridge* bridge_;
    const Serializer* serializer_;
    std::string route_;
    int priority_;
};

RemoteBridge::RemoteBridge(core::Application& app,
                           std::unique_ptr<net::Transport> wire,
                           std::string name)
    : app_(&app), name_(std::move(name)), wire_(std::move(wire)) {
    register_builtin_serializers();
    component_ = &app_->create_immortal<core::Component>(name_);
}

RemoteBridge::~RemoteBridge() { shutdown(); }

void RemoteBridge::export_route(core::OutPortBase& local_out,
                                const std::string& route) {
    if (started_.load()) {
        throw BridgeError("cannot add routes after start()");
    }
    const Serializer& serializer =
        SerializerRegistry::global().find(local_out.type());
    // A sync In port on the bridge component: the sending component's
    // thread serializes and writes the frame (natural backpressure).
    core::InPortConfig cfg;
    cfg.buffer_size = 16;
    cfg.min_threads = cfg.max_threads = 0;
    auto* handler = component_->region().make<ExportHandler>(
        *this, serializer, route, local_out.default_priority());
    core::InPortBase& in = component_->add_in_port_erased(
        "exp" + std::to_string(next_port_id_++) + ":" + route,
        local_out.type(), local_out.type_name(), cfg, *handler);
    app_->connect(local_out, in);
}

void RemoteBridge::import_route(const std::string& route,
                                core::InPortBase& local_in, int priority) {
    if (started_.load()) {
        throw BridgeError("cannot add routes after start()");
    }
    std::lock_guard lk(mu_);
    if (imports_.count(route) != 0) {
        throw BridgeError("route '" + route + "' already imported");
    }
    const Serializer& serializer =
        SerializerRegistry::global().find(local_in.type());
    core::OutPortBase& out = component_->add_out_port_erased(
        "imp" + std::to_string(next_port_id_++) + ":" + route, local_in.type(),
        local_in.type_name());
    app_->connect(out, local_in);
    imports_[route] = ImportRoute{&out, &serializer, priority};
}

void RemoteBridge::start() {
    if (started_.exchange(true)) return;
    reader_ = std::make_unique<rt::RtThread>(name_ + "-reader", rt::Priority{},
                                             [this] { reader_loop(); });
}

void RemoteBridge::reader_loop() {
    for (;;) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
            frame = wire_->recv_frame();
        } catch (const std::exception&) {
            return;
        }
        if (!frame.has_value()) return;
        handle_frame(frame->data(), frame->size());
    }
}

void RemoteBridge::handle_frame(const std::uint8_t* frame, std::size_t size) {
    received_.fetch_add(1);
    try {
        const cdr::DecodedRequest req = cdr::decode_request(frame, size);
        if (req.header.object_key != kBridgeObjectKey) {
            dropped_.fetch_add(1);
            return;
        }
        ImportRoute route;
        {
            std::lock_guard lk(mu_);
            auto it = imports_.find(req.header.operation);
            if (it == imports_.end()) {
                dropped_.fetch_add(1);
                return;
            }
            route = it->second;
        }
        cdr::InputStream body(req.payload, req.payload_len);
        const auto carried_priority = static_cast<int>(body.read_ulong());
        void* msg = route.out->get_message_raw();
        try {
            route.serializer->decode(msg, body);
        } catch (...) {
            route.out->pool()->release_raw(msg);
            throw;
        }
        route.out->send_raw(msg, route.priority >= 0 ? route.priority
                                                     : carried_priority);
    } catch (const std::exception& e) {
        dropped_.fetch_add(1);
        std::fprintf(stderr, "[compadres] bridge %s dropped a frame: %s\n",
                     name_.c_str(), e.what());
    }
}

void RemoteBridge::shutdown() {
    if (stopped_.exchange(true)) return;
    if (wire_ != nullptr) wire_->close();
    if (reader_ != nullptr) reader_->join();
}

} // namespace compadres::remote
