// Request-id route cache, safe for concurrent readers.
//
// The sending bridge stamps each export route's small integer id into the
// GIOP request_id field; the receiving side resolves repeat ids with an
// array index and one name check instead of a route-map lookup. The cache
// was originally touched by exactly one reader thread per wire; under the
// epoll reactor (net/reactor.hpp) frames for one bridge can be handled by
// a pooled loop thread while another thread (a second wire, a test, a
// late thread-per-wire reader) resolves the same cache, so slots are
// published atomically.
//
// Memory-order argument:
//   * A slot holds an atomic pointer to an immutable Entry. publish()
//     fully constructs the Entry (route pointer + name view) *before* the
//     release store of the slot pointer; lookup()'s acquire load therefore
//     synchronizes-with the store, and every reader that observes the
//     pointer also observes the Entry's fields (release/acquire pairing —
//     no reader can see a half-written entry).
//   * Entries are write-once: the slot transitions nullptr -> entry via
//     compare_exchange and never changes again, so there is no ABA and no
//     reclamation while readers run. Entries are freed only by
//     reset()/destruction, which the owner calls strictly before or after
//     the reader threads exist.
//   * Ids are peer-assigned and untrusted, hence the name check in
//     lookup(): a stale or hostile id that aliases a different route fails
//     the compare and falls back to the map. The referenced name storage
//     (the import map's keys) is frozen before readers start.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace compadres::remote {

template <typename Route>
class RouteIdCache {
public:
    RouteIdCache() = default;
    ~RouteIdCache() { reset(0); }

    RouteIdCache(const RouteIdCache&) = delete;
    RouteIdCache& operator=(const RouteIdCache&) = delete;

    /// Size the slot array (ids >= `slots` always take the slow path) and
    /// free previous entries. NOT safe concurrently with lookup/publish —
    /// call before readers start or after they stop.
    void reset(std::size_t slots) {
        for (auto& slot : slots_) {
            delete slot.load(std::memory_order_relaxed);
        }
        slots_.clear();
        if (slots > 0) {
            slots_ = std::vector<std::atomic<const Entry*>>(slots);
        }
    }

    /// The route published for `id`, or nullptr when the id is unknown,
    /// out of range, or names a different operation. Wait-free.
    const Route* lookup(std::uint32_t id, std::string_view operation) const {
        if (id >= slots_.size()) return nullptr;
        const Entry* entry = slots_[id].load(std::memory_order_acquire);
        if (entry == nullptr || entry->name != operation) return nullptr;
        return entry->route;
    }

    /// Record `id` -> `route` (first writer wins; later publishes for the
    /// same id are dropped, keeping entries immutable). `name` must
    /// outlive the cache — it is the map key the route lives under.
    void publish(std::uint32_t id, const Route* route, std::string_view name) {
        if (id >= slots_.size()) return;
        const Entry* expected = nullptr;
        auto* fresh = new Entry{route, name};
        if (!slots_[id].compare_exchange_strong(expected, fresh,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
            delete fresh; // lost the race (or a stale id re-use): keep first
        }
    }

    std::size_t capacity() const noexcept { return slots_.size(); }

private:
    struct Entry {
        const Route* route;
        std::string_view name;
    };

    std::vector<std::atomic<const Entry*>> slots_;
};

} // namespace compadres::remote
