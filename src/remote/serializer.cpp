#include "remote/serializer.hpp"

#include "core/messages.hpp"

namespace compadres::remote {

SerializerRegistry& SerializerRegistry::global() {
    static SerializerRegistry instance;
    return instance;
}

void SerializerRegistry::add(const Serializer& serializer) {
    by_type_.insert_or_assign(serializer.type, serializer);
}

bool SerializerRegistry::has(std::type_index type) const {
    return by_type_.count(type) != 0;
}

const Serializer& SerializerRegistry::find(std::type_index type) const {
    auto it = by_type_.find(type);
    if (it == by_type_.end()) {
        throw SerializationError(
            "no serializer registered for message type (typeid " +
            std::string(type.name()) + ")");
    }
    return it->second;
}

const Serializer* SerializerRegistry::find_by_name(
    const std::string& type_name) const noexcept {
    for (const auto& [type, s] : by_type_) {
        if (s.type_name == type_name) return &s;
    }
    return nullptr;
}

namespace {

// OctetSeq: ship only the filled prefix, not the whole 4 KiB buffer.
// Plain functions so the codec registers as a stateless fn pointer.
void encode_octet_seq(const core::OctetSeq& msg, cdr::OutputStream& out) {
    out.write_octet_seq(msg.data.data(), msg.length);
}

void decode_octet_seq(core::OctetSeq& msg, cdr::InputStream& in) {
    const auto [data, len] = in.read_octet_seq_view();
    if (len > core::OctetSeq::kCapacity) {
        throw SerializationError("OctetSeq payload exceeds capacity");
    }
    msg.assign(data, len);
}

} // namespace

void register_builtin_serializers() {
    auto& reg = SerializerRegistry::global();
    reg.register_pod<core::MyInteger>("MyInteger");
    reg.register_pod<core::TextMessage>("String");
    reg.register_pod<core::SensorSample>("SensorSample");
    reg.register_custom_fn<core::OctetSeq>("OctetSeq", &encode_octet_seq,
                                           &decode_octet_seq);
}

} // namespace compadres::remote
