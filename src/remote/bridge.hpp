// RemoteBridge — transparent remote port connections.
//
// Paper §5 (future work): "code generation for transparently handling
// remote communication over a network." A RemoteBridge pairs two
// applications (usually on different hosts) over one frame transport:
//
//   host A                                   host B
//   sensor.out ──connect──▶ [bridge:export] ~~~wire~~~ [bridge:import] ──▶ fusion.in
//
// Each side owns an immortal "bridge" component inside its application.
// Exported routes get a type-erased In port whose handler serializes the
// message (via the SerializerRegistry) and ships a frame; imported routes
// get a type-erased Out port that the reader thread feeds from incoming
// frames. Both directions can share one wire. Components on either side
// are completely unaware of the network, exactly as the paper envisioned.
//
// Wire format: GIOP Request frames (interoperable with the repository's
// TCP framing): object_key "compadres.bridge", operation = route name,
// response_expected = false, payload = CDR [ulong priority, encoded msg].
#pragma once

#include "core/application.hpp"
#include "net/transport.hpp"
#include "remote/serializer.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <map>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace compadres::remote {

class BridgeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct BridgeOptions {
    /// Route frames through the pre-pool wire path: fresh buffers and
    /// header-string copies per message, payload copied before decode.
    /// Exists so bench/remote_roundtrip can measure the fast path against
    /// the old allocation profile in the same run. Wire-compatible with
    /// the fast path (the frames are byte-identical).
    bool legacy_wire_path = false;
};

class RemoteBridge {
public:
    /// Creates the bridge component inside `app` (immortal memory) and
    /// adopts the wire. Call export_route/import_route, then start().
    RemoteBridge(core::Application& app, std::unique_ptr<net::Transport> wire,
                 std::string name = "RemoteBridge", BridgeOptions options = {});
    ~RemoteBridge();

    RemoteBridge(const RemoteBridge&) = delete;
    RemoteBridge& operator=(const RemoteBridge&) = delete;

    /// Ship everything `local_out` sends to the peer under `route`.
    /// The message type must have a registered serializer.
    void export_route(core::OutPortBase& local_out, const std::string& route);

    /// Deliver frames arriving under `route` into `local_in`. Messages are
    /// drawn from the connection's pool and sent at `priority` (or, when
    /// priority < 0, at the priority carried in the frame).
    void import_route(const std::string& route, core::InPortBase& local_in,
                      int priority = -1);

    /// Spawn the reader thread. Routes may not be added after start().
    void start();

    /// Close the wire and join the reader. Idempotent.
    void shutdown();

    std::uint64_t frames_sent() const noexcept { return sent_.load(); }
    std::uint64_t frames_received() const noexcept { return received_.load(); }
    /// Frames dropped anywhere between send and delivery: unknown route,
    /// decode failure, or frames the transport accepted but dropped unsent
    /// (a coalescer queue discarded at close, a batch that failed
    /// mid-write).
    std::uint64_t frames_dropped() const noexcept {
        std::uint64_t n = dropped_.load();
        if (wire_ != nullptr) n += wire_->stats().frames_dropped;
        return n;
    }

private:
    struct ImportRoute {
        core::OutPortBase* out = nullptr;
        /// Codec resolved once at import_route: dispatching a frame is a
        /// plain indirect call, no registry lookup and no virtual hop.
        Serializer::DecodeFn decode_fn = nullptr;
        const void* decode_ctx = nullptr;
        std::shared_ptr<const void> decode_state; ///< keepalive for ctx
        /// Pre-change dispatch shape (nested std::function erasure) so the
        /// legacy_wire_path baseline pays what the seed paid per call.
        std::function<void(void*, cdr::InputStream&)> legacy_decode;
        int priority = -1;
    };

    class ExportHandler;

    /// Request-id route cache. The peer stamps each export route's id into
    /// the GIOP request_id field (legacy frames leave it 0); after the
    /// first frame the reader resolves a repeat id with an array index and
    /// one name check instead of a map lookup. Touched by the reader
    /// thread only, populated lazily from imports_ (whose map keys give
    /// the entries stable string_view names).
    struct IdCacheEntry {
        const ImportRoute* route = nullptr;
        std::string_view name;
    };

    void reader_loop();
    void handle_frame(const std::uint8_t* frame, std::size_t size);
    void handle_frame_legacy(const std::uint8_t* frame, std::size_t size);

    core::Application* app_;
    std::string name_;
    BridgeOptions options_;
    core::Component* component_ = nullptr; // lives in the app's immortal
    std::unique_ptr<net::Transport> wire_;
    std::mutex mu_; ///< guards imports_ before start(); frozen after
    std::map<std::string, ImportRoute, std::less<>> imports_;
    std::vector<IdCacheEntry> id_cache_; ///< sized at start(); never grows
    std::uint32_t next_export_id_ = 0;   ///< ids start at 1; 0 = untagged
    std::unique_ptr<rt::RtThread> reader_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> dropped_{0};
    int next_port_id_ = 0;
};

} // namespace compadres::remote
