// RemoteBridge — transparent remote port connections.
//
// Paper §5 (future work): "code generation for transparently handling
// remote communication over a network." A RemoteBridge pairs two
// applications (usually on different hosts) over one frame transport:
//
//   host A                                   host B
//   sensor.out ──connect──▶ [bridge:export] ~~~wire~~~ [bridge:import] ──▶ fusion.in
//
// Each side owns an immortal "bridge" component inside its application.
// Exported routes get a type-erased In port whose handler serializes the
// message (via the SerializerRegistry) and ships a frame; imported routes
// get a type-erased Out port that the reader thread feeds from incoming
// frames. Both directions can share one wire. Components on either side
// are completely unaware of the network, exactly as the paper envisioned.
//
// Wire format: GIOP Request frames (interoperable with the repository's
// TCP framing): object_key "compadres.bridge", operation = route name,
// response_expected = false, payload = CDR [ulong priority, encoded msg].
#pragma once

#include "core/application.hpp"
#include "core/recompose.hpp"
#include "core/transmission_policy.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "remote/route_cache.hpp"
#include "remote/serializer.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <map>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace compadres::remote {

class BridgeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// How inbound frames reach handle_frame.
enum class ReaderModel : std::uint8_t {
    /// One blocking reader thread per wire — a stack, a kernel thread,
    /// and scheduler churn per connection. Kept selectable as the
    /// same-run baseline (mirroring the legacy_wire_path toggle).
    kThreadPerWire,
    /// The wire's descriptor joins the shared epoll reactor pool
    /// (net/reactor.hpp): a bounded set of loop threads serves every
    /// wire. Transports without a pollable descriptor (the in-process
    /// loopback) silently fall back to kThreadPerWire.
    kReactor,
};

struct BridgeOptions {
    /// Route frames through the pre-pool wire path: fresh buffers and
    /// header-string copies per message, payload copied before decode.
    /// Exists so bench/remote_roundtrip can measure the fast path against
    /// the old allocation profile in the same run. Wire-compatible with
    /// the fast path (the frames are byte-identical).
    bool legacy_wire_path = false;
    ReaderModel reader_model = ReaderModel::kReactor;
    /// Reactor to register with; nullptr uses net::Reactor::shared().
    net::Reactor* reactor = nullptr;
    /// Priority band for loop assignment (band % threads); -1 round-robin.
    int reactor_band = -1;
};

class RemoteBridge {
public:
    /// Creates the bridge component inside `app` (immortal memory) and
    /// adopts the wire. Call export_route/import_route, then start().
    RemoteBridge(core::Application& app, std::unique_ptr<net::Transport> wire,
                 std::string name = "RemoteBridge", BridgeOptions options = {});
    ~RemoteBridge();

    RemoteBridge(const RemoteBridge&) = delete;
    RemoteBridge& operator=(const RemoteBridge&) = delete;

    /// Ship everything `local_out` sends to the peer under `route`.
    /// The message type must have a registered serializer. The route's
    /// TransmissionPolicy drives every transmission knob at once:
    ///   * overflow — the export In port's admission policy (block the
    ///     sender vs ring-overwrite the oldest queued message);
    ///   * band — the priority-banded lane the route's frames ride when
    ///     the wire is a net::LaneGroup (stamped once into the route's
    ///     header template); band < 0 derives it from the port's default
    ///     priority via net::LanePolicy on a multi-lane wire, and leaves
    ///     single-wire frames byte-identical to stock GIOP;
    ///   * coalesce — the carrying lane's write batching.
    void export_route(core::OutPortBase& local_out, const std::string& route,
                      core::TransmissionPolicy policy = {});

    /// Deliver frames arriving under `route` into `local_in`. Messages are
    /// drawn from the connection's pool and sent at `priority` (or, when
    /// priority < 0, at the priority carried in the frame).
    void import_route(const std::string& route, core::InPortBase& local_in,
                      int priority = -1);

    /// Start receiving: register with the reactor (ReaderModel::kReactor
    /// on a reactor-capable wire) or spawn the blocking reader thread.
    /// Routes may not be added after start().
    void start();

    /// Swap an exported route's TransmissionPolicy on the RUNNING bridge —
    /// the one route mutation allowed after start(). The export In port's
    /// credit window closes, in-flight sends drain, the policy (overflow
    /// admission, header-template band, lane pool, lane coalescing) swaps
    /// atomically, and the window reopens: senders stall for the pause,
    /// no frame is dropped or reordered. Returns the quiesce→resume pause
    /// in nanoseconds. Throws BridgeError for unknown routes or bands
    /// beyond the wire limit.
    std::uint64_t repolicy_route(const std::string& route,
                                 core::TransmissionPolicy policy);

    /// An exported route's current policy (throws for unknown routes).
    core::TransmissionPolicy export_policy(const std::string& route) const;

    /// True when frames are delivered by a reactor loop rather than a
    /// dedicated reader thread (resolved at start()).
    bool using_reactor() const noexcept { return reactor_attached_; }

    /// Close the wire and join the reader. Idempotent.
    void shutdown();

    std::uint64_t frames_sent() const noexcept { return sent_.load(); }
    std::uint64_t frames_received() const noexcept { return received_.load(); }
    /// Frames dropped anywhere between send and delivery: unknown route,
    /// decode failure, or frames the transport accepted but dropped unsent
    /// (a coalescer queue discarded at close, a batch that failed
    /// mid-write).
    std::uint64_t frames_dropped() const noexcept {
        std::uint64_t n = dropped_.load();
        if (wire_ != nullptr) n += wire_->stats().frames_dropped;
        return n;
    }

private:
    struct ImportRoute {
        core::OutPortBase* out = nullptr;
        /// Codec resolved once at import_route: dispatching a frame is a
        /// plain indirect call, no registry lookup and no virtual hop.
        Serializer::DecodeFn decode_fn = nullptr;
        const void* decode_ctx = nullptr;
        std::shared_ptr<const void> decode_state; ///< keepalive for ctx
        /// Pre-change dispatch shape (nested std::function erasure) so the
        /// legacy_wire_path baseline pays what the seed paid per call.
        std::function<void(void*, cdr::InputStream&)> legacy_decode;
        int priority = -1;
    };

    class ExportHandler;

    /// Live registry of exported routes — the repolicy seam. Map nodes are
    /// stable, so repolicy_route can work on a pointer outside mu_.
    struct ExportRoute {
        core::InPortBase* in = nullptr;
        ExportHandler* handler = nullptr; ///< lives in immortal memory
        core::TransmissionPolicy policy;
    };

    void reader_loop(std::size_t lane);
    void handle_frame(const std::uint8_t* frame, std::size_t size);
    void handle_frame_legacy(const std::uint8_t* frame, std::size_t size);

    core::Application* app_;
    std::string name_;
    BridgeOptions options_;
    core::Component* component_ = nullptr; // lives in the app's immortal
    std::unique_ptr<net::Transport> wire_;
    mutable std::mutex mu_; ///< guards imports_ (frozen after start()) and
                            ///< exports_ (mutable policy, stable nodes)
    std::map<std::string, ImportRoute, std::less<>> imports_;
    std::map<std::string, ExportRoute, std::less<>> exports_;
    /// Request-id route cache, sized at start(). The peer stamps each
    /// export route's id into the GIOP request_id field (legacy frames
    /// leave it 0); repeat traffic resolves with an array index and one
    /// name check instead of a map lookup. Lock-free publish/lookup so
    /// reactor loop threads and reader threads can share it — see
    /// remote/route_cache.hpp for the memory-order argument.
    RouteIdCache<ImportRoute> id_cache_;
    std::uint32_t next_export_id_ = 0; ///< ids start at 1; 0 = untagged
    /// One blocking reader per lane (kThreadPerWire); one entry on a
    /// plain single-wire transport.
    std::vector<std::unique_ptr<rt::RtThread>> readers_;
    net::Reactor* reactor_ = nullptr;  ///< resolved at start()
    /// Reactor wire ids, one per lane, each pinned to the loop of its
    /// band so urgent lanes never share a loop thread with bulk lanes.
    std::vector<std::uint64_t> reactor_wires_;
    bool reactor_attached_ = false;
    std::uint64_t counter_token_ = 0;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> dropped_{0};
    /// Lanes the reactor closed on EOF/error while the group stayed up —
    /// the counted failover event on the receive side.
    std::atomic<std::uint64_t> lanes_down_{0};
    int next_port_id_ = 0;
};

/// Adapter for core::RecomposeOptions::remote_applier: routes a plan's
/// remote repolicies to `bridge.repolicy_route`. A process talking to
/// several peers composes its own dispatcher over the remote_name field;
/// this covers the common one-bridge case.
std::function<std::uint64_t(const core::RecomposeRepolicy&)>
recompose_applier(RemoteBridge& bridge);

} // namespace compadres::remote
