// Message serializers for remote port connections.
//
// The paper lists "code generation for transparently handling remote
// communication over a network" as future work; this module (with
// remote/bridge.hpp) implements it. Because Compadres messages are
// RTSJ-safe flat value types, most serialize as a single octet run;
// types with a fill level (like OctetSeq) register custom codecs so only
// the meaningful bytes travel.
#pragma once

#include "cdr/cdr.hpp"

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeindex>

namespace compadres::remote {

class SerializationError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A registered codec. Dispatch is a plain function-pointer call with an
/// opaque context — no std::function indirection on the wire hot path.
/// Routes resolve a Serializer once at export/import time and then call
/// encode()/decode() per message.
struct Serializer {
    using EncodeFn = void (*)(const void* ctx, const void* msg,
                              cdr::OutputStream& out);
    using DecodeFn = void (*)(const void* ctx, void* msg,
                              cdr::InputStream& in);

    std::string type_name;
    std::type_index type = std::type_index(typeid(void));
    EncodeFn encode_fn = nullptr;
    DecodeFn decode_fn = nullptr;
    const void* encode_ctx = nullptr;
    const void* decode_ctx = nullptr;
    /// Keeps a std::function-backed context (register_custom) alive.
    std::shared_ptr<const void> state;

    void encode(const void* msg, cdr::OutputStream& out) const {
        encode_fn(encode_ctx, msg, out);
    }
    void decode(void* msg, cdr::InputStream& in) const {
        decode_fn(decode_ctx, msg, in);
    }
};

class SerializerRegistry {
public:
    static SerializerRegistry& global();

    /// Whole-struct codec for trivially copyable message types.
    template <typename T>
    void register_pod(const std::string& type_name) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "register_pod requires a trivially copyable message");
        Serializer s;
        s.type_name = type_name;
        s.type = std::type_index(typeid(T));
        s.encode_fn = [](const void*, const void* msg,
                         cdr::OutputStream& out) {
            out.write_octet_seq(static_cast<const std::uint8_t*>(msg),
                                sizeof(T));
        };
        s.decode_fn = [](const void*, void* msg, cdr::InputStream& in) {
            const auto [data, len] = in.read_octet_seq_view();
            if (len != sizeof(T)) {
                throw SerializationError(
                    "POD size mismatch: got " + std::to_string(len) +
                    " bytes, expected " + std::to_string(sizeof(T)));
            }
            std::memcpy(msg, data, len);
        };
        add(s);
    }

    /// Stateless custom codec from plain functions — dispatches with zero
    /// indirection beyond the trampoline (the target pointer rides in ctx).
    template <typename T>
    void register_custom_fn(const std::string& type_name,
                            void (*encode)(const T&, cdr::OutputStream&),
                            void (*decode)(T&, cdr::InputStream&)) {
        Serializer s;
        s.type_name = type_name;
        s.type = std::type_index(typeid(T));
        s.encode_ctx = reinterpret_cast<const void*>(encode);
        s.decode_ctx = reinterpret_cast<const void*>(decode);
        s.encode_fn = [](const void* ctx, const void* msg,
                         cdr::OutputStream& out) {
            reinterpret_cast<void (*)(const T&, cdr::OutputStream&)>(
                const_cast<void*>(ctx))(*static_cast<const T*>(msg), out);
        };
        s.decode_fn = [](const void* ctx, void* msg, cdr::InputStream& in) {
            reinterpret_cast<void (*)(T&, cdr::InputStream&)>(
                const_cast<void*>(ctx))(*static_cast<T*>(msg), in);
        };
        add(s);
    }

    /// Custom codec from arbitrary callables (state rides in a shared
    /// context the Serializer keeps alive). Prefer register_custom_fn for
    /// stateless codecs.
    template <typename T>
    void register_custom(const std::string& type_name,
                         std::function<void(const T&, cdr::OutputStream&)> encode,
                         std::function<void(T&, cdr::InputStream&)> decode) {
        struct State {
            std::function<void(const T&, cdr::OutputStream&)> enc;
            std::function<void(T&, cdr::InputStream&)> dec;
        };
        auto state = std::make_shared<State>(
            State{std::move(encode), std::move(decode)});
        Serializer s;
        s.type_name = type_name;
        s.type = std::type_index(typeid(T));
        s.encode_ctx = state.get();
        s.decode_ctx = state.get();
        s.state = std::shared_ptr<const void>(state, state.get());
        s.encode_fn = [](const void* ctx, const void* msg,
                         cdr::OutputStream& out) {
            static_cast<const State*>(ctx)->enc(*static_cast<const T*>(msg),
                                                out);
        };
        s.decode_fn = [](const void* ctx, void* msg, cdr::InputStream& in) {
            static_cast<const State*>(ctx)->dec(*static_cast<T*>(msg), in);
        };
        add(s);
    }

    bool has(std::type_index type) const;
    const Serializer& find(std::type_index type) const;
    const Serializer* find_by_name(const std::string& type_name) const noexcept;

private:
    void add(const Serializer& serializer);
    std::map<std::type_index, Serializer> by_type_;
};

/// Registers codecs for the built-in message types: POD codecs for
/// MyInteger/TextMessage/SensorSample, a length-aware codec for OctetSeq.
/// Idempotent.
void register_builtin_serializers();

} // namespace compadres::remote
