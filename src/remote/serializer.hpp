// Message serializers for remote port connections.
//
// The paper lists "code generation for transparently handling remote
// communication over a network" as future work; this module (with
// remote/bridge.hpp) implements it. Because Compadres messages are
// RTSJ-safe flat value types, most serialize as a single octet run;
// types with a fill level (like OctetSeq) register custom codecs so only
// the meaningful bytes travel.
#pragma once

#include "cdr/cdr.hpp"

#include <cstring>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeindex>

namespace compadres::remote {

class SerializationError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct Serializer {
    std::string type_name;
    std::type_index type = std::type_index(typeid(void));
    std::function<void(const void* msg, cdr::OutputStream& out)> encode;
    std::function<void(void* msg, cdr::InputStream& in)> decode;
};

class SerializerRegistry {
public:
    static SerializerRegistry& global();

    /// Whole-struct codec for trivially copyable message types.
    template <typename T>
    void register_pod(const std::string& type_name) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "register_pod requires a trivially copyable message");
        Serializer s;
        s.type_name = type_name;
        s.type = std::type_index(typeid(T));
        s.encode = [](const void* msg, cdr::OutputStream& out) {
            out.write_octet_seq(static_cast<const std::uint8_t*>(msg),
                                sizeof(T));
        };
        s.decode = [](void* msg, cdr::InputStream& in) {
            const auto [data, len] = in.read_octet_seq_view();
            if (len != sizeof(T)) {
                throw SerializationError(
                    "POD size mismatch: got " + std::to_string(len) +
                    " bytes, expected " + std::to_string(sizeof(T)));
            }
            std::memcpy(msg, data, len);
        };
        add(s);
    }

    /// Custom codec (used when shipping the whole struct would waste wire
    /// bytes, e.g. partially-filled buffers).
    template <typename T>
    void register_custom(const std::string& type_name,
                         std::function<void(const T&, cdr::OutputStream&)> encode,
                         std::function<void(T&, cdr::InputStream&)> decode) {
        Serializer s;
        s.type_name = type_name;
        s.type = std::type_index(typeid(T));
        s.encode = [encode = std::move(encode)](const void* msg,
                                                cdr::OutputStream& out) {
            encode(*static_cast<const T*>(msg), out);
        };
        s.decode = [decode = std::move(decode)](void* msg,
                                                cdr::InputStream& in) {
            decode(*static_cast<T*>(msg), in);
        };
        add(s);
    }

    bool has(std::type_index type) const;
    const Serializer& find(std::type_index type) const;
    const Serializer* find_by_name(const std::string& type_name) const noexcept;

private:
    void add(const Serializer& serializer);
    std::map<std::type_index, Serializer> by_type_;
};

/// Registers codecs for the built-in message types: POD codecs for
/// MyInteger/TextMessage/SensorSample, a length-aware codec for OctetSeq.
/// Idempotent.
void register_builtin_serializers();

} // namespace compadres::remote
