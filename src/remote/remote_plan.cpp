#include "remote/remote_plan.hpp"

namespace compadres::remote {

void apply_remote_plan(const compiler::AssemblyPlan& plan,
                       const std::string& remote_name,
                       core::Application& app, RemoteBridge& bridge) {
    const compiler::PlannedRemote* remote = nullptr;
    for (const compiler::PlannedRemote& r : plan.remotes) {
        if (r.name == remote_name) {
            remote = &r;
            break;
        }
    }
    if (remote == nullptr) {
        throw BridgeError("plan has no remote named '" + remote_name + "'");
    }
    for (const compiler::PlannedRemoteRoute& r : remote->exports) {
        core::Component* comp = app.find(r.instance);
        if (comp == nullptr) {
            throw BridgeError("remote '" + remote_name + "' export '" +
                              r.route + "': application has no instance '" +
                              r.instance + "'");
        }
        core::OutPortBase* out = comp->find_out_port(r.port);
        if (out == nullptr) {
            throw BridgeError("remote '" + remote_name + "' export '" +
                              r.route + "': instance '" + r.instance +
                              "' has no Out port '" + r.port + "'");
        }
        bridge.export_route(*out, r.route, r.policy);
    }
    for (const compiler::PlannedRemoteRoute& r : remote->imports) {
        core::Component* comp = app.find(r.instance);
        if (comp == nullptr) {
            throw BridgeError("remote '" + remote_name + "' import '" +
                              r.route + "': application has no instance '" +
                              r.instance + "'");
        }
        core::InPortBase* in = comp->find_in_port(r.port);
        if (in == nullptr) {
            throw BridgeError("remote '" + remote_name + "' import '" +
                              r.route + "': instance '" + r.instance +
                              "' has no In port '" + r.port + "'");
        }
        bridge.import_route(r.route, *in);
    }
}

} // namespace compadres::remote
