#include "remote/remote_plan.hpp"

#include "net/tcp.hpp"

namespace compadres::remote {

void apply_remote_plan(const compiler::AssemblyPlan& plan,
                       const std::string& remote_name,
                       core::Application& app, RemoteBridge& bridge) {
    const compiler::PlannedRemote* remote = nullptr;
    for (const compiler::PlannedRemote& r : plan.remotes) {
        if (r.name == remote_name) {
            remote = &r;
            break;
        }
    }
    if (remote == nullptr) {
        throw BridgeError("plan has no remote named '" + remote_name + "'");
    }
    for (const compiler::PlannedRemoteRoute& r : remote->exports) {
        core::Component* comp = app.find(r.instance);
        if (comp == nullptr) {
            throw BridgeError("remote '" + remote_name + "' export '" +
                              r.route + "': application has no instance '" +
                              r.instance + "'");
        }
        core::OutPortBase* out = comp->find_out_port(r.port);
        if (out == nullptr) {
            throw BridgeError("remote '" + remote_name + "' export '" +
                              r.route + "': instance '" + r.instance +
                              "' has no Out port '" + r.port + "'");
        }
        bridge.export_route(*out, r.route, r.policy);
    }
    for (const compiler::PlannedRemoteRoute& r : remote->imports) {
        core::Component* comp = app.find(r.instance);
        if (comp == nullptr) {
            throw BridgeError("remote '" + remote_name + "' import '" +
                              r.route + "': application has no instance '" +
                              r.instance + "'");
        }
        core::InPortBase* in = comp->find_in_port(r.port);
        if (in == nullptr) {
            throw BridgeError("remote '" + remote_name + "' import '" +
                              r.route + "': instance '" + r.instance +
                              "' has no In port '" + r.port + "'");
        }
        bridge.import_route(r.route, *in);
    }
}

PlannedWire connect_planned_wire(const compiler::PlannedRemote& remote,
                                 std::uint16_t port,
                                 const net::ShmOptions& shm_options,
                                 const net::LaneGroupOptions& lane_options) {
    PlannedWire wire;
    if (remote.transport == compiler::RemoteTransport::kShm) {
        // The handshake keeps the TCP connection either way: as the shm
        // control channel on success, as the data path on fallback. The
        // declared band count shapes the segment: one ring+arena pair per
        // band per direction.
        net::ShmOptions opts = shm_options;
        if (remote.bands > 1) opts.bands = remote.bands;
        net::ShmConnectResult r = net::shm_upgrade_connect(
            remote.host, port, opts, lane_options.tcp);
        wire.transport = std::move(r.transport);
        wire.shm = r.shm;
        wire.detail = std::move(r.detail);
        return wire;
    }
    if (remote.bands > 1) {
        net::LaneGroupOptions opts = lane_options;
        opts.bands = remote.bands;
        wire.transport = net::lane_connect(remote.host, port, opts);
        wire.detail = "lane group, " + std::to_string(remote.bands) + " bands";
        return wire;
    }
    wire.transport = net::tcp_connect(remote.host, port, lane_options.tcp);
    wire.detail = "plain tcp";
    return wire;
}

} // namespace compadres::remote
