#include "orb/client_orb.hpp"
#include "orb/server_orb.hpp"

#include "cdr/giop.hpp"
#include "core/registry.hpp"
#include "net/reactor.hpp"
#include "rt/thread.hpp"

#include <atomic>

namespace compadres::orb {

void register_orb_message_types() {
    auto& reg = core::MessageTypeRegistry::global();
    reg.register_type<OrbRequest>("OrbRequest");
    reg.register_type<GiopFrame>("GiopFrame");
}

namespace {

core::InPortConfig single_thread_port(std::size_t buffer = 16) {
    core::InPortConfig cfg;
    cfg.buffer_size = buffer;
    cfg.strategy = core::ThreadpoolStrategy::kDedicated;
    cfg.min_threads = 1;
    cfg.max_threads = 1;
    return cfg;
}

// ---------------------------------------------------------------- client

/// Level-0 (immortal) ORB component: just the Out port the API sends into.
class ClientOrbComponent final : public core::Component {
public:
    explicit ClientOrbComponent(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_out_port<OrbRequest>("toTransport", "OrbRequest");
    }
};

/// Level-2 MessageProcessing: marshals, exchanges, demarshals, completes.
class ClientMessageProcessing final : public core::Component {
public:
    ClientMessageProcessing(const core::ComponentContext& ctx,
                            net::Transport& wire)
        : core::Component(ctx), wire_(&wire) {
        add_in_port<OrbRequest>(
            "request", "OrbRequest", single_thread_port(),
            [this](OrbRequest& msg, core::Smm&) { process(msg); });
    }

private:
    void process(OrbRequest& msg) {
        Completion* completion = msg.completion;
        try {
            if (msg.locate) {
                process_locate(msg, *completion);
                return;
            }
            // Encode straight into pooled storage: headers and payload go
            // through one stream, and the filled buffer ships without a
            // copy (wire-identical to the old encode_request frame).
            cdr::OutputStream out(net::FrameBufferPool::global().acquire_storage(
                cdr::GiopHeader::kSize + 64 + msg.key_len + msg.op_len +
                msg.payload_len));
            const std::size_t len_offset = cdr::begin_request_payload(
                out, msg.request_id, completion != nullptr,
                std::string_view(msg.object_key.data(), msg.key_len),
                std::string_view(msg.operation.data(), msg.op_len));
            out.write_raw(msg.payload.data(), msg.payload_len);
            cdr::finish_payload(out, len_offset);
            wire_->send_frame(
                net::FrameBufferPool::global().adopt(out.take_buffer()));
            if (completion == nullptr) return; // oneway: fire and forget

            const auto reply_frame = wire_->recv_frame();
            if (!reply_frame.has_value()) {
                throw net::TransportError("connection closed awaiting reply");
            }
            const cdr::DecodedReply reply =
                cdr::decode_reply(reply_frame->data(), reply_frame->size());
            if (reply.header.request_id != msg.request_id) {
                throw OrbError("reply correlation mismatch: sent " +
                               std::to_string(msg.request_id) + ", got " +
                               std::to_string(reply.header.request_id));
            }
            completion->complete(
                static_cast<std::uint32_t>(reply.header.status), reply.payload,
                reply.payload_len);
        } catch (const std::exception&) {
            // Surface transport/marshal failures as SYSTEM_EXCEPTION so the
            // invoking thread never blocks forever.
            if (completion != nullptr) {
                completion->complete(
                    static_cast<std::uint32_t>(cdr::ReplyStatus::kSystemException),
                    nullptr, 0);
            }
            throw; // also counted by the dispatcher's error counter
        }
    }

    void process_locate(OrbRequest& msg, Completion& completion) {
        cdr::LocateRequestHeader header;
        header.request_id = msg.request_id;
        header.object_key.assign(msg.object_key.data(), msg.key_len);
        wire_->send_frame(cdr::encode_locate_request(header));
        const auto reply_frame = wire_->recv_frame();
        if (!reply_frame.has_value()) {
            throw net::TransportError("connection closed awaiting LocateReply");
        }
        const cdr::LocateReplyHeader reply =
            cdr::decode_locate_reply(reply_frame->data(), reply_frame->size());
        if (reply.request_id != msg.request_id) {
            throw OrbError("LocateReply correlation mismatch");
        }
        const std::uint8_t here =
            reply.status == cdr::LocateStatus::kObjectHere ? 1 : 0;
        completion.complete(
            static_cast<std::uint32_t>(cdr::ReplyStatus::kNoException), &here, 1);
    }

    net::Transport* wire_;
};

/// Level-1 Transport: owns the wire and relays ORB requests to its child.
class ClientTransportComponent final : public core::Component {
public:
    ClientTransportComponent(const core::ComponentContext& ctx,
                             std::unique_ptr<net::Transport> wire)
        : core::Component(ctx), wire_(std::move(wire)) {
        add_in_port<OrbRequest>(
            "fromOrb", "OrbRequest", single_thread_port(),
            [this](OrbRequest& msg, core::Smm&) {
                // Relay into the child scope: copy into the pool hosted by
                // *this* component's SMM and forward (the paper's regular,
                // non-shadow port path). Only the filled prefixes move.
                auto& out = out_port_t<OrbRequest>("toMp");
                OrbRequest* fwd = out.get_message();
                fwd->copy_from(msg);
                out.send(fwd, out.default_priority());
            });
        add_out_port<OrbRequest>("toMp", "OrbRequest");
    }

    net::Transport& wire() noexcept { return *wire_; }

    ~ClientTransportComponent() override { wire_->close(); }

private:
    std::unique_ptr<net::Transport> wire_;
};

} // namespace

struct ClientOrb::Impl {
    ClientOrbComponent* orb = nullptr;
    ClientTransportComponent* transport = nullptr;
    ClientMessageProcessing* mp = nullptr;
    std::atomic<std::uint32_t> next_request_id{1};
    std::mutex invoke_mu;
    /// Completions abandoned by invoke_within timeouts, kept alive until
    /// the pipeline writes them (a late reply or a transport error); purged
    /// opportunistically at each invoke.
    std::vector<std::shared_ptr<Completion>> abandoned;

    void purge_abandoned() {
        std::erase_if(abandoned, [](const std::shared_ptr<Completion>& c) {
            std::lock_guard lk(c->mu);
            return c->done;
        });
    }
};

ClientOrb::ClientOrb(std::unique_ptr<net::Transport> wire)
    : impl_(std::make_unique<Impl>()) {
    register_orb_message_types();
    core::RtsjAttributes attrs;
    attrs.immortal_size = 8 * 1024 * 1024;
    attrs.scoped_pools = {{1, 512 * 1024, 2}, {2, 512 * 1024, 2}};
    app_ = std::make_unique<core::Application>("compadres-client-orb", attrs);

    impl_->orb = &app_->create_immortal<ClientOrbComponent>("Orb");
    impl_->transport = &app_->create_scoped<ClientTransportComponent>(
        "Transport", *impl_->orb, 1, std::move(wire));
    impl_->mp = &app_->create_scoped<ClientMessageProcessing>(
        "MessageProcessing", *impl_->transport, 2, impl_->transport->wire());

    // Orb -> Transport (internal: parent to child), Transport -> MP.
    app_->connect(*impl_->orb, "toTransport", *impl_->transport, "fromOrb");
    app_->connect(*impl_->transport, "toMp", *impl_->mp, "request");
    app_->start();
}

ClientOrb::~ClientOrb() {
    // Close the wire first: a MessageProcessing worker blocked in
    // recv_frame (e.g. a request the server never answered) must unblock
    // before Application::shutdown joins the dispatcher threads.
    if (impl_ != nullptr && impl_->transport != nullptr) {
        impl_->transport->wire().close();
    }
    if (app_ != nullptr) app_->shutdown();
}

namespace {

void check_payload_size(std::size_t payload_len) {
    if (payload_len > OrbRequest::kPayloadCapacity) {
        throw OrbError("payload exceeds OrbRequest capacity");
    }
}

std::vector<std::uint8_t> take_reply(Completion& completion,
                                     const std::string& object_key,
                                     const std::string& operation) {
    if (completion.status !=
        static_cast<std::uint32_t>(cdr::ReplyStatus::kNoException)) {
        throw OrbError("invocation '" + operation + "' on '" + object_key +
                       "' failed with reply status " +
                       std::to_string(completion.status));
    }
    return std::move(completion.reply);
}

} // namespace

std::vector<std::uint8_t> ClientOrb::invoke(const std::string& object_key,
                                            const std::string& operation,
                                            const std::uint8_t* payload,
                                            std::size_t payload_len,
                                            int priority) {
    check_payload_size(payload_len);
    std::lock_guard invoke_lock(impl_->invoke_mu);
    impl_->purge_abandoned();
    Completion completion;
    auto& out = impl_->orb->out_port_t<OrbRequest>("toTransport");
    OrbRequest* msg = out.get_message();
    msg->request_id = impl_->next_request_id.fetch_add(1);
    msg->set_key(object_key);
    msg->set_op(operation);
    msg->set_payload(payload, payload_len);
    msg->completion = &completion;
    out.send(msg, priority);
    completion.wait();
    return take_reply(completion, object_key, operation);
}

std::vector<std::uint8_t> ClientOrb::invoke_within(
    const std::string& object_key, const std::string& operation,
    const std::uint8_t* payload, std::size_t payload_len,
    std::chrono::milliseconds deadline, int priority) {
    check_payload_size(payload_len);
    std::lock_guard invoke_lock(impl_->invoke_mu);
    impl_->purge_abandoned();
    auto completion = std::make_shared<Completion>();
    auto& out = impl_->orb->out_port_t<OrbRequest>("toTransport");
    OrbRequest* msg = out.get_message();
    msg->request_id = impl_->next_request_id.fetch_add(1);
    msg->set_key(object_key);
    msg->set_op(operation);
    msg->set_payload(payload, payload_len);
    msg->completion = completion.get();
    out.send(msg, priority);
    if (!completion->wait_for(deadline)) {
        // Keep the completion alive for the pipeline's eventual write; the
        // late reply (or transport error) lands harmlessly in it.
        impl_->abandoned.push_back(completion);
        throw OrbTimeout("invocation '" + operation + "' on '" + object_key +
                         "' missed its " + std::to_string(deadline.count()) +
                         " ms deadline");
    }
    return take_reply(*completion, object_key, operation);
}

bool ClientOrb::ping(const std::string& object_key, int priority) {
    std::lock_guard invoke_lock(impl_->invoke_mu);
    impl_->purge_abandoned();
    Completion completion;
    auto& out = impl_->orb->out_port_t<OrbRequest>("toTransport");
    OrbRequest* msg = out.get_message();
    msg->request_id = impl_->next_request_id.fetch_add(1);
    msg->set_key(object_key);
    msg->locate = true;
    msg->completion = &completion;
    out.send(msg, priority);
    completion.wait();
    if (completion.status !=
        static_cast<std::uint32_t>(cdr::ReplyStatus::kNoException)) {
        throw OrbError("ping of '" + object_key + "' failed");
    }
    return !completion.reply.empty() && completion.reply[0] == 1;
}

void ClientOrb::invoke_oneway(const std::string& object_key,
                              const std::string& operation,
                              const std::uint8_t* payload,
                              std::size_t payload_len, int priority) {
    check_payload_size(payload_len);
    std::lock_guard invoke_lock(impl_->invoke_mu);
    impl_->purge_abandoned();
    auto& out = impl_->orb->out_port_t<OrbRequest>("toTransport");
    OrbRequest* msg = out.get_message();
    msg->request_id = impl_->next_request_id.fetch_add(1);
    msg->set_key(object_key);
    msg->set_op(operation);
    msg->set_payload(payload, payload_len);
    msg->completion = nullptr; // oneway
    out.send(msg, priority);
}

// ---------------------------------------------------------------- server

namespace {

/// Level-0 (immortal) ORB component: owns the servant registry.
class ServerOrbComponent final : public core::Component {
public:
    explicit ServerOrbComponent(const core::ComponentContext& ctx)
        : core::Component(ctx) {}

    ServantRegistry& servants() noexcept { return servants_; }

private:
    ServantRegistry servants_;
};

/// Level-1 POA/Acceptor: adopts wires, reads frames, feeds the pipeline.
/// Reactor-capable wires are served by the shared epoll pool (O(1)
/// resident reader threads under fan-in); others get a reader thread.
class PoaAcceptorComponent final : public core::Component {
public:
    PoaAcceptorComponent(const core::ComponentContext& ctx, bool use_reactor)
        : core::Component(ctx), use_reactor_(use_reactor) {
        add_out_port<GiopFrame>("toTransport", "GiopFrame");
    }

    ~PoaAcceptorComponent() override { stop(); }

    void adopt_wire(std::unique_ptr<net::Transport> wire) {
        std::lock_guard lk(mu_);
        if (stopping_) throw OrbError("POA is shut down");
        net::Transport* raw = wire.get();
        wires_.push_back(std::move(wire));
        if (use_reactor_ && raw->reactor_hook() != nullptr) {
            reactor_wires_.push_back(net::Reactor::shared().register_wire(
                *raw, [this, raw](net::FrameBuffer frame) {
                    feed_pipeline(*raw, frame.data(), frame.size());
                }));
            return;
        }
        readers_.push_back(std::make_unique<rt::RtThread>(
            "poa-reader-" + std::to_string(readers_.size()), rt::Priority{},
            [this, raw] { reader_loop(*raw); }));
    }

    void stop() {
        std::vector<std::unique_ptr<rt::RtThread>> readers;
        std::vector<std::uint64_t> reactor_wires;
        {
            std::lock_guard lk(mu_);
            if (stopping_) return;
            stopping_ = true;
            reactor_wires.swap(reactor_wires_);
            readers.swap(readers_);
        }
        // Reactor wires first: deregistration flushes any parked replies
        // on the loop thread and guarantees no frame handler runs past
        // this point, so the close below cannot race a delivery.
        for (const std::uint64_t id : reactor_wires) {
            net::Reactor::shared().deregister_wire(id);
        }
        {
            std::lock_guard lk(mu_);
            for (auto& w : wires_) w->close();
        }
        for (auto& r : readers) r->join();
    }

private:
    /// One inbound frame into the pipeline. False when the pipeline is
    /// shutting down (message pool gone) and the caller should stop.
    bool feed_pipeline(net::Transport& wire, const std::uint8_t* data,
                       std::size_t size) {
        if (size > GiopFrame::kCapacity) {
            return true; // oversized frame: drop (would be MARSHAL error)
        }
        auto& out = out_port_t<GiopFrame>("toTransport");
        GiopFrame* msg = nullptr;
        try {
            msg = out.get_message();
        } catch (const std::exception&) {
            return false; // pipeline shut down under us
        }
        msg->assign(data, size);
        msg->reply_wire = &wire;
        out.send(msg, out.default_priority());
        return true;
    }

    void reader_loop(net::Transport& wire) {
        for (;;) {
            std::optional<net::FrameBuffer> frame;
            try {
                frame = wire.recv_frame();
            } catch (const std::exception&) {
                return; // connection torn down
            }
            if (!frame.has_value()) return;
            if (!feed_pipeline(wire, frame->data(), frame->size())) return;
        }
    }

    std::mutex mu_;
    bool stopping_ = false;
    bool use_reactor_ = true;
    std::vector<std::unique_ptr<net::Transport>> wires_;
    std::vector<std::uint64_t> reactor_wires_;
    std::vector<std::unique_ptr<rt::RtThread>> readers_;
};

/// Level-2 Transport: relays frames into the request-processing scope.
class ServerTransportComponent final : public core::Component {
public:
    explicit ServerTransportComponent(const core::ComponentContext& ctx)
        : core::Component(ctx) {
        add_in_port<GiopFrame>(
            "fromPoa", "GiopFrame", single_thread_port(),
            [this](GiopFrame& msg, core::Smm&) {
                auto& out = out_port_t<GiopFrame>("toRp");
                GiopFrame* fwd = out.get_message();
                fwd->copy_from(msg); // filled prefix only, not 4 KiB
                out.send(fwd, out.default_priority());
            });
        add_out_port<GiopFrame>("toRp", "GiopFrame");
    }
};

/// Level-3 RequestProcessing: demarshal, dispatch, reply.
class RequestProcessingComponent final : public core::Component {
public:
    RequestProcessingComponent(const core::ComponentContext& ctx,
                               ServantRegistry& servants)
        : core::Component(ctx), servants_(&servants) {
        add_in_port<GiopFrame>(
            "request", "GiopFrame", single_thread_port(),
            [this](GiopFrame& msg, core::Smm&) { process(msg); });
    }

private:
    void process(GiopFrame& msg) {
        // Branch on the GIOP message type: LocateRequest probes are
        // answered inline; Requests dispatch to a servant.
        try {
            const cdr::GiopHeader header =
                cdr::decode_header(msg.bytes.data(), msg.length);
            if (header.msg_type == cdr::GiopMsgType::kLocateRequest) {
                const cdr::LocateRequestHeader locate =
                    cdr::decode_locate_request(msg.bytes.data(), msg.length);
                cdr::LocateReplyHeader reply;
                reply.request_id = locate.request_id;
                reply.status = servants_->find(locate.object_key) != nullptr
                                   ? cdr::LocateStatus::kObjectHere
                                   : cdr::LocateStatus::kUnknownObject;
                msg.reply_wire->send_frame(cdr::encode_locate_reply(reply));
                return;
            }
        } catch (const cdr::MarshalError&) {
            return; // unparseable header: nothing sane to reply to
        }
        cdr::ReplyHeader reply_header;
        reply_payload_.clear(); // reused scratch: capacity survives messages
        try {
            // View decode: the request is demarshalled in place on the
            // frame bytes — no header-string or payload copies.
            const cdr::DecodedRequestView req =
                cdr::decode_request_view(msg.bytes.data(), msg.length);
            reply_header.request_id = req.header.request_id;
            const Servant* servant = servants_->find(req.header.object_key);
            if (servant == nullptr) {
                reply_header.status = cdr::ReplyStatus::kSystemException;
            } else {
                op_scratch_.assign(req.header.operation);
                const bool ok = (*servant)(op_scratch_, req.payload,
                                           req.payload_len, reply_payload_);
                reply_header.status = ok ? cdr::ReplyStatus::kNoException
                                         : cdr::ReplyStatus::kUserException;
            }
            if (!req.header.response_expected) return;
        } catch (const cdr::MarshalError&) {
            reply_header.status = cdr::ReplyStatus::kSystemException;
        }
        // Encode the reply into pooled storage and ship it without a copy.
        cdr::OutputStream out(net::FrameBufferPool::global().acquire_storage(
            cdr::GiopHeader::kSize + 16 + reply_payload_.size()));
        const std::size_t len_offset = cdr::begin_reply_payload(
            out, reply_header.request_id, reply_header.status);
        out.write_raw(reply_payload_.data(), reply_payload_.size());
        cdr::finish_payload(out, len_offset);
        msg.reply_wire->send_frame(
            net::FrameBufferPool::global().adopt(out.take_buffer()));
    }

    ServantRegistry* servants_;
    std::string op_scratch_;               ///< reused operation-name buffer
    std::vector<std::uint8_t> reply_payload_; ///< reused reply scratch
};

} // namespace

struct ServerOrb::Impl {
    ServerOrbComponent* orb = nullptr;
    PoaAcceptorComponent* poa = nullptr;
    ServerTransportComponent* transport = nullptr;
    RequestProcessingComponent* rp = nullptr;
};

ServerOrb::ServerOrb(ServerOrbOptions options)
    : impl_(std::make_unique<Impl>()) {
    register_orb_message_types();
    core::RtsjAttributes attrs;
    attrs.immortal_size = 8 * 1024 * 1024;
    attrs.scoped_pools = {{1, 512 * 1024, 2}, {2, 512 * 1024, 2},
                          {3, 512 * 1024, 2}};
    app_ = std::make_unique<core::Application>("compadres-server-orb", attrs);

    impl_->orb = &app_->create_immortal<ServerOrbComponent>("Orb");
    impl_->poa = &app_->create_scoped<PoaAcceptorComponent>(
        "Poa", *impl_->orb, 1, options.use_reactor);
    impl_->transport = &app_->create_scoped<ServerTransportComponent>(
        "ServerTransport", *impl_->poa, 2);
    impl_->rp = &app_->create_scoped<RequestProcessingComponent>(
        "RequestProcessing", *impl_->transport, 3, impl_->orb->servants());

    app_->connect(*impl_->poa, "toTransport", *impl_->transport, "fromPoa");
    app_->connect(*impl_->transport, "toRp", *impl_->rp, "request");
    app_->start();
}

ServerOrb::~ServerOrb() { shutdown(); }

void ServerOrb::register_servant(const std::string& object_key,
                                 Servant servant) {
    impl_->orb->servants().register_servant(object_key, std::move(servant));
}

void ServerOrb::attach(std::unique_ptr<net::Transport> wire) {
    impl_->poa->adopt_wire(std::move(wire));
}

void ServerOrb::shutdown() {
    if (app_ == nullptr || impl_ == nullptr) return;
    impl_->poa->stop();
    app_->shutdown();
}

} // namespace compadres::orb
