// Message types flowing through the ORB component pipelines.
//
// Both are flat, pool-friendly value types. The completion pointer in
// OrbRequest points at a record owned by the blocked caller — the C++
// analogue of a reference into an outer-lived area, which Table 1 permits
// from any scope.
#pragma once

#include "net/transport.hpp"

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

namespace compadres::orb {

/// Filled by the reply path; waited on by the invoking thread.
struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::uint32_t status = 0; ///< cdr::ReplyStatus value
    std::vector<std::uint8_t> reply;

    void complete(std::uint32_t s, const std::uint8_t* data, std::size_t n) {
        {
            std::lock_guard lk(mu);
            status = s;
            reply.assign(data, data + n);
            done = true;
        }
        cv.notify_one();
    }

    void wait() {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return done; });
    }

    /// True if completed within the deadline; false on timeout.
    bool wait_for(std::chrono::milliseconds timeout) {
        std::unique_lock lk(mu);
        return cv.wait_for(lk, timeout, [&] { return done; });
    }
};

/// Client-side pipeline message: ORB -> Transport -> MessageProcessing.
struct OrbRequest {
    static constexpr std::size_t kKeyCapacity = 64;
    static constexpr std::size_t kOpCapacity = 32;
    static constexpr std::size_t kPayloadCapacity = 2048;

    std::uint32_t request_id = 0;
    std::array<char, kKeyCapacity> object_key{};
    std::size_t key_len = 0;
    std::array<char, kOpCapacity> operation{};
    std::size_t op_len = 0;
    std::array<std::uint8_t, kPayloadCapacity> payload{};
    std::size_t payload_len = 0;
    /// Null for oneway requests (no reply expected, nobody waiting).
    Completion* completion = nullptr;
    /// True for a GIOP LocateRequest probe (ping): no payload, the reply
    /// is a LocateReply whose status lands in completion->reply[0].
    bool locate = false;

    void set_key(std::string_view key) {
        key_len = std::min(key.size(), kKeyCapacity);
        std::memcpy(object_key.data(), key.data(), key_len);
    }
    void set_op(std::string_view op) {
        op_len = std::min(op.size(), kOpCapacity);
        std::memcpy(operation.data(), op.data(), op_len);
    }
    void set_payload(const std::uint8_t* data, std::size_t n) {
        payload_len = std::min(n, kPayloadCapacity);
        std::memcpy(payload.data(), data, payload_len);
    }

    /// Relay copy that moves only the filled prefixes, not the full
    /// 2 KiB struct (`*this = other` copies every capacity byte).
    void copy_from(const OrbRequest& other) {
        request_id = other.request_id;
        key_len = other.key_len;
        std::memcpy(object_key.data(), other.object_key.data(), key_len);
        op_len = other.op_len;
        std::memcpy(operation.data(), other.operation.data(), op_len);
        payload_len = other.payload_len;
        std::memcpy(payload.data(), other.payload.data(), payload_len);
        completion = other.completion;
        locate = other.locate;
    }
};

/// Server-side pipeline message: one raw GIOP frame, plus the wire to send
/// the reply on (the reply wire outlives every request in flight).
struct GiopFrame {
    static constexpr std::size_t kCapacity = 4096;
    std::array<std::uint8_t, kCapacity> bytes{};
    std::size_t length = 0;
    net::Transport* reply_wire = nullptr;

    void assign(const std::uint8_t* data, std::size_t n) {
        length = std::min(n, kCapacity);
        std::memcpy(bytes.data(), data, length);
    }

    /// Relay copy of the filled prefix only (`*this = other` would copy
    /// the whole 4 KiB array regardless of frame length).
    void copy_from(const GiopFrame& other) {
        assign(other.bytes.data(), other.length);
        reply_wire = other.reply_wire;
    }
};

/// Registers OrbRequest/GiopFrame in the global MessageTypeRegistry under
/// their CDL names. Idempotent.
void register_orb_message_types();

} // namespace compadres::orb
