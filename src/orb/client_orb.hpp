// Compadres ORB — client side (paper §3.2, Fig. 10, left).
//
// Three-level structure, assembled from Compadres components:
//
//   level 0 (immortal): Orb component — the application-facing API
//   level 1 (scoped):   Transport component — owns the wire
//   level 2 (scoped):   MessageProcessing component — GIOP marshalling,
//                       request/reply exchange on the wire
//
// invoke() pushes an OrbRequest through the component pipeline
// (Orb -> Transport -> MessageProcessing, each hop an internal port into a
// child scope); MessageProcessing marshals the GIOP Request, performs the
// blocking exchange, demarshals the Reply and completes the caller.
#pragma once

#include "core/application.hpp"
#include "net/transport.hpp"
#include "orb/orb_messages.hpp"

#include <memory>
#include <string>
#include <vector>

namespace compadres::orb {

class OrbError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The reply missed its deadline (invoke_within).
class OrbTimeout : public OrbError {
public:
    using OrbError::OrbError;
};

class ClientOrb {
public:
    /// Builds the component structure around an already-connected wire.
    explicit ClientOrb(std::unique_ptr<net::Transport> wire);
    ~ClientOrb();

    ClientOrb(const ClientOrb&) = delete;
    ClientOrb& operator=(const ClientOrb&) = delete;

    /// Synchronous remote invocation. Returns the reply payload; throws
    /// OrbError on user/system exceptions or transport failure.
    /// One invocation is outstanding at a time (invocations serialize), as
    /// in the paper's round-trip measurement.
    std::vector<std::uint8_t> invoke(const std::string& object_key,
                                     const std::string& operation,
                                     const std::uint8_t* payload,
                                     std::size_t payload_len,
                                     int priority = rt::Priority::kDefault);

    /// Bounded-time invocation: throws OrbTimeout if the reply does not
    /// arrive within `deadline` — the RT-CORBA-flavoured variant a DRE
    /// caller with a deadline actually needs. The late reply (if any) is
    /// absorbed safely; the connection stays usable for a server that is
    /// slow, not dead.
    std::vector<std::uint8_t> invoke_within(const std::string& object_key,
                                            const std::string& operation,
                                            const std::uint8_t* payload,
                                            std::size_t payload_len,
                                            std::chrono::milliseconds deadline,
                                            int priority = rt::Priority::kDefault);

    /// Oneway invocation (CORBA semantics: response_expected = false).
    /// Returns once the request is handed to the pipeline; no reply, no
    /// blocking on the server.
    void invoke_oneway(const std::string& object_key,
                       const std::string& operation,
                       const std::uint8_t* payload, std::size_t payload_len,
                       int priority = rt::Priority::kDefault);

    /// GIOP LocateRequest probe: true iff the server hosts `object_key`.
    bool ping(const std::string& object_key,
              int priority = rt::Priority::kDefault);

    /// The underlying application (exposed for tests and benches).
    core::Application& application() noexcept { return *app_; }

private:
    struct Impl;
    std::unique_ptr<core::Application> app_;
    std::unique_ptr<Impl> impl_;
};

} // namespace compadres::orb
