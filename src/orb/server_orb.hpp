// Compadres ORB — server side (paper §3.2, Fig. 10, right).
//
// Four-level structure, assembled from Compadres components:
//
//   level 0 (immortal): Orb component — servant registry, API
//   level 1 (scoped):   POA/Acceptor component — owns connections and their
//                       reader threads, emits one GiopFrame per request
//   level 2 (scoped):   Transport component — per-connection relay
//   level 3 (scoped):   RequestProcessing component — demarshal, dispatch
//                       to the servant, marshal and send the reply
//
// The paper creates Transport/RequestProcessing scopes on demand and
// reclaims them per connection/request; this implementation places them in
// pooled scoped regions reused across requests — the scope-pool
// optimization §2.2 describes (bench/ablation_scopepool quantifies the
// difference against create-on-demand).
#pragma once

#include "core/application.hpp"
#include "net/transport.hpp"
#include "orb/servant.hpp"

#include <memory>

namespace compadres::orb {

struct ServerOrbOptions {
    /// Serve adopted wires from the shared epoll reactor pool
    /// (net/reactor.hpp) instead of spawning one blocking poa-reader
    /// thread per connection — the difference between O(connections)
    /// and O(1) resident reader threads under fan-in. Wires without a
    /// pollable descriptor (the in-process loopback) always fall back
    /// to a per-wire reader thread.
    bool use_reactor = true;
};

class ServerOrb {
public:
    explicit ServerOrb(ServerOrbOptions options = {});
    ~ServerOrb();

    ServerOrb(const ServerOrb&) = delete;
    ServerOrb& operator=(const ServerOrb&) = delete;

    void register_servant(const std::string& object_key, Servant servant);

    /// Adopt a connected wire: its requests feed the POA pipeline (from a
    /// reactor loop or a dedicated reader thread, per ServerOrbOptions);
    /// replies go back on the same wire. May be called for multiple
    /// connections.
    void attach(std::unique_ptr<net::Transport> wire);

    /// Stop reader threads and the component pipeline.
    void shutdown();

    core::Application& application() noexcept { return *app_; }

private:
    struct Impl;
    std::unique_ptr<core::Application> app_;
    std::unique_ptr<Impl> impl_;
};

} // namespace compadres::orb
