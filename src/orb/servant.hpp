// Servant interface shared by the Compadres ORB and the RTZen-style
// baseline, so the Fig. 11 comparison dispatches identical user code.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace compadres::orb {

/// A servant handles one operation invocation: it reads the request
/// payload and fills the reply. Returning false maps to a CORBA user
/// exception in the reply status.
using Servant = std::function<bool(const std::string& operation,
                                   const std::uint8_t* payload,
                                   std::size_t payload_len,
                                   std::vector<std::uint8_t>& reply)>;

/// Object-key -> servant map. Lives in immortal memory conceptually (it is
/// owned by the ORB component and survives for the ORB's lifetime).
class ServantRegistry {
public:
    void register_servant(const std::string& object_key, Servant servant) {
        std::lock_guard lk(mu_);
        servants_[object_key] = std::move(servant);
    }

    /// nullptr if the key is unknown (maps to OBJECT_NOT_EXIST). The
    /// string_view overload looks up a key still sitting in a wire frame
    /// without materializing a std::string (heterogeneous find).
    const Servant* find(std::string_view object_key) const {
        std::lock_guard lk(mu_);
        auto it = servants_.find(object_key);
        return it == servants_.end() ? nullptr : &it->second;
    }

private:
    mutable std::mutex mu_;
    std::map<std::string, Servant, std::less<>> servants_;
};

} // namespace compadres::orb
