#include "components/standard.hpp"

#include "rt/clock.hpp"

namespace compadres::components {

PeriodicSource::PeriodicSource(const core::ComponentContext& ctx)
    : core::Component(ctx) {
    add_out_port<core::MyInteger>("tick", "MyInteger");
}

PeriodicSource::~PeriodicSource() {
    if (task_ != nullptr) task_->stop();
}

void PeriodicSource::_start() {
    task_ = std::make_unique<rt::PeriodicTask>(
        instance_name() + "-ticker", rt::Priority::clamped(priority_),
        period_ns_, [this] {
            auto& out = out_port_t<core::MyInteger>("tick");
            // Skip a tick rather than block the periodic thread when the
            // downstream is saturated — a late tick is worse than a lost
            // one for time-driven consumers.
            auto* pool =
                static_cast<core::MessagePool<core::MyInteger>*>(out.pool());
            if (pool == nullptr) return;
            core::MyInteger* msg = pool->try_acquire();
            if (msg == nullptr) return;
            msg->value = static_cast<int>(ticks_.fetch_add(1) + 1);
            try {
                out.send(msg, priority_);
            } catch (const std::exception&) {
                // Downstream torn down mid-tick: drop the tick, never the
                // process. send() already returned the message to the pool
                // on its failure path.
            }
        });
    task_->start();
}

void PeriodicSource::shutdown_dispatch() {
    if (task_ != nullptr) task_->stop();
    core::Component::shutdown_dispatch();
}

Watchdog::Watchdog(const core::ComponentContext& ctx) : core::Component(ctx) {
    core::InPortConfig cfg;
    cfg.buffer_size = 8;
    cfg.min_threads = cfg.max_threads = 0; // heartbeat recording is trivial
    add_in_port<core::MyInteger>("heartbeat", "MyInteger", cfg,
                                 [this](core::MyInteger&, core::Smm&) {
                                     last_beat_ns_.store(rt::now_ns());
                                     beats_.fetch_add(1);
                                 });
    add_out_port<core::MyInteger>("alarm", "MyInteger");
}

Watchdog::~Watchdog() {
    if (checker_ != nullptr) checker_->stop();
}

void Watchdog::_start() {
    last_beat_ns_.store(rt::now_ns()); // grace period from startup
    checker_ = std::make_unique<rt::PeriodicTask>(
        instance_name() + "-check", rt::Priority::clamped(alarm_priority_),
        deadline_ns_, [this] { check(); });
    checker_->start();
}

void Watchdog::check() {
    const std::int64_t silence = rt::now_ns() - last_beat_ns_.load();
    if (silence <= deadline_ns_) return;
    auto& out = out_port_t<core::MyInteger>("alarm");
    if (!out.connected()) {
        alarms_.fetch_add(1);
        return;
    }
    auto* pool = static_cast<core::MessagePool<core::MyInteger>*>(out.pool());
    core::MyInteger* msg = pool != nullptr ? pool->try_acquire() : nullptr;
    if (msg == nullptr) {
        alarms_.fetch_add(1); // counted even if the alarm path is saturated
        return;
    }
    msg->value = static_cast<int>(alarms_.fetch_add(1) + 1);
    try {
        out.send(msg, alarm_priority_);
    } catch (const std::exception&) {
        // Alarm path torn down: the count above still records the miss;
        // send() already returned the message to the pool.
    }
}

void Watchdog::shutdown_dispatch() {
    if (checker_ != nullptr) checker_->stop();
    core::Component::shutdown_dispatch();
}

void register_standard_components() {
    auto& reg = core::ComponentRegistry::global();
    reg.register_class<PeriodicSource>("PeriodicSource");
    reg.register_class<Watchdog>("Watchdog");
}

} // namespace compadres::components
