// Standard reusable components.
//
// The paper's pitch is assembly of "pre-coded, pre-tested subsystems";
// this module is the beginning of that catalogue: generic components a
// DRE application composes rather than rewrites. Each is an ordinary
// Compadres component — creatable programmatically or registered for
// CCL-driven assembly via register_standard_components().
#pragma once

#include "core/application.hpp"
#include "core/messages.hpp"
#include "rt/periodic.hpp"

#include <atomic>
#include <functional>

namespace compadres::components {

/// Emits a MyInteger tick on its "tick" Out port at a fixed period.
/// Configure via set_period()/set_priority() before the application
/// starts; the task runs from _start() until the component is destroyed.
class PeriodicSource : public core::Component {
public:
    explicit PeriodicSource(const core::ComponentContext& ctx);
    ~PeriodicSource() override;

    void set_period_ns(std::int64_t period_ns) { period_ns_ = period_ns; }
    void set_priority(int priority) { priority_ = priority; }

    void _start() override;
    void shutdown_dispatch() override;

    std::uint64_t ticks_emitted() const noexcept { return ticks_.load(); }
    const rt::PeriodicTask* task() const noexcept { return task_.get(); }

private:
    std::int64_t period_ns_ = 10'000'000; // 10 ms default
    int priority_ = rt::Priority::kDefault;
    std::atomic<std::uint64_t> ticks_{0};
    std::unique_ptr<rt::PeriodicTask> task_;
};

/// Heartbeat watchdog: expects a message on its "heartbeat" In port at
/// least every `deadline`; when the source goes quiet it raises an alarm
/// (a MyInteger carrying the number of missed checks) on its "alarm" Out
/// port at high priority. A classic DRE supervision component.
class Watchdog : public core::Component {
public:
    explicit Watchdog(const core::ComponentContext& ctx);
    ~Watchdog() override;

    /// Must be configured before _start().
    void set_deadline_ns(std::int64_t deadline_ns) { deadline_ns_ = deadline_ns; }
    void set_alarm_priority(int priority) { alarm_priority_ = priority; }

    void _start() override;
    void shutdown_dispatch() override;

    std::uint64_t heartbeats_seen() const noexcept { return beats_.load(); }
    std::uint64_t alarms_raised() const noexcept { return alarms_.load(); }

private:
    void check();

    std::int64_t deadline_ns_ = 100'000'000; // 100 ms default
    int alarm_priority_ = 90;
    std::atomic<std::int64_t> last_beat_ns_{0};
    std::atomic<std::uint64_t> beats_{0};
    std::atomic<std::uint64_t> alarms_{0};
    std::unique_ptr<rt::PeriodicTask> checker_;
};

/// Registers PeriodicSource and Watchdog in the global ComponentRegistry
/// (class names "PeriodicSource", "Watchdog"). Idempotent.
void register_standard_components();

} // namespace compadres::components
