#include "rt/periodic.hpp"

#include <stdexcept>

namespace compadres::rt {

PeriodicTask::PeriodicTask(std::string name, Priority priority,
                           std::int64_t period_ns, std::function<void()> body)
    : name_(std::move(name)), priority_(priority), period_ns_(period_ns),
      body_(std::move(body)) {
    if (period_ns_ <= 0) {
        throw std::invalid_argument("period must be positive");
    }
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
    std::lock_guard lk(mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
    thread_ = std::make_unique<RtThread>(name_, priority_, [this] { loop(); });
}

void PeriodicTask::stop() {
    {
        std::lock_guard lk(mu_);
        if (!started_) return;
        stopping_ = true;
    }
    stop_cv_.notify_all();
    thread_->join();
    std::lock_guard lk(mu_);
    started_ = false;
}

bool PeriodicTask::sleep_until(std::int64_t deadline_ns) {
    std::unique_lock lk(mu_);
    return !stop_cv_.wait_for(lk,
                              std::chrono::nanoseconds(deadline_ns - now_ns()),
                              [&] { return stopping_; });
}

void PeriodicTask::loop() {
    const std::int64_t origin = now_ns();
    std::int64_t k = 1; // next release index
    for (;;) {
        const std::int64_t scheduled = origin + k * period_ns_;
        if (now_ns() < scheduled) {
            if (!sleep_until(scheduled)) return;
        }
        {
            std::lock_guard lk(mu_);
            if (stopping_) return;
        }
        const std::int64_t released = now_ns();
        {
            std::lock_guard lk(stats_mu_);
            jitter_.record(released - scheduled);
        }
        releases_.fetch_add(1);
        body_();
        // Overrun policy: if the body ran past one or more further release
        // points, count the overrun and skip to the next future release.
        const std::int64_t finished = now_ns();
        std::int64_t next = k + 1;
        if (finished >= origin + next * period_ns_) {
            overruns_.fetch_add(1);
            next = (finished - origin) / period_ns_ + 1;
        }
        k = next;
    }
}

StatsSummary PeriodicTask::release_jitter() const {
    std::lock_guard lk(stats_mu_);
    return jitter_.summarize();
}

} // namespace compadres::rt
