#include "rt/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace compadres::rt {

void StatsRecorder::discard_warmup(std::size_t n) {
    if (n >= samples_.size()) {
        samples_.clear();
        return;
    }
    samples_.erase(samples_.begin(),
                   samples_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::int64_t StatsRecorder::percentile(double q) const {
    if (samples_.empty()) return 0;
    if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile out of range");
    std::vector<std::int64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (q == 0.0) return sorted.front();
    // Nearest-rank: ceil(q/100 * N), 1-indexed.
    const auto rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank, sorted.size()) - 1];
}

StatsSummary StatsRecorder::summarize() const {
    StatsSummary s;
    if (samples_.empty()) return s;
    std::vector<std::int64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.median = sorted[sorted.size() / 2];
    const auto total = std::accumulate(sorted.begin(), sorted.end(),
                                       static_cast<std::int64_t>(0));
    s.mean = total / static_cast<std::int64_t>(sorted.size());
    const auto rank = [&](double q) {
        const auto r = static_cast<std::size_t>(
            std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
        return sorted[std::min(std::max<std::size_t>(r, 1), sorted.size()) - 1];
    };
    s.p90 = rank(90.0);
    s.p99 = rank(99.0);
    s.jitter = s.max - s.min;
    return s;
}

std::vector<std::size_t> StatsRecorder::histogram(std::int64_t lo, std::int64_t hi,
                                                  std::size_t buckets) const {
    if (buckets == 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
    std::vector<std::size_t> out(buckets, 0);
    const double width = static_cast<double>(hi - lo) / static_cast<double>(buckets);
    for (const auto v : samples_) {
        auto idx = static_cast<std::ptrdiff_t>(
            std::floor(static_cast<double>(v - lo) / width));
        idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                         static_cast<std::ptrdiff_t>(buckets) - 1);
        ++out[static_cast<std::size_t>(idx)];
    }
    return out;
}

std::string StatsRecorder::format_row_us(const std::string& label,
                                         const StatsSummary& s) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-28s median=%8.1fus jitter=%8.1fus min=%8.1fus max=%8.1fus n=%zu",
                  label.c_str(),
                  static_cast<double>(s.median) / 1000.0,
                  static_cast<double>(s.jitter) / 1000.0,
                  static_cast<double>(s.min) / 1000.0,
                  static_cast<double>(s.max) / 1000.0,
                  s.count);
    return buf;
}

} // namespace compadres::rt
