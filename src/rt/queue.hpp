// Bounded blocking queues used for In-port message buffers and transports.
//
// The CCL <BufferSize> attribute bounds each In port's buffer; a bounded
// queue is also what keeps memory use predictable on an embedded target.
// Two flavours:
//   * BoundedQueue<T>          — FIFO, used by transports.
//   * PriorityBoundedQueue<T>  — pops the highest-priority element first;
//     ties break FIFO. This is the dispatch order the paper specifies for
//     In ports ("messages are assigned a priority in the send() method").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

namespace compadres::rt {

/// Result of a push attempt on a bounded queue.
enum class PushResult {
    kOk,        ///< element enqueued
    kFull,      ///< non-blocking push found the queue full
    kClosed,    ///< queue was closed; element rejected
};

/// Mutex+condvar bounded MPMC FIFO. Throughput is far beyond what the
/// microsecond-scale middleware paths here need, and the blocking semantics
/// (bounded, closable) are exactly what port buffers require.
template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

    /// Blocking push; waits while full. Returns kClosed if the queue is
    /// closed before space becomes available.
    PushResult push(T value) {
        std::unique_lock lk(mu_);
        not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return PushResult::kClosed;
        items_.push_back(std::move(value));
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    /// Non-blocking push.
    PushResult try_push(T value) {
        std::unique_lock lk(mu_);
        if (closed_) return PushResult::kClosed;
        if (items_.size() >= capacity_) return PushResult::kFull;
        items_.push_back(std::move(value));
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    /// Blocking pop; empty optional means the queue closed and drained.
    std::optional<T> pop() {
        std::unique_lock lk(mu_);
        not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Non-blocking pop.
    std::optional<T> try_pop() {
        std::unique_lock lk(mu_);
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Close: wakes all waiters; pushes fail, pops drain then return empty.
    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const {
        std::lock_guard lk(mu_);
        return closed_;
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return items_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

/// Bounded queue that delivers the highest-priority element first.
/// Stable for equal priorities (FIFO among equals) so that a stream of
/// same-priority messages is processed in send order, as a port user expects.
template <typename T>
class PriorityBoundedQueue {
public:
    explicit PriorityBoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1) {}

    PushResult push(T value, int priority) {
        std::unique_lock lk(mu_);
        not_full_.wait(lk, [&] { return closed_ || heap_.size() < capacity_; });
        if (closed_) return PushResult::kClosed;
        heap_.push(Entry{priority, seq_++, std::move(value)});
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    PushResult try_push(T value, int priority) {
        std::unique_lock lk(mu_);
        if (closed_) return PushResult::kClosed;
        if (heap_.size() >= capacity_) return PushResult::kFull;
        heap_.push(Entry{priority, seq_++, std::move(value)});
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    /// Blocking pop of the highest-priority element; empty optional on close.
    /// The element's priority is returned alongside it so the dispatching
    /// thread can inherit it (paper: the pool thread "is assigned the
    /// priority of the incoming message").
    std::optional<std::pair<T, int>> pop() {
        std::unique_lock lk(mu_);
        not_empty_.wait(lk, [&] { return closed_ || !heap_.empty(); });
        if (heap_.empty()) return std::nullopt;
        // std::priority_queue::top() returns const&; the entry is moved out
        // via const_cast, which is safe because it is popped immediately.
        Entry& top = const_cast<Entry&>(heap_.top());
        std::pair<T, int> out{std::move(top.value), top.priority};
        heap_.pop();
        lk.unlock();
        not_full_.notify_one();
        return out;
    }

    std::optional<std::pair<T, int>> try_pop() {
        std::unique_lock lk(mu_);
        if (heap_.empty()) return std::nullopt;
        Entry& top = const_cast<Entry&>(heap_.top());
        std::pair<T, int> out{std::move(top.value), top.priority};
        heap_.pop();
        lk.unlock();
        not_full_.notify_one();
        return out;
    }

    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return heap_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

private:
    struct Entry {
        int priority;
        std::uint64_t seq;
        T value;
    };
    struct Order {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.priority != b.priority) return a.priority < b.priority;
            return a.seq > b.seq; // earlier sequence wins among equals
        }
    };

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::priority_queue<Entry, std::vector<Entry>, Order> heap_;
    std::uint64_t seq_ = 0;
    bool closed_ = false;
};

} // namespace compadres::rt
