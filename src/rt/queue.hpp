// Bounded blocking queues used for transports and legacy buffers.
//
// The CCL <BufferSize> attribute bounds each In port's buffer; a bounded
// queue is also what keeps memory use predictable on an embedded target.
// Two flavours:
//   * BoundedQueue<T>          — FIFO, used by transports.
//   * PriorityBoundedQueue<T>  — pops the highest-priority element first;
//     ties break FIFO. This is the dispatch order the paper specifies for
//     In ports ("messages are assigned a priority in the send() method").
//
// In-port delivery itself no longer uses these: the delivery fabric
// (rt/intake_queue.hpp) enforces the buffer bound with per-port credit
// counters and a single-lock intake queue.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace compadres::rt {

/// Result of a push attempt on a bounded queue.
enum class PushResult {
    kOk,        ///< element enqueued
    kFull,      ///< non-blocking push found the queue full
    kClosed,    ///< queue was closed; element rejected
};

/// Result of a non-blocking pop attempt.
enum class PopResult {
    kOk,      ///< element returned
    kEmpty,   ///< nothing queued right now; more may still arrive
    kDrained, ///< closed and empty: no element will ever arrive again
};

/// Mutex+condvar bounded MPMC FIFO. Throughput is far beyond what the
/// microsecond-scale middleware paths here need, and the blocking semantics
/// (bounded, closable) are exactly what transport buffers require.
template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

    /// Blocking push; waits while full. Returns kClosed if the queue is
    /// closed before space becomes available.
    PushResult push(T value) {
        std::unique_lock lk(mu_);
        not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return PushResult::kClosed;
        items_.push_back(std::move(value));
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    /// Non-blocking push.
    PushResult try_push(T value) {
        std::unique_lock lk(mu_);
        if (closed_) return PushResult::kClosed;
        if (items_.size() >= capacity_) return PushResult::kFull;
        items_.push_back(std::move(value));
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    /// Blocking pop; empty optional means the queue closed and drained.
    std::optional<T> pop() {
        std::unique_lock lk(mu_);
        not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Non-blocking pop distinguishing "empty for now" from "closed and
    /// drained" — a poller must know whether to come back.
    PopResult try_pop(T& out) {
        std::unique_lock lk(mu_);
        if (items_.empty()) {
            return closed_ ? PopResult::kDrained : PopResult::kEmpty;
        }
        out = std::move(items_.front());
        items_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return PopResult::kOk;
    }

    /// Non-blocking pop; use the status overload (or drained()) to tell an
    /// empty queue from a finished one.
    std::optional<T> try_pop() {
        T v;
        if (try_pop(v) != PopResult::kOk) return std::nullopt;
        return v;
    }

    /// Close: wakes all waiters; pushes fail, pops drain then return empty.
    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const {
        std::lock_guard lk(mu_);
        return closed_;
    }

    /// True once the queue is closed AND empty: every pop from now on fails.
    bool drained() const {
        std::lock_guard lk(mu_);
        return closed_ && items_.empty();
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return items_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

/// Bounded queue that delivers the highest-priority element first.
/// Stable for equal priorities (FIFO among equals) so that a stream of
/// same-priority messages is processed in send order, as a port user
/// expects. Entries live in a handwritten std::push_heap/std::pop_heap heap
/// over a std::vector so the top element can be moved out without the
/// const_cast contortion std::priority_queue::top() would force.
template <typename T>
class PriorityBoundedQueue {
public:
    explicit PriorityBoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1) {}

    PushResult push(T value, int priority) {
        std::unique_lock lk(mu_);
        not_full_.wait(lk, [&] { return closed_ || heap_.size() < capacity_; });
        if (closed_) return PushResult::kClosed;
        push_locked(std::move(value), priority);
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    PushResult try_push(T value, int priority) {
        std::unique_lock lk(mu_);
        if (closed_) return PushResult::kClosed;
        if (heap_.size() >= capacity_) return PushResult::kFull;
        push_locked(std::move(value), priority);
        lk.unlock();
        not_empty_.notify_one();
        return PushResult::kOk;
    }

    /// Blocking pop of the highest-priority element; empty optional on close.
    /// The element's priority is returned alongside it so the dispatching
    /// thread can inherit it (paper: the pool thread "is assigned the
    /// priority of the incoming message").
    std::optional<std::pair<T, int>> pop() {
        std::unique_lock lk(mu_);
        not_empty_.wait(lk, [&] { return closed_ || !heap_.empty(); });
        if (heap_.empty()) return std::nullopt;
        auto out = pop_top_locked();
        lk.unlock();
        not_full_.notify_one();
        return out;
    }

    /// Non-blocking pop distinguishing "empty for now" from "closed and
    /// drained".
    PopResult try_pop(std::pair<T, int>& out) {
        std::unique_lock lk(mu_);
        if (heap_.empty()) {
            return closed_ ? PopResult::kDrained : PopResult::kEmpty;
        }
        out = pop_top_locked();
        lk.unlock();
        not_full_.notify_one();
        return PopResult::kOk;
    }

    std::optional<std::pair<T, int>> try_pop() {
        std::pair<T, int> out;
        if (try_pop(out) != PopResult::kOk) return std::nullopt;
        return out;
    }

    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /// True once the queue is closed AND empty: every pop from now on fails.
    bool drained() const {
        std::lock_guard lk(mu_);
        return closed_ && heap_.empty();
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return heap_.size();
    }

    std::size_t capacity() const noexcept { return capacity_; }

private:
    struct Entry {
        int priority;
        std::uint64_t seq;
        T value;
    };
    /// std::push_heap keeps the *greatest* element first, so "less than"
    /// means lower priority, or later arrival among equals.
    struct Order {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.priority != b.priority) return a.priority < b.priority;
            return a.seq > b.seq; // earlier sequence wins among equals
        }
    };

    void push_locked(T value, int priority) {
        heap_.push_back(Entry{priority, seq_++, std::move(value)});
        std::push_heap(heap_.begin(), heap_.end(), Order{});
    }

    std::pair<T, int> pop_top_locked() {
        std::pop_heap(heap_.begin(), heap_.end(), Order{});
        Entry top = std::move(heap_.back());
        heap_.pop_back();
        return {std::move(top.value), top.priority};
    }

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::vector<Entry> heap_;
    std::uint64_t seq_ = 0;
    bool closed_ = false;
};

} // namespace compadres::rt
