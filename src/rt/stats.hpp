// Latency statistics used by every benchmark harness in bench/.
//
// The paper reports, for each configuration, the median round-trip time and
// the jitter (defined in §3.1 as the range of the observations, i.e.
// max - min) over 10,000 steady-state samples. StatsRecorder reproduces
// exactly those statistics plus percentiles and a fixed-bucket histogram for
// the Fig. 9 / Fig. 11 style whisker series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace compadres::rt {

/// Summary of a latency sample set, in nanoseconds.
struct StatsSummary {
    std::size_t  count = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::int64_t median = 0;
    std::int64_t mean = 0;
    std::int64_t p90 = 0;
    std::int64_t p99 = 0;
    /// Range of observations (max - min) — the paper's jitter metric.
    std::int64_t jitter = 0;
};

/// Accumulates raw latency samples and computes order statistics on demand.
///
/// Samples are stored verbatim (a 10k-sample run is 80 KB) so that exact
/// order statistics — not streaming approximations — are reported, matching
/// the paper's measurement methodology.
class StatsRecorder {
public:
    StatsRecorder() = default;
    explicit StatsRecorder(std::size_t expected_samples) {
        samples_.reserve(expected_samples);
    }

    void record(std::int64_t sample_ns) { samples_.push_back(sample_ns); }

    /// Drop the first `n` samples — used to discard warm-up iterations so
    /// only steady-state observations are summarized (paper §3.1).
    void discard_warmup(std::size_t n);

    void clear() { samples_.clear(); }

    std::size_t count() const noexcept { return samples_.size(); }
    const std::vector<std::int64_t>& samples() const noexcept { return samples_; }

    /// Exact percentile by nearest-rank on a sorted copy. `q` in [0, 100].
    std::int64_t percentile(double q) const;

    StatsSummary summarize() const;

    /// Histogram over [lo, hi) with `buckets` equal-width buckets; samples
    /// outside the range are clamped into the first/last bucket.
    std::vector<std::size_t> histogram(std::int64_t lo, std::int64_t hi,
                                       std::size_t buckets) const;

    /// Render a one-line table row: "label  median  jitter  min  max" in
    /// microseconds, the unit the paper's tables use.
    static std::string format_row_us(const std::string& label,
                                     const StatsSummary& s);

private:
    std::vector<std::int64_t> samples_;
};

} // namespace compadres::rt
