// Periodic real-time tasks.
//
// DRE systems are built from periodic activities (sensor sampling, control
// loops, heartbeats) — the workloads the paper's introduction motivates.
// RTSJ models them as RealtimeThreads with PeriodicParameters and
// waitForNextPeriod(); this is that abstraction: a thread released at
// absolute period boundaries, with release-jitter statistics and
// overrun (deadline-miss) accounting.
#pragma once

#include "rt/clock.hpp"
#include "rt/stats.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace compadres::rt {

class PeriodicTask {
public:
    /// `body` runs once per period at `priority`. Releases are anchored to
    /// absolute time (start + k*period), so execution-time variation does
    /// not accumulate drift.
    PeriodicTask(std::string name, Priority priority, std::int64_t period_ns,
                 std::function<void()> body);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask&) = delete;
    PeriodicTask& operator=(const PeriodicTask&) = delete;

    /// Begin releasing. The first release is one period after start().
    void start();

    /// Stop after the current release (if any) completes. Idempotent.
    void stop();

    const std::string& name() const noexcept { return name_; }
    std::int64_t period_ns() const noexcept { return period_ns_; }

    std::uint64_t release_count() const noexcept { return releases_.load(); }
    /// Periods whose body overran into (at least) the next release; the
    /// missed releases are skipped, not batched (the RTSJ "skip" policy).
    std::uint64_t overrun_count() const noexcept { return overruns_.load(); }

    /// Release jitter samples (ns): actual release time minus scheduled
    /// release time. Snapshot; safe to call while running.
    StatsSummary release_jitter() const;

private:
    void loop();
    /// Sleep until the absolute monotonic time `deadline_ns`, unless
    /// stopped. Returns false when stopping.
    bool sleep_until(std::int64_t deadline_ns);

    std::string name_;
    Priority priority_;
    std::int64_t period_ns_;
    std::function<void()> body_;
    std::unique_ptr<RtThread> thread_;
    std::mutex mu_;
    std::condition_variable stop_cv_;
    bool stopping_ = false;
    bool started_ = false;
    std::atomic<std::uint64_t> releases_{0};
    std::atomic<std::uint64_t> overruns_{0};
    mutable std::mutex stats_mu_;
    StatsRecorder jitter_;
};

} // namespace compadres::rt
