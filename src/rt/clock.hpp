// Monotonic time source for latency measurement and pacing.
//
// All latency-sensitive code in this repository timestamps with
// rt::now_ns() (CLOCK_MONOTONIC) so that wall-clock adjustments can never
// corrupt a measurement, mirroring how the paper's testbed measured
// round-trip times with the RTSJ high-resolution clock.
#pragma once

#include <cstdint>
#include <ctime>

namespace compadres::rt {

/// Nanoseconds since an arbitrary (but fixed) epoch; strictly monotonic.
inline std::int64_t now_ns() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// Busy-wait for approximately `ns` nanoseconds without yielding the CPU.
/// Used by the simulated-platform noise injectors, where a sleep would be
/// descheduled and under-shoot badly at microsecond granularity.
inline void busy_wait_ns(std::int64_t ns) noexcept {
    const std::int64_t deadline = now_ns() + ns;
    while (now_ns() < deadline) {
        // spin
    }
}

/// Sleep (blocking, kernel timer) for `ns` nanoseconds.
inline void sleep_ns(std::int64_t ns) noexcept {
    timespec ts{};
    ts.tv_sec  = ns / 1'000'000'000;
    ts.tv_nsec = ns % 1'000'000'000;
    nanosleep(&ts, nullptr);
}

} // namespace compadres::rt
