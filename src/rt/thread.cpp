#include "rt/thread.hpp"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <utility>

namespace compadres::rt {

namespace {
std::atomic<std::int64_t> g_rt_denied{0};
} // namespace

bool try_set_current_thread_priority(Priority p) noexcept {
    sched_param sp{};
    sp.sched_priority = Priority::clamped(p.value).value;
    const int rc = pthread_setschedparam(pthread_self(), SCHED_FIFO, &sp);
    if (rc != 0) {
        g_rt_denied.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void set_current_thread_name(const std::string& name) noexcept {
    char buf[16] = {};
    name.copy(buf, sizeof(buf) - 1);
    pthread_setname_np(pthread_self(), buf);
}

RtThread::RtThread(std::string name, Priority prio, std::function<void()> body)
    : name_(std::move(name)), priority_(prio) {
    thread_ = std::thread([this, body = std::move(body)] {
        set_current_thread_name(name_);
        rt_granted_.store(try_set_current_thread_priority(priority_));
        body();
    });
}

RtThread::~RtThread() {
    if (thread_.joinable()) thread_.join();
}

void RtThread::join() {
    if (thread_.joinable()) thread_.join();
}

std::int64_t rt_denied_count() noexcept {
    return g_rt_denied.load(std::memory_order_relaxed);
}

} // namespace compadres::rt
