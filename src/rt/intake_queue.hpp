// Credit-gated intake queue — the single-rendezvous message hop.
//
// The legacy delivery path paid two mutex/condvar rendezvous per hop: the
// In port's own lock (enforcing the CCL <BufferSize> bound) followed by the
// dispatcher queue's lock. The delivery fabric splits those concerns:
//
//   * CreditGate — a per-port admission counter. The <BufferSize> bound is
//     a budget of `limit` credits; a sender acquires one credit per message
//     (lock-free CAS on the uncontended path) and the completion path
//     releases it after process(). Only a sender that finds the budget
//     exhausted falls back to a mutex/condvar wait, and only a releaser
//     that observes registered waiters touches the mutex to wake them.
//   * IntakeQueue — the dispatcher's priority queue. Admission is already
//     settled by the gate, so push never blocks on "full": one lock
//     acquisition, one heap insert, one (only-if-consumer-waiting) wake.
//
// Credit protocol invariants:
//   1. credits in flight (gate.in_use())  <=  limit == <BufferSize>.
//   2. Every admitted envelope holds exactly one credit from acquisition in
//      InPortBase::deliver until InPortBase::on_processed releases it —
//      queued time and handler time both count against the bound, exactly
//      like the legacy in_flight_ accounting.
//   3. Ring-overwrite admission transfers the credit of the overwritten
//      (stolen) envelope to the incoming one; the count in flight is
//      unchanged, so invariant 1 holds without touching the counter.
//   4. release() never blocks: it is a single fetch_sub plus a wake that is
//      taken only when a waiter is registered, so the completion path stays
//      O(1) and lock-free in steady state.
//
// Quiesce window (live recomposition, core/recompose.hpp): the gate also
// brackets the ADMISSION window. A sender wraps its whole admission attempt
// in enter()/exit(); close_window() parks new entrants before they touch
// the budget, and wait_drained() returns once no sender is inside the
// bracket AND no credit is in flight — i.e. nothing is being admitted,
// queued, or mid-handler. That is the point where a route's policy can be
// swapped without a frame in motion; open_window() resumes the parked
// senders against the new policy. Senders parked in enter() hold no entrant
// count and no credit, so a drain always terminates as long as handlers
// keep completing. The steady-state cost of the bracket is two relaxed-ish
// atomic RMWs per delivery; the mutex is touched only while a window is
// closed or a drain is waiting.
//
// The uncontended hop therefore performs exactly ONE lock acquisition (the
// IntakeQueue push); both classes export counters (stall_count,
// lock_acquisitions) so benches and tests can assert that.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace compadres::rt {

/// Admission budget for one In port: `limit` credits, one per in-flight
/// message. Lock-free on the uncontended acquire/release path; a mutex and
/// condvar back only the exhausted-budget slow path.
class CreditGate {
public:
    explicit CreditGate(std::size_t limit) : limit_(limit ? limit : 1) {}

    CreditGate(const CreditGate&) = delete;
    CreditGate& operator=(const CreditGate&) = delete;

    /// Lock-free: take one credit if the budget allows. Never touches the
    /// mutex.
    bool try_acquire() noexcept {
        std::size_t cur = in_use_.load();
        while (cur < limit_) {
            if (in_use_.compare_exchange_weak(cur, cur + 1)) {
                note_depth(cur + 1);
                return true;
            }
        }
        return false;
    }

    /// Take one credit, waiting (backpressure) while the budget is
    /// exhausted. Each wait is counted as a stall.
    void acquire() noexcept {
        if (try_acquire()) return;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock lk(mu_);
        waiters_.fetch_add(1);
        cv_.wait(lk, [&] { return try_acquire(); });
        waiters_.fetch_sub(1);
    }

    /// Return one credit. Wakes waiters only when one is registered, so
    /// the steady-state completion path never takes the mutex. notify_all
    /// (not _one): blocked acquirers and a wait_drained() share the condvar,
    /// and waking only the drain waiter would strand an acquirer.
    void release() noexcept {
        in_use_.fetch_sub(1);
        if (waiters_.load() > 0) {
            std::lock_guard lk(mu_);
            cv_.notify_all();
        }
    }

    // ---- quiesce window (live recomposition) ----

    /// Enter the admission bracket. If the window is closed, parks until it
    /// reopens; a parked sender holds no entrant count, so it never blocks
    /// wait_drained(). Pair with exit() once the message is enqueued (or
    /// definitively not).
    void enter() noexcept {
        entrants_.fetch_add(1);
        if (!window_closed_.load()) return;
        // Window closed while stepping in: step back out (waking a drain
        // waiter that may be blocked on our transient count) and park until
        // it reopens.
        entrants_.fetch_sub(1);
        if (waiters_.load() > 0) {
            std::lock_guard lk(mu_);
            cv_.notify_all();
        }
        std::unique_lock lk(mu_);
        waiters_.fetch_add(1);
        cv_.wait(lk, [&] { return !window_closed_.load(); });
        // Re-enter while still holding the mutex: close_window() also takes
        // it, so a newly opened window cannot close again between the
        // predicate check and this increment.
        entrants_.fetch_add(1);
        waiters_.fetch_sub(1);
    }

    /// Leave the admission bracket.
    void exit() noexcept {
        entrants_.fetch_sub(1);
        if (waiters_.load() > 0) {
            std::lock_guard lk(mu_);
            cv_.notify_all();
        }
    }

    /// Close the admission window: senders entering after this park in
    /// enter() without touching the budget. Does not wait — follow with
    /// wait_drained().
    void close_window() noexcept {
        std::lock_guard lk(mu_);
        window_closed_.store(true);
    }

    /// Reopen the window and release every parked sender.
    void open_window() noexcept {
        {
            std::lock_guard lk(mu_);
            window_closed_.store(false);
        }
        cv_.notify_all();
    }

    bool window_closed() const noexcept { return window_closed_.load(); }

    /// Block until no sender is inside the admission bracket and no credit
    /// is in flight — nothing admitted, queued, or mid-handler. Meaningful
    /// with the window closed (otherwise new entrants can race in); pre-
    /// close entrants each admit at most one message and then park, so the
    /// wait terminates as long as handlers keep completing.
    void wait_drained() noexcept {
        std::unique_lock lk(mu_);
        waiters_.fetch_add(1);
        cv_.wait(lk, [&] {
            return entrants_.load() == 0 && in_use_.load() == 0;
        });
        waiters_.fetch_sub(1);
    }

    std::size_t limit() const noexcept { return limit_; }
    std::size_t in_use() const noexcept { return in_use_.load(); }
    std::size_t available() const noexcept {
        const std::size_t used = in_use_.load();
        return used >= limit_ ? 0 : limit_ - used;
    }

    /// Number of acquires that found the budget exhausted and had to wait.
    std::uint64_t stall_count() const noexcept {
        return stalls_.load(std::memory_order_relaxed);
    }
    /// Highest number of credits ever simultaneously in flight — the
    /// port's queue-depth high-water mark.
    std::size_t depth_high_water() const noexcept {
        return hwm_.load(std::memory_order_relaxed);
    }

private:
    void note_depth(std::size_t depth) noexcept {
        std::size_t cur = hwm_.load(std::memory_order_relaxed);
        while (depth > cur &&
               !hwm_.compare_exchange_weak(cur, depth,
                                           std::memory_order_relaxed)) {
        }
    }

    const std::size_t limit_;
    std::atomic<std::size_t> in_use_{0};
    std::atomic<std::size_t> hwm_{0};
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<int> waiters_{0};
    std::atomic<int> entrants_{0};       ///< senders inside enter()/exit()
    std::atomic<bool> window_closed_{false};
    std::mutex mu_;
    std::condition_variable cv_;
};

/// Outcome of a non-blocking IntakeQueue pop.
enum class IntakePop {
    kOk,      ///< an element was returned
    kEmpty,   ///< nothing queued right now (more may arrive)
    kDrained, ///< closed and empty: no element will ever arrive again
};

/// The dispatcher's priority queue. Highest priority pops first, FIFO among
/// equals. Unbounded by construction: every push already holds a port
/// credit, so occupancy is bounded by the sum of the bound ports'
/// <BufferSize> budgets. push() therefore never blocks — one lock, one heap
/// insert, one wake only if a consumer is parked.
template <typename T>
class IntakeQueue {
public:
    explicit IntakeQueue(std::size_t initial_capacity = 16) {
        heap_.reserve(initial_capacity ? initial_capacity : 1);
    }

    /// Single-rendezvous enqueue. Returns false when the queue is closed.
    bool push(T value, int priority) {
        std::unique_lock lk(mu_);
        locks_.fetch_add(1, std::memory_order_relaxed);
        if (closed_) return false;
        heap_.push_back(Entry{priority, seq_++, std::move(value)});
        std::push_heap(heap_.begin(), heap_.end(), Order{});
        const bool wake = consumers_waiting_ > 0;
        lk.unlock();
        if (wake) not_empty_.notify_one();
        return true;
    }

    /// Blocking pop of the highest-priority element (with its priority, so
    /// the dispatching thread can inherit it). Empty optional means closed
    /// and drained.
    std::optional<std::pair<T, int>> pop() {
        std::unique_lock lk(mu_);
        ++consumers_waiting_;
        not_empty_.wait(lk, [&] { return closed_ || !heap_.empty(); });
        --consumers_waiting_;
        if (heap_.empty()) return std::nullopt;
        return pop_top_locked();
    }

    /// Non-blocking pop that distinguishes "nothing right now" from
    /// "closed and drained".
    IntakePop try_pop(std::pair<T, int>& out) {
        std::lock_guard lk(mu_);
        if (heap_.empty()) return closed_ ? IntakePop::kDrained : IntakePop::kEmpty;
        out = pop_top_locked();
        return IntakePop::kOk;
    }

    /// Remove and return the OLDEST entry matching `pred` (lowest sequence
    /// number, regardless of priority) — the ring-overwrite "freshest value
    /// wins" policy steals the stalest queued message of an overflowing
    /// port. O(n) scan + re-heapify; this is the overflow path, not the hot
    /// path.
    template <typename Pred>
    std::optional<T> steal_oldest_if(Pred pred) {
        std::lock_guard lk(mu_);
        std::size_t best = heap_.size();
        for (std::size_t i = 0; i < heap_.size(); ++i) {
            if (!pred(heap_[i].value)) continue;
            if (best == heap_.size() || heap_[i].seq < heap_[best].seq) best = i;
        }
        if (best == heap_.size()) return std::nullopt;
        T out = std::move(heap_[best].value);
        heap_[best] = std::move(heap_.back());
        heap_.pop_back();
        std::make_heap(heap_.begin(), heap_.end(), Order{});
        return out;
    }

    /// Close: pushes fail, pops drain the backlog then report kDrained.
    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
    }

    bool closed() const {
        std::lock_guard lk(mu_);
        return closed_;
    }

    /// True once the queue is closed AND empty — no pop will ever succeed.
    bool drained() const {
        std::lock_guard lk(mu_);
        return closed_ && heap_.empty();
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return heap_.size();
    }

    /// Total lock acquisitions performed by push() — exported so benches
    /// can assert the one-lock-per-hop property of the delivery fabric.
    std::uint64_t push_lock_count() const noexcept {
        return locks_.load(std::memory_order_relaxed);
    }

private:
    struct Entry {
        int priority;
        std::uint64_t seq;
        T value;
    };
    /// std::push_heap keeps the *greatest* element first, so "less than"
    /// means lower priority, or later arrival among equals.
    struct Order {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.priority != b.priority) return a.priority < b.priority;
            return a.seq > b.seq; // earlier sequence wins among equals
        }
    };

    std::pair<T, int> pop_top_locked() {
        std::pop_heap(heap_.begin(), heap_.end(), Order{});
        Entry top = std::move(heap_.back());
        heap_.pop_back();
        return {std::move(top.value), top.priority};
    }

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::vector<Entry> heap_;
    std::uint64_t seq_ = 0;
    std::atomic<std::uint64_t> locks_{0};
    int consumers_waiting_ = 0;
    bool closed_ = false;
};

} // namespace compadres::rt
