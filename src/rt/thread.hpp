// Real-time thread facade.
//
// RTSJ RealtimeThreads carry a priority in [1, 99-ish] and are scheduled
// preemptively by priority. On a stock Linux container we approximate this
// with best-effort SCHED_FIFO; when the process lacks CAP_SYS_NICE the
// request is recorded but silently degrades to CFS, which is the honest
// equivalent of running an RTSJ VM on a non-real-time OS (the paper's
// Mackinac-on-SunOS configuration).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace compadres::rt {

/// Logical real-time priority. Higher is more urgent, as in RTSJ.
/// The valid range mirrors RTSJ's PriorityScheduler (28 real-time levels is
/// the minimum; we allow 1..99 to match SCHED_FIFO).
struct Priority {
    int value = kDefault;

    static constexpr int kMin = 1;
    static constexpr int kMax = 99;
    static constexpr int kDefault = 10;

    static Priority clamped(int v) noexcept {
        if (v < kMin) v = kMin;
        if (v > kMax) v = kMax;
        return Priority{v};
    }
};

/// Attempt to give the *calling* thread the requested real-time priority.
/// Returns true if the kernel accepted SCHED_FIFO at that priority, false if
/// we fell back to normal scheduling (no privilege). Never throws.
bool try_set_current_thread_priority(Priority p) noexcept;

/// Name the calling thread (visible in /proc and debuggers). Truncated to
/// the 15-char kernel limit.
void set_current_thread_name(const std::string& name) noexcept;

/// A joinable thread with a name and a requested real-time priority.
///
/// The body runs after the priority has been applied (or the fallback has
/// been recorded), so latency-sensitive loops never execute at the wrong
/// priority during startup.
class RtThread {
public:
    RtThread() = default;
    RtThread(std::string name, Priority prio, std::function<void()> body);

    RtThread(const RtThread&) = delete;
    RtThread& operator=(const RtThread&) = delete;
    RtThread(RtThread&&) = default;
    RtThread& operator=(RtThread&&) = default;

    ~RtThread();

    bool joinable() const noexcept { return thread_.joinable(); }
    void join();

    const std::string& name() const noexcept { return name_; }
    Priority priority() const noexcept { return priority_; }

    /// True once the thread observed whether SCHED_FIFO was granted.
    bool priority_applied() const noexcept { return rt_granted_.load(); }

private:
    std::string name_;
    Priority priority_{};
    std::thread thread_;
    std::atomic<bool> rt_granted_{false};
};

/// Process-wide count of threads that asked for RT scheduling but did not
/// get it — surfaced by the bench harnesses so a reader knows whether the
/// run used real SCHED_FIFO or the degraded mode.
std::int64_t rt_denied_count() noexcept;

} // namespace compadres::rt
