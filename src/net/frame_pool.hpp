// Pooled wire-frame buffers — the allocation seam of the remote fast path.
//
// Every GIOP frame that crosses a transport used to be a fresh
// std::vector: one heap allocation (plus growth reallocations) per message
// on the send side and another on the receive side. A FrameBufferPool
// keeps size-classed storage on free lists so a steady-state remote hop
// recycles the same few buffers forever; the pool's allocation counter is
// what bench/remote_roundtrip gates to zero.
//
// Three pieces:
//   * FrameBuffer     — move-only handle over pooled storage; returns the
//                       storage to its home pool on destruction.
//   * FrameBufferPool — size-classed free lists (mutex-guarded; the lock is
//                       held for a pointer swap only) with hit/miss stats.
//   * FrameRing       — fixed-capacity closable MPMC ring of FrameBuffers.
//                       Transports queue frames through this instead of a
//                       std::deque, whose chunk allocation/deallocation on
//                       block boundaries would break the zero-alloc gate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <vector>

namespace compadres::net {

class FrameBufferPool;

/// Move-only handle over a frame's bytes. The storage is a std::vector
/// whose capacity survives the round trip through the pool, so resize()
/// within the size class never allocates.
class FrameBuffer {
public:
    FrameBuffer() = default;
    FrameBuffer(FrameBuffer&& other) noexcept
        : bytes_(std::move(other.bytes_)), home_(other.home_) {
        other.home_ = nullptr;
        other.bytes_.clear();
    }
    FrameBuffer& operator=(FrameBuffer&& other) noexcept {
        if (this != &other) {
            release();
            bytes_ = std::move(other.bytes_);
            home_ = other.home_;
            other.home_ = nullptr;
            other.bytes_.clear();
        }
        return *this;
    }
    FrameBuffer(const FrameBuffer&) = delete;
    FrameBuffer& operator=(const FrameBuffer&) = delete;
    ~FrameBuffer() { release(); }

    std::uint8_t* data() noexcept { return bytes_.data(); }
    const std::uint8_t* data() const noexcept { return bytes_.data(); }
    std::size_t size() const noexcept { return bytes_.size(); }
    bool empty() const noexcept { return bytes_.empty(); }
    std::size_t capacity() const noexcept { return bytes_.capacity(); }

    /// Never allocates while n stays within the pooled capacity.
    void resize(std::size_t n) { bytes_.resize(n); }

    void assign(const std::uint8_t* src, std::size_t n) {
        bytes_.resize(n);
        if (n > 0) std::memcpy(bytes_.data(), src, n);
    }

    /// Return the storage to the home pool now (also done on destruction).
    void release() noexcept;

private:
    friend class FrameBufferPool;
    FrameBuffer(std::vector<std::uint8_t> bytes, FrameBufferPool* home)
        : bytes_(std::move(bytes)), home_(home) {}

    std::vector<std::uint8_t> bytes_;
    FrameBufferPool* home_ = nullptr; ///< null: plain heap-backed buffer
};

/// Construction-time knobs for a FrameBufferPool instance. The defaults
/// reproduce the process-global pool's behavior; per-wire/per-lane pools
/// (net/lane_group.hpp) tune the thread-cache depths to their own burst
/// shape instead of inheriting the global ring sizing.
struct FramePoolOptions {
    /// Per-size-class thread-cache (TLS ring) depths, clamped to the
    /// compile-time maximum (16). Meaningful only with thread_cache on.
    std::size_t tls_depth[4] = {16, 16, 2, 1};
    /// Serve repeat acquire/recycle traffic from a per-thread ring without
    /// touching the pool mutex. Off by default for ad-hoc instance pools
    /// (their storage may outlive them in the ring, which is memory-safe —
    /// the ring owns plain byte vectors — but claims ring slots other
    /// pools could use); the process-global pool and lane pools enable it.
    bool thread_cache = false;
};

/// Size-classed recycling pool for frame storage.
class FrameBufferPool {
public:
    struct Stats {
        std::uint64_t acquires = 0;    ///< acquire + acquire_storage calls
        std::uint64_t hits = 0;        ///< served without fresh allocation
        std::uint64_t tls_hits = 0;    ///< subset of hits: thread cache,
                                       ///< no pool mutex touched
        std::uint64_t allocations = 0; ///< fresh storage allocated (misses)
        std::uint64_t oversize = 0;    ///< above the largest class: unpooled
        std::uint64_t recycled = 0;    ///< buffers returned to a free list
    };

    explicit FrameBufferPool(FramePoolOptions options = {});

    /// Process-wide pool shared by the transports.
    static FrameBufferPool& global();

    /// A buffer of exactly `size` bytes (content uninitialized/stale).
    FrameBuffer acquire(std::size_t size);

    /// Raw storage with capacity >= `capacity_hint` and size 0 — the encode
    /// path adopts this into a cdr::OutputStream, then wraps the encoded
    /// bytes back into a FrameBuffer with adopt().
    std::vector<std::uint8_t> acquire_storage(std::size_t capacity_hint);

    /// Fill the free list of the class covering `bytes` with up to `count`
    /// buffers (bounded by the class cap). Real-time deployments call this
    /// at initialization so peak in-flight demand never touches the heap
    /// mid-flight — the pool analogue of RTSJ immortal preallocation.
    void prewarm(std::size_t bytes, std::size_t count);

    /// Wrap already-filled storage as a pooled frame (no copy). The bytes
    /// rejoin this pool's free lists when the FrameBuffer dies.
    FrameBuffer adopt(std::vector<std::uint8_t>&& bytes) {
        return FrameBuffer(std::move(bytes), this);
    }

    /// Return storage to the matching free list (or free it when it is
    /// smaller than every class or the list is full).
    void recycle(std::vector<std::uint8_t>&& bytes) noexcept;

    Stats stats() const;

private:
    // Classes cover the GIOP traffic this repo benches (32 B..1 KiB
    // payloads), bulk frames, and the occasional jumbo message.
    static constexpr std::size_t kClassSizes[] = {512, 4096, 65536,
                                                  1024 * 1024};
    static constexpr std::size_t kClassCount =
        sizeof(kClassSizes) / sizeof(kClassSizes[0]);
    /// Per-class free-list bounds. Small classes keep deep lists because
    /// peak concurrent demand (frames in flight across both directions of
    /// a pipelined wire) must fit entirely in the free list for the
    /// steady state to stay allocation-free; large classes stay shallow to
    /// bound worst-case resident memory (≈ 21 MiB if every class fills).
    static constexpr std::size_t kMaxFreePerClass[] = {512, 256, 64, 16};

    const FramePoolOptions opts_;
    /// Process-unique, never-reused id keying this pool's thread-cache
    /// slots (see frame_pool.cpp): the ring tags entries with the owning
    /// pool's id instead of its pointer, so a ring slot left behind by a
    /// destroyed pool can never be mistaken for a live one.
    const std::uint64_t id_;

    mutable std::mutex mu_; ///< guards the free lists only
    std::vector<std::vector<std::uint8_t>> free_[kClassCount];
    // Relaxed atomics, not mutex-guarded fields: the thread-cached fast
    // path (see frame_pool.cpp) serves hits without touching mu_ and still
    // has to show up in stats().
    std::atomic<std::uint64_t> acquires_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> tls_hits_{0};
    std::atomic<std::uint64_t> allocations_{0};
    std::atomic<std::uint64_t> oversize_{0};
    std::atomic<std::uint64_t> recycled_{0};
};

inline void FrameBuffer::release() noexcept {
    if (home_ != nullptr) {
        FrameBufferPool* home = home_;
        home_ = nullptr;
        home->recycle(std::move(bytes_));
    }
    bytes_.clear();
}

/// Bounded, closable MPMC ring of FrameBuffers. Fixed storage: pushes and
/// pops move handles in and out of a preallocated slot array, so queueing a
/// frame never touches the heap (unlike std::deque's chunk management).
class FrameRing {
public:
    /// Capacity is rounded up to a power of two so slot indexing is a mask,
    /// not a division.
    explicit FrameRing(std::size_t capacity)
        : slots_(round_up_pow2(capacity ? capacity : 1)),
          mask_(slots_.size() - 1) {}

    /// Blocking push; false when the ring closed before space appeared.
    bool push(FrameBuffer frame) {
        std::unique_lock lk(mu_);
        if (count_ >= slots_.size() && !closed_) {
            ++waiting_pushers_;
            not_full_.wait(lk,
                           [&] { return closed_ || count_ < slots_.size(); });
            --waiting_pushers_;
        }
        if (closed_) return false;
        slots_[(head_ + count_) & mask_] = std::move(frame);
        ++count_;
        // Signal only when a popper actually sleeps: the no-waiter
        // notify_one would otherwise cost a condvar touch on every frame.
        const bool wake = waiting_poppers_ > 0;
        lk.unlock();
        if (wake) not_empty_.notify_one();
        return true;
    }

    /// Blocking pop; empty optional when closed and drained.
    std::optional<FrameBuffer> pop() {
        std::unique_lock lk(mu_);
        if (count_ == 0 && !closed_) {
            ++waiting_poppers_;
            not_empty_.wait(lk, [&] { return closed_ || count_ > 0; });
            --waiting_poppers_;
        }
        if (count_ == 0) return std::nullopt;
        FrameBuffer out = std::move(slots_[head_]);
        head_ = (head_ + 1) & mask_;
        --count_;
        const bool wake = waiting_pushers_ > 0;
        lk.unlock();
        if (wake) not_full_.notify_one();
        return out;
    }

    /// Close: wakes all waiters; pushes fail, pops drain then return empty.
    /// Frames still queued stay poppable (and are released to their pool
    /// with the ring otherwise).
    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return count_;
    }
    std::size_t capacity() const noexcept { return slots_.size(); }

private:
    static std::size_t round_up_pow2(std::size_t n) noexcept {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p;
    }

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::vector<FrameBuffer> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t waiting_pushers_ = 0;
    std::size_t waiting_poppers_ = 0;
    bool closed_ = false;
};

} // namespace compadres::net
