// Pooled wire-frame buffers — the allocation seam of the remote fast path.
//
// Every GIOP frame that crosses a transport used to be a fresh
// std::vector: one heap allocation (plus growth reallocations) per message
// on the send side and another on the receive side. A FrameBufferPool
// keeps size-classed storage on free lists so a steady-state remote hop
// recycles the same few buffers forever; the pool's allocation counter is
// what bench/remote_roundtrip gates to zero.
//
// Three pieces:
//   * FrameBuffer     — move-only handle over pooled storage; returns the
//                       storage to its home pool on destruction. Can also
//                       borrow external storage (a shared-memory arena
//                       slot) and run a release hook instead of rejoining
//                       a free list — the seam the zero-copy shm receive
//                       path hangs off.
//   * FrameBufferPool — size-classed free lists (mutex-guarded; the lock is
//                       held for a pointer swap only) with hit/miss stats.
//   * FrameRing       — fixed-capacity closable MPMC ring of FrameBuffers.
//                       Transports queue frames through this instead of a
//                       std::deque, whose chunk allocation/deallocation on
//                       block boundaries would break the zero-alloc gate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace compadres::net {

class FrameBufferPool;

/// Move-only handle over a frame's bytes. Two storage modes:
///
///   * pooled (the default): the storage is a std::vector whose capacity
///     survives the round trip through the pool, so resize() within the
///     size class never allocates;
///   * borrowed: the bytes live in storage the frame does not own (an shm
///     rx-arena slot). Death runs a release hook exactly once — retiring
///     the slot — instead of recycling anything, and an optional keepalive
///     pins the storage's owner (the segment mapping) for the frame's
///     lifetime. There is no pooled storage behind a borrowed frame, so
///     none of the pool's release-time work (scrub, free-list push)
///     applies to it.
class FrameBuffer {
public:
    /// Runs exactly once when a borrowed frame dies, from whichever thread
    /// drops the frame. `token` round-trips the value given to borrow()
    /// (the shm wire packs band + slot index into it).
    using ReleaseHook = void (*)(void* ctx, std::uint32_t token) noexcept;

    FrameBuffer() = default;
    FrameBuffer(FrameBuffer&& other) noexcept
        : bytes_(std::move(other.bytes_)), home_(other.home_),
          ext_(other.ext_), ext_size_(other.ext_size_), hook_(other.hook_),
          hook_ctx_(other.hook_ctx_), token_(other.token_),
          keepalive_(std::move(other.keepalive_)) {
        other.home_ = nullptr;
        other.bytes_.clear();
        other.clear_external();
    }
    FrameBuffer& operator=(FrameBuffer&& other) noexcept {
        if (this != &other) {
            release();
            bytes_ = std::move(other.bytes_);
            home_ = other.home_;
            ext_ = other.ext_;
            ext_size_ = other.ext_size_;
            hook_ = other.hook_;
            hook_ctx_ = other.hook_ctx_;
            token_ = other.token_;
            keepalive_ = std::move(other.keepalive_);
            other.home_ = nullptr;
            other.bytes_.clear();
            other.clear_external();
        }
        return *this;
    }
    FrameBuffer(const FrameBuffer&) = delete;
    FrameBuffer& operator=(const FrameBuffer&) = delete;
    ~FrameBuffer() { release(); }

    /// Wrap external storage as a frame. The hook fires exactly once when
    /// the frame dies; `keepalive` (optional) is held until then, so a
    /// borrowed frame can outlive the transport that minted it without
    /// its bytes being unmapped underneath it.
    static FrameBuffer borrow(std::uint8_t* data, std::size_t len,
                              ReleaseHook hook, void* ctx,
                              std::uint32_t token,
                              std::shared_ptr<void> keepalive = nullptr) {
        FrameBuffer f;
        f.ext_ = data;
        f.ext_size_ = len;
        f.hook_ = hook;
        f.hook_ctx_ = ctx;
        f.token_ = token;
        f.keepalive_ = std::move(keepalive);
        return f;
    }

    /// True when the bytes are external (release runs the hook, not a
    /// pool recycle).
    bool borrowed() const noexcept { return hook_ != nullptr; }

    std::uint8_t* data() noexcept { return hook_ ? ext_ : bytes_.data(); }
    const std::uint8_t* data() const noexcept {
        return hook_ ? ext_ : bytes_.data();
    }
    std::size_t size() const noexcept {
        return hook_ ? ext_size_ : bytes_.size();
    }
    bool empty() const noexcept { return size() == 0; }
    std::size_t capacity() const noexcept {
        return hook_ ? ext_size_ : bytes_.capacity();
    }

    /// Never allocates while n stays within the pooled capacity. On a
    /// borrowed frame, shrinking trims the view in place; growing
    /// materializes the bytes into owned storage first (the arena slot
    /// cannot be extended), releasing the borrow.
    void resize(std::size_t n) {
        if (hook_ != nullptr) {
            if (n <= ext_size_) {
                ext_size_ = n;
                return;
            }
            materialize();
        }
        bytes_.resize(n);
    }

    void assign(const std::uint8_t* src, std::size_t n) {
        if (hook_ != nullptr) release(); // content replaced wholesale
        bytes_.resize(n);
        if (n > 0) std::memcpy(bytes_.data(), src, n);
    }

    /// Return the storage to the home pool now — or, for a borrowed
    /// frame, run the release hook (also done on destruction). There is
    /// no scrub or free-list work on the borrowed path: the frame never
    /// owned pooled storage.
    void release() noexcept;

private:
    friend class FrameBufferPool;
    FrameBuffer(std::vector<std::uint8_t> bytes, FrameBufferPool* home)
        : bytes_(std::move(bytes)), home_(home) {}

    void clear_external() noexcept {
        ext_ = nullptr;
        ext_size_ = 0;
        hook_ = nullptr;
        hook_ctx_ = nullptr;
        token_ = 0;
    }

    /// Copy borrowed bytes into owned storage and release the borrow.
    void materialize() {
        std::vector<std::uint8_t> owned(ext_, ext_ + ext_size_);
        release();
        bytes_ = std::move(owned);
    }

    std::vector<std::uint8_t> bytes_;
    FrameBufferPool* home_ = nullptr; ///< null: plain heap-backed buffer
    std::uint8_t* ext_ = nullptr;     ///< borrowed storage (see borrow())
    std::size_t ext_size_ = 0;
    ReleaseHook hook_ = nullptr;
    void* hook_ctx_ = nullptr;
    std::uint32_t token_ = 0;
    std::shared_ptr<void> keepalive_;
};

/// Construction-time knobs for a FrameBufferPool instance. The defaults
/// reproduce the process-global pool's behavior; per-wire/per-lane pools
/// (net/lane_group.hpp) tune the thread-cache depths to their own burst
/// shape instead of inheriting the global ring sizing.
struct FramePoolOptions {
    /// Per-size-class thread-cache (TLS ring) depths, clamped to the
    /// compile-time maximum (16). Meaningful only with thread_cache on.
    std::size_t tls_depth[4] = {16, 16, 2, 1};
    /// Serve repeat acquire/recycle traffic from a per-thread ring without
    /// touching the pool mutex. Off by default for ad-hoc instance pools
    /// (their storage may outlive them in the ring, which is memory-safe —
    /// the ring owns plain byte vectors — but claims ring slots other
    /// pools could use); the process-global pool and lane pools enable it.
    bool thread_cache = false;
    /// Zero a buffer's bytes when it rejoins a free list. Off by default
    /// (the hot path hands stale storage straight back out); deployments
    /// that must not leak payload bytes across routes turn it on. Borrowed
    /// frames are exempt by construction — they carry no pooled storage,
    /// so their release path never scrubs anything.
    bool scrub_on_release = false;
};

/// Size-classed recycling pool for frame storage.
class FrameBufferPool {
public:
    struct Stats {
        std::uint64_t acquires = 0;    ///< acquire + acquire_storage calls
        std::uint64_t hits = 0;        ///< served without fresh allocation
        std::uint64_t tls_hits = 0;    ///< subset of hits: thread cache,
                                       ///< no pool mutex touched
        std::uint64_t allocations = 0; ///< fresh storage allocated (misses)
        std::uint64_t oversize = 0;    ///< above the largest class: unpooled
        std::uint64_t recycled = 0;    ///< buffers returned to a free list
        std::uint64_t borrowed = 0;    ///< frames minted over external
                                       ///< storage (shm arena views) —
                                       ///< see note_borrowed()
    };

    explicit FrameBufferPool(FramePoolOptions options = {});

    /// Process-wide pool shared by the transports.
    static FrameBufferPool& global();

    /// A buffer of exactly `size` bytes (content uninitialized/stale).
    FrameBuffer acquire(std::size_t size);

    /// Fill `out[0..count)` with buffers of exactly `size` bytes under a
    /// single free-list lock acquisition (the per-call TLS path is skipped
    /// — batch callers are replaying a backlog, not iterating a hot loop).
    /// Always fills all `count` slots, allocating for misses; returns how
    /// many came from the free list.
    std::size_t acquire_batch(std::size_t size, FrameBuffer* out,
                              std::size_t count);

    /// Raw storage with capacity >= `capacity_hint` and size 0 — the encode
    /// path adopts this into a cdr::OutputStream, then wraps the encoded
    /// bytes back into a FrameBuffer with adopt().
    std::vector<std::uint8_t> acquire_storage(std::size_t capacity_hint);

    /// Fill the free list of the class covering `bytes` with up to `count`
    /// buffers (bounded by the class cap). Real-time deployments call this
    /// at initialization so peak in-flight demand never touches the heap
    /// mid-flight — the pool analogue of RTSJ immortal preallocation.
    void prewarm(std::size_t bytes, std::size_t count);

    /// Wrap already-filled storage as a pooled frame (no copy). The bytes
    /// rejoin this pool's free lists when the FrameBuffer dies.
    FrameBuffer adopt(std::vector<std::uint8_t>&& bytes) {
        return FrameBuffer(std::move(bytes), this);
    }

    /// Return storage to the matching free list (or free it when it is
    /// smaller than every class or the list is full).
    void recycle(std::vector<std::uint8_t>&& bytes) noexcept;

    /// Count a frame handed out over external storage on this pool's
    /// account. Borrowed frames never touch the free lists, so without
    /// this the pool's books would show an shm-fed consumer doing no
    /// acquire traffic at all; trace_report surfaces the split.
    void note_borrowed() noexcept {
        borrowed_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Flip scrub-on-release at runtime (see FramePoolOptions).
    void set_scrub_on_release(bool on) noexcept {
        scrub_.store(on, std::memory_order_relaxed);
    }
    bool scrub_on_release() const noexcept {
        return scrub_.load(std::memory_order_relaxed);
    }

    Stats stats() const;

private:
    // Classes cover the GIOP traffic this repo benches (32 B..1 KiB
    // payloads), bulk frames, and the occasional jumbo message.
    static constexpr std::size_t kClassSizes[] = {512, 4096, 65536,
                                                  1024 * 1024};
    static constexpr std::size_t kClassCount =
        sizeof(kClassSizes) / sizeof(kClassSizes[0]);
    /// Per-class free-list bounds. Small classes keep deep lists because
    /// peak concurrent demand (frames in flight across both directions of
    /// a pipelined wire) must fit entirely in the free list for the
    /// steady state to stay allocation-free; large classes stay shallow to
    /// bound worst-case resident memory (≈ 21 MiB if every class fills).
    static constexpr std::size_t kMaxFreePerClass[] = {512, 256, 64, 16};

    const FramePoolOptions opts_;
    /// Process-unique, never-reused id keying this pool's thread-cache
    /// slots (see frame_pool.cpp): the ring tags entries with the owning
    /// pool's id instead of its pointer, so a ring slot left behind by a
    /// destroyed pool can never be mistaken for a live one.
    const std::uint64_t id_;

    mutable std::mutex mu_; ///< guards the free lists only
    std::vector<std::vector<std::uint8_t>> free_[kClassCount];
    // Relaxed atomics, not mutex-guarded fields: the thread-cached fast
    // path (see frame_pool.cpp) serves hits without touching mu_ and still
    // has to show up in stats().
    std::atomic<std::uint64_t> acquires_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> tls_hits_{0};
    std::atomic<std::uint64_t> allocations_{0};
    std::atomic<std::uint64_t> oversize_{0};
    std::atomic<std::uint64_t> recycled_{0};
    std::atomic<std::uint64_t> borrowed_{0};
    std::atomic<bool> scrub_{false};
};

inline void FrameBuffer::release() noexcept {
    if (hook_ != nullptr) {
        // Borrowed path: retire the external slot and drop the keepalive.
        // Deliberately no scrub and no free-list traffic — the bytes
        // belong to the arena owner, not to any pool.
        ReleaseHook hook = hook_;
        void* ctx = hook_ctx_;
        const std::uint32_t token = token_;
        clear_external();
        hook(ctx, token);
        keepalive_.reset();
    }
    if (home_ != nullptr) {
        FrameBufferPool* home = home_;
        home_ = nullptr;
        home->recycle(std::move(bytes_));
    }
    bytes_.clear();
}

/// Bounded, closable MPMC ring of FrameBuffers. Fixed storage: pushes and
/// pops move handles in and out of a preallocated slot array, so queueing a
/// frame never touches the heap (unlike std::deque's chunk management).
class FrameRing {
public:
    /// Capacity is rounded up to a power of two so slot indexing is a mask,
    /// not a division.
    explicit FrameRing(std::size_t capacity)
        : slots_(round_up_pow2(capacity ? capacity : 1)),
          mask_(slots_.size() - 1) {}

    /// Blocking push; false when the ring closed before space appeared.
    bool push(FrameBuffer frame) {
        std::unique_lock lk(mu_);
        if (count_ >= slots_.size() && !closed_) {
            ++waiting_pushers_;
            not_full_.wait(lk,
                           [&] { return closed_ || count_ < slots_.size(); });
            --waiting_pushers_;
        }
        if (closed_) return false;
        slots_[(head_ + count_) & mask_] = std::move(frame);
        ++count_;
        // Signal only when a popper actually sleeps: the no-waiter
        // notify_one would otherwise cost a condvar touch on every frame.
        const bool wake = waiting_poppers_ > 0;
        lk.unlock();
        if (wake) not_empty_.notify_one();
        return true;
    }

    /// Blocking pop; empty optional when closed and drained.
    std::optional<FrameBuffer> pop() {
        std::unique_lock lk(mu_);
        if (count_ == 0 && !closed_) {
            ++waiting_poppers_;
            not_empty_.wait(lk, [&] { return closed_ || count_ > 0; });
            --waiting_poppers_;
        }
        if (count_ == 0) return std::nullopt;
        FrameBuffer out = std::move(slots_[head_]);
        head_ = (head_ + 1) & mask_;
        --count_;
        const bool wake = waiting_pushers_ > 0;
        lk.unlock();
        if (wake) not_full_.notify_one();
        return out;
    }

    /// Close: wakes all waiters; pushes fail, pops drain then return empty.
    /// Frames still queued stay poppable (and are released to their pool
    /// with the ring otherwise).
    void close() {
        {
            std::lock_guard lk(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    std::size_t size() const {
        std::lock_guard lk(mu_);
        return count_;
    }
    std::size_t capacity() const noexcept { return slots_.size(); }

private:
    static std::size_t round_up_pow2(std::size_t n) noexcept {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p;
    }

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::vector<FrameBuffer> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t waiting_pushers_ = 0;
    std::size_t waiting_poppers_ = 0;
    bool closed_ = false;
};

} // namespace compadres::net
