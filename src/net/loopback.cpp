#include "net/transport.hpp"

#include "rt/queue.hpp"

#include <memory>

namespace compadres::net {

namespace {

using FrameQueue = rt::BoundedQueue<std::vector<std::uint8_t>>;

class LoopbackTransport final : public Transport {
public:
    LoopbackTransport(std::shared_ptr<FrameQueue> tx,
                      std::shared_ptr<FrameQueue> rx, std::string label)
        : tx_(std::move(tx)), rx_(std::move(rx)), label_(std::move(label)) {}

    ~LoopbackTransport() override { close(); }

    void send_frame(const std::vector<std::uint8_t>& frame) override {
        if (tx_->push(frame) == rt::PushResult::kClosed) {
            throw TransportError("loopback peer closed");
        }
    }

    std::optional<std::vector<std::uint8_t>> recv_frame() override {
        return rx_->pop();
    }

    void close() override {
        tx_->close();
        rx_->close();
    }

    std::string peer_description() const override { return label_; }

private:
    std::shared_ptr<FrameQueue> tx_;
    std::shared_ptr<FrameQueue> rx_;
    std::string label_;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(std::size_t queue_capacity) {
    auto a_to_b = std::make_shared<FrameQueue>(queue_capacity);
    auto b_to_a = std::make_shared<FrameQueue>(queue_capacity);
    return {std::make_unique<LoopbackTransport>(a_to_b, b_to_a, "loopback:a"),
            std::make_unique<LoopbackTransport>(b_to_a, a_to_b, "loopback:b")};
}

} // namespace compadres::net
