#include "net/ring_transport.hpp"

#include <memory>

namespace compadres::net {

namespace {

/// Heap-ring policy for RingPairTransport: two shared FrameRings, one per
/// direction. FrameRing::pop blocks until data or close, so recv never
/// reports idle; push consumes the frame even when the ring closed (there
/// is no fallback wire to reroute it to).
struct HeapRingPair {
    std::shared_ptr<FrameRing> tx;
    std::shared_ptr<FrameRing> rx;

    bool send(FrameBuffer& frame) { return tx->push(std::move(frame)); }

    RingRecv recv() {
        RingRecv r;
        r.frame = rx->pop();
        r.closed = !r.frame.has_value();
        return r;
    }

    void close() {
        tx->close();
        rx->close();
    }

    std::size_t tx_depth() const { return tx->size(); }
    std::size_t rx_depth() const { return rx->size(); }
};

/// In-process pipe endpoint. Frames travel as pooled FrameBuffers through
/// fixed-slot FrameRings, so a steady-state loopback hop never allocates.
class LoopbackTransport final : public RingPairTransport<HeapRingPair> {
public:
    using RingPairTransport::RingPairTransport;
    ~LoopbackTransport() override { close(); }

private:
    void on_send_down(FrameBuffer&&) override {
        throw TransportError("loopback peer closed");
    }
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(std::size_t queue_capacity) {
    auto a_to_b = std::make_shared<FrameRing>(queue_capacity);
    auto b_to_a = std::make_shared<FrameRing>(queue_capacity);
    return {std::make_unique<LoopbackTransport>(
                HeapRingPair{a_to_b, b_to_a}, "loopback:a"),
            std::make_unique<LoopbackTransport>(
                HeapRingPair{b_to_a, a_to_b}, "loopback:b")};
}

} // namespace compadres::net
