#include "net/transport.hpp"

#include <atomic>
#include <memory>

namespace compadres::net {

namespace {

/// In-process pipe endpoint. Frames travel as pooled FrameBuffers through
/// fixed-slot FrameRings, so a steady-state loopback hop never allocates.
class LoopbackTransport final : public Transport {
public:
    LoopbackTransport(std::shared_ptr<FrameRing> tx,
                      std::shared_ptr<FrameRing> rx, std::string label)
        : tx_(std::move(tx)), rx_(std::move(rx)), label_(std::move(label)) {}

    ~LoopbackTransport() override { close(); }

    void send_frame(FrameBuffer frame) override {
        if (!tx_->push(std::move(frame))) {
            throw TransportError("loopback peer closed");
        }
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    std::optional<FrameBuffer> recv_frame() override {
        std::optional<FrameBuffer> frame = rx_->pop();
        if (frame) frames_received_.fetch_add(1, std::memory_order_relaxed);
        return frame;
    }

    void close() override {
        tx_->close();
        rx_->close();
    }

    std::string peer_description() const override { return label_; }

    TransportStats stats() const override {
        TransportStats s;
        s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
        s.frames_received = frames_received_.load(std::memory_order_relaxed);
        return s;
    }

private:
    std::shared_ptr<FrameRing> tx_;
    std::shared_ptr<FrameRing> rx_;
    std::string label_;
    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> frames_received_{0};
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(std::size_t queue_capacity) {
    auto a_to_b = std::make_shared<FrameRing>(queue_capacity);
    auto b_to_a = std::make_shared<FrameRing>(queue_capacity);
    return {std::make_unique<LoopbackTransport>(a_to_b, b_to_a, "loopback:a"),
            std::make_unique<LoopbackTransport>(b_to_a, a_to_b, "loopback:b")};
}

} // namespace compadres::net
