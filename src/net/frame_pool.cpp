#include "net/frame_pool.hpp"

namespace compadres::net {

namespace {

/// Smallest class that can hold `n`; kClassCount when n is oversize.
std::size_t class_for_acquire(std::size_t n,
                              const std::size_t (&sizes)[4]) noexcept {
    for (std::size_t c = 0; c < 4; ++c) {
        if (n <= sizes[c]) return c;
    }
    return 4;
}

/// Largest class whose size fits within `capacity`; kClassCount when the
/// storage is smaller than every class (not worth keeping).
std::size_t class_for_recycle(std::size_t capacity,
                              const std::size_t (&sizes)[4]) noexcept {
    for (std::size_t c = 4; c-- > 0;) {
        if (capacity >= sizes[c]) return c;
    }
    return 4;
}

/// One-slot thread cache over the process-wide pool. The hot remote path
/// recycles a frame and immediately acquires the next one on the same
/// thread (a bridge reader recycles the inbound frame, then encodes its
/// reply into fresh storage), so a single slot absorbs the pool-mutex
/// round trip for that traffic. Only the immortal global() pool uses the
/// slot: per-instance pools (tests, tools) can die while the thread still
/// holds their storage, and an owner check against a dead pool would be a
/// dangling compare.
struct TlsSlot {
    std::vector<std::uint8_t> storage;
    bool full = false;
};
thread_local TlsSlot t_slot;

} // namespace

FrameBufferPool::FrameBufferPool() {
    // Reserve the free-list spines up front so recycle() itself never
    // allocates on the hot path.
    for (std::size_t c = 0; c < kClassCount; ++c) {
        free_[c].reserve(kMaxFreePerClass[c]);
    }
}

FrameBufferPool& FrameBufferPool::global() {
    static FrameBufferPool instance;
    return instance;
}

std::vector<std::uint8_t> FrameBufferPool::acquire_storage(
    std::size_t capacity_hint) {
    if (this == &global() && t_slot.full &&
        t_slot.storage.capacity() >= capacity_hint) {
        acquires_.fetch_add(1, std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        t_slot.full = false;
        std::vector<std::uint8_t> out = std::move(t_slot.storage);
        out.clear();
        return out;
    }
    const std::size_t cls = class_for_acquire(capacity_hint, kClassSizes);
    acquires_.fetch_add(1, std::memory_order_relaxed);
    if (cls < kClassCount) {
        std::lock_guard lk(mu_);
        if (!free_[cls].empty()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::uint8_t> out = std::move(free_[cls].back());
            free_[cls].pop_back();
            out.clear();
            return out;
        }
    }
    if (cls < kClassCount) {
        allocations_.fetch_add(1, std::memory_order_relaxed);
    } else {
        oversize_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<std::uint8_t> fresh;
    // A miss reserves the full class size so the buffer re-enters the same
    // class on recycle and every later resize within the class is free.
    fresh.reserve(cls < kClassCount ? kClassSizes[cls] : capacity_hint);
    return fresh;
}

void FrameBufferPool::prewarm(std::size_t bytes, std::size_t count) {
    const std::size_t cls = class_for_acquire(bytes, kClassSizes);
    if (cls >= kClassCount) return; // oversize requests are never pooled
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<std::uint8_t> storage;
        storage.reserve(kClassSizes[cls]);
        {
            std::lock_guard lk(mu_);
            if (free_[cls].size() >= kMaxFreePerClass[cls]) return;
            free_[cls].push_back(std::move(storage));
        }
    }
}

FrameBuffer FrameBufferPool::acquire(std::size_t size) {
    std::vector<std::uint8_t> storage = acquire_storage(size);
    storage.resize(size);
    return FrameBuffer(std::move(storage), this);
}

void FrameBufferPool::recycle(std::vector<std::uint8_t>&& bytes) noexcept {
    const std::size_t cls = class_for_recycle(bytes.capacity(), kClassSizes);
    if (cls >= kClassCount) return; // sub-class storage: just free it
    if (this == &global() && !t_slot.full) {
        recycled_.fetch_add(1, std::memory_order_relaxed);
        t_slot.storage = std::move(bytes);
        t_slot.full = true;
        return;
    }
    std::lock_guard lk(mu_);
    if (free_[cls].size() >= kMaxFreePerClass[cls]) return; // bound memory
    recycled_.fetch_add(1, std::memory_order_relaxed);
    free_[cls].push_back(std::move(bytes));
}

FrameBufferPool::Stats FrameBufferPool::stats() const {
    Stats s;
    s.acquires = acquires_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.allocations = allocations_.load(std::memory_order_relaxed);
    s.oversize = oversize_.load(std::memory_order_relaxed);
    s.recycled = recycled_.load(std::memory_order_relaxed);
    return s;
}

} // namespace compadres::net
