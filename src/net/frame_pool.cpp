#include "net/frame_pool.hpp"

namespace compadres::net {

namespace {

/// Smallest class that can hold `n`; kClassCount when n is oversize.
std::size_t class_for_acquire(std::size_t n,
                              const std::size_t (&sizes)[4]) noexcept {
    for (std::size_t c = 0; c < 4; ++c) {
        if (n <= sizes[c]) return c;
    }
    return 4;
}

/// Largest class whose size fits within `capacity`; kClassCount when the
/// storage is smaller than every class (not worth keeping).
std::size_t class_for_recycle(std::size_t capacity,
                              const std::size_t (&sizes)[4]) noexcept {
    for (std::size_t c = 4; c-- > 0;) {
        if (capacity >= sizes[c]) return c;
    }
    return 4;
}

/// Per-size-class thread cache over the process-wide pool. The hot remote
/// path recycles a frame and immediately acquires the next one on the
/// same thread (a bridge reader recycles the inbound frame, then encodes
/// its reply into fresh storage), so a shallow cache absorbs the
/// pool-mutex round trip for that traffic.
///
/// Why per-class and not one shared stack: a reactor thread serves many
/// wires whose frames span size classes. With a single shared slot,
/// interleaved classes evict each other (every acquire after a class
/// switch falls through to the mutex), and a capacity>=hint check would
/// hand a 1 MiB buffer to a 512 B acquire, hoarding the large class
/// behind small traffic. Per-class slots keep the hit rate flat no matter
/// how many wires share the thread.
///
/// Why deeper than one slot: a corked reactor pump holds a whole burst of
/// frames in flight on one thread — acquired one per assembled frame,
/// recycled together when the batched flush completes — so a one-slot
/// cache serves only the first of each burst and sends the rest through
/// the mutex twice (acquire and recycle). Depth follows the writer's
/// coalescing batch for the small classes and tapers where a cached
/// buffer is real memory (a 1 MiB slot per thread is plenty).
///
/// Only the immortal global() pool uses the cache: per-instance pools
/// (tests, tools) can die while the thread still holds their storage, and
/// an owner check against a dead pool would be a dangling compare.
constexpr std::size_t kTlsDepthMax = 16;
constexpr std::size_t kTlsDepth[4] = {16, 16, 2, 1};
struct TlsCache {
    std::vector<std::uint8_t> storage[4][kTlsDepthMax];
    std::size_t count[4] = {};
};
thread_local TlsCache t_cache;

} // namespace

FrameBufferPool::FrameBufferPool() {
    // Reserve the free-list spines up front so recycle() itself never
    // allocates on the hot path.
    for (std::size_t c = 0; c < kClassCount; ++c) {
        free_[c].reserve(kMaxFreePerClass[c]);
    }
}

FrameBufferPool& FrameBufferPool::global() {
    static FrameBufferPool instance;
    return instance;
}

std::vector<std::uint8_t> FrameBufferPool::acquire_storage(
    std::size_t capacity_hint) {
    const std::size_t cls = class_for_acquire(capacity_hint, kClassSizes);
    acquires_.fetch_add(1, std::memory_order_relaxed);
    if (cls < kClassCount && this == &global() && t_cache.count[cls] > 0) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        tls_hits_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t i = --t_cache.count[cls];
        std::vector<std::uint8_t> out = std::move(t_cache.storage[cls][i]);
        out.clear();
        return out;
    }
    if (cls < kClassCount) {
        std::lock_guard lk(mu_);
        if (!free_[cls].empty()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::uint8_t> out = std::move(free_[cls].back());
            free_[cls].pop_back();
            out.clear();
            return out;
        }
    }
    if (cls < kClassCount) {
        allocations_.fetch_add(1, std::memory_order_relaxed);
    } else {
        oversize_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<std::uint8_t> fresh;
    // A miss reserves the full class size so the buffer re-enters the same
    // class on recycle and every later resize within the class is free.
    fresh.reserve(cls < kClassCount ? kClassSizes[cls] : capacity_hint);
    return fresh;
}

void FrameBufferPool::prewarm(std::size_t bytes, std::size_t count) {
    const std::size_t cls = class_for_acquire(bytes, kClassSizes);
    if (cls >= kClassCount) return; // oversize requests are never pooled
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<std::uint8_t> storage;
        storage.reserve(kClassSizes[cls]);
        {
            std::lock_guard lk(mu_);
            if (free_[cls].size() >= kMaxFreePerClass[cls]) return;
            free_[cls].push_back(std::move(storage));
        }
    }
}

FrameBuffer FrameBufferPool::acquire(std::size_t size) {
    std::vector<std::uint8_t> storage = acquire_storage(size);
    storage.resize(size);
    return FrameBuffer(std::move(storage), this);
}

void FrameBufferPool::recycle(std::vector<std::uint8_t>&& bytes) noexcept {
    const std::size_t cls = class_for_recycle(bytes.capacity(), kClassSizes);
    if (cls >= kClassCount) return; // sub-class storage: just free it
    if (this == &global() && t_cache.count[cls] < kTlsDepth[cls]) {
        recycled_.fetch_add(1, std::memory_order_relaxed);
        t_cache.storage[cls][t_cache.count[cls]++] = std::move(bytes);
        return;
    }
    std::lock_guard lk(mu_);
    if (free_[cls].size() >= kMaxFreePerClass[cls]) return; // bound memory
    recycled_.fetch_add(1, std::memory_order_relaxed);
    free_[cls].push_back(std::move(bytes));
}

FrameBufferPool::Stats FrameBufferPool::stats() const {
    Stats s;
    s.acquires = acquires_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.tls_hits = tls_hits_.load(std::memory_order_relaxed);
    s.allocations = allocations_.load(std::memory_order_relaxed);
    s.oversize = oversize_.load(std::memory_order_relaxed);
    s.recycled = recycled_.load(std::memory_order_relaxed);
    return s;
}

} // namespace compadres::net
