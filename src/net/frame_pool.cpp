#include "net/frame_pool.hpp"

namespace compadres::net {

namespace {

/// Smallest class that can hold `n`; kClassCount when n is oversize.
std::size_t class_for_acquire(std::size_t n,
                              const std::size_t (&sizes)[4]) noexcept {
    for (std::size_t c = 0; c < 4; ++c) {
        if (n <= sizes[c]) return c;
    }
    return 4;
}

/// Largest class whose size fits within `capacity`; kClassCount when the
/// storage is smaller than every class (not worth keeping).
std::size_t class_for_recycle(std::size_t capacity,
                              const std::size_t (&sizes)[4]) noexcept {
    for (std::size_t c = 4; c-- > 0;) {
        if (capacity >= sizes[c]) return c;
    }
    return 4;
}

/// Per-size-class thread cache over the process-wide pool. The hot remote
/// path recycles a frame and immediately acquires the next one on the
/// same thread (a bridge reader recycles the inbound frame, then encodes
/// its reply into fresh storage), so a shallow cache absorbs the
/// pool-mutex round trip for that traffic.
///
/// Why per-class and not one shared stack: a reactor thread serves many
/// wires whose frames span size classes. With a single shared slot,
/// interleaved classes evict each other (every acquire after a class
/// switch falls through to the mutex), and a capacity>=hint check would
/// hand a 1 MiB buffer to a 512 B acquire, hoarding the large class
/// behind small traffic. Per-class slots keep the hit rate flat no matter
/// how many wires share the thread.
///
/// Why deeper than one slot: a corked reactor pump holds a whole burst of
/// frames in flight on one thread — acquired one per assembled frame,
/// recycled together when the batched flush completes — so a one-slot
/// cache serves only the first of each burst and sends the rest through
/// the mutex twice (acquire and recycle). Depth follows the writer's
/// coalescing batch for the small classes and tapers where a cached
/// buffer is real memory (a 1 MiB slot per thread is plenty).
///
/// Slots are claimed per class by whichever thread-cache-enabled pool
/// recycles into an empty slot first, and tagged with the owner pool's
/// never-reused id — not its pointer, so a slot left behind by a destroyed
/// pool can never be mistaken for a live one (the storage itself is plain
/// byte vectors the ring owns outright; a dead owner just means the slot
/// sits idle until its entries are displaced). A pool whose class slot is
/// held by another pool falls through to its own mutexed free list —
/// still allocation-free, just not mutex-free — instead of evicting, so
/// two pools alternating on one thread never thrash each other's warm
/// storage. In practice each reactor loop serves one band's lane, so each
/// loop thread's slots end up owned by that lane's pool.
constexpr std::size_t kTlsDepthMax = 16;
struct TlsCache {
    std::vector<std::uint8_t> storage[4][kTlsDepthMax];
    std::uint64_t owner[4] = {}; ///< pool id holding the class slot; 0: free
    std::size_t count[4] = {};
};
thread_local TlsCache t_cache;

std::uint64_t next_pool_id() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    // Pre-increment: id 0 stays reserved as the "slot unclaimed" tag.
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

} // namespace

FrameBufferPool::FrameBufferPool(FramePoolOptions options)
    : opts_(options), id_(next_pool_id()) {
    scrub_.store(options.scrub_on_release, std::memory_order_relaxed);
    // Reserve the free-list spines up front so recycle() itself never
    // allocates on the hot path.
    for (std::size_t c = 0; c < kClassCount; ++c) {
        free_[c].reserve(kMaxFreePerClass[c]);
    }
}

FrameBufferPool& FrameBufferPool::global() {
    static FrameBufferPool instance{[] {
        FramePoolOptions o;
        o.thread_cache = true;
        return o;
    }()};
    return instance;
}

std::vector<std::uint8_t> FrameBufferPool::acquire_storage(
    std::size_t capacity_hint) {
    const std::size_t cls = class_for_acquire(capacity_hint, kClassSizes);
    acquires_.fetch_add(1, std::memory_order_relaxed);
    if (cls < kClassCount && opts_.thread_cache &&
        t_cache.owner[cls] == id_ && t_cache.count[cls] > 0) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        tls_hits_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t i = --t_cache.count[cls];
        std::vector<std::uint8_t> out = std::move(t_cache.storage[cls][i]);
        out.clear();
        return out;
    }
    if (cls < kClassCount) {
        std::lock_guard lk(mu_);
        if (!free_[cls].empty()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            std::vector<std::uint8_t> out = std::move(free_[cls].back());
            free_[cls].pop_back();
            out.clear();
            return out;
        }
    }
    if (cls < kClassCount) {
        allocations_.fetch_add(1, std::memory_order_relaxed);
    } else {
        oversize_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<std::uint8_t> fresh;
    // A miss reserves the full class size so the buffer re-enters the same
    // class on recycle and every later resize within the class is free.
    fresh.reserve(cls < kClassCount ? kClassSizes[cls] : capacity_hint);
    return fresh;
}

void FrameBufferPool::prewarm(std::size_t bytes, std::size_t count) {
    const std::size_t cls = class_for_acquire(bytes, kClassSizes);
    if (cls >= kClassCount) return; // oversize requests are never pooled
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<std::uint8_t> storage;
        storage.reserve(kClassSizes[cls]);
        {
            std::lock_guard lk(mu_);
            if (free_[cls].size() >= kMaxFreePerClass[cls]) return;
            free_[cls].push_back(std::move(storage));
        }
    }
}

FrameBuffer FrameBufferPool::acquire(std::size_t size) {
    std::vector<std::uint8_t> storage = acquire_storage(size);
    storage.resize(size);
    return FrameBuffer(std::move(storage), this);
}

std::size_t FrameBufferPool::acquire_batch(std::size_t size, FrameBuffer* out,
                                           std::size_t count) {
    if (count == 0) return 0;
    const std::size_t cls = class_for_acquire(size, kClassSizes);
    acquires_.fetch_add(count, std::memory_order_relaxed);
    std::size_t served = 0;
    if (cls < kClassCount) {
        std::lock_guard lk(mu_);
        while (served < count && !free_[cls].empty()) {
            std::vector<std::uint8_t> storage = std::move(free_[cls].back());
            free_[cls].pop_back();
            storage.resize(size);
            out[served++] = FrameBuffer(std::move(storage), this);
        }
    }
    if (served > 0) hits_.fetch_add(served, std::memory_order_relaxed);
    if (served < count) {
        auto& miss_counter = cls < kClassCount ? allocations_ : oversize_;
        miss_counter.fetch_add(count - served, std::memory_order_relaxed);
    }
    for (std::size_t i = served; i < count; ++i) {
        std::vector<std::uint8_t> fresh;
        fresh.reserve(cls < kClassCount ? kClassSizes[cls] : size);
        fresh.resize(size);
        out[i] = FrameBuffer(std::move(fresh), this);
    }
    return served;
}

void FrameBufferPool::recycle(std::vector<std::uint8_t>&& bytes) noexcept {
    if (scrub_.load(std::memory_order_relaxed) && !bytes.empty()) {
        std::memset(bytes.data(), 0, bytes.size());
    }
    const std::size_t cls = class_for_recycle(bytes.capacity(), kClassSizes);
    if (cls >= kClassCount) return; // sub-class storage: just free it
    if (opts_.thread_cache) {
        if (t_cache.count[cls] == 0) t_cache.owner[cls] = id_; // claim
        const std::size_t depth = opts_.tls_depth[cls] < kTlsDepthMax
                                      ? opts_.tls_depth[cls]
                                      : kTlsDepthMax;
        if (t_cache.owner[cls] == id_ && t_cache.count[cls] < depth) {
            recycled_.fetch_add(1, std::memory_order_relaxed);
            t_cache.storage[cls][t_cache.count[cls]++] = std::move(bytes);
            return;
        }
    }
    std::lock_guard lk(mu_);
    if (free_[cls].size() >= kMaxFreePerClass[cls]) return; // bound memory
    recycled_.fetch_add(1, std::memory_order_relaxed);
    free_[cls].push_back(std::move(bytes));
}

FrameBufferPool::Stats FrameBufferPool::stats() const {
    Stats s;
    s.acquires = acquires_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.tls_hits = tls_hits_.load(std::memory_order_relaxed);
    s.allocations = allocations_.load(std::memory_order_relaxed);
    s.oversize = oversize_.load(std::memory_order_relaxed);
    s.recycled = recycled_.load(std::memory_order_relaxed);
    s.borrowed = borrowed_.load(std::memory_order_relaxed);
    return s;
}

} // namespace compadres::net
