// Shared-memory zero-copy wire for co-located endpoints.
//
// Every route used to ride TCP through the kernel even when both ends
// share a host — the dominant deployment in the paper's own co-located
// evaluation. ShmTransport keeps the Transport pooled-frame contract but
// moves the bytes through a POSIX shared-memory segment instead: per
// priority band, a pair of fixed-capacity lock-free SPSC slot rings plus
// one payload arena per direction, all inside one `shm_open` + `mmap`
// mapping. A steady-path send is a bump-allocate in the band's arena,
// one memcpy of the frame bytes, and a release-store publishing the slot
// index — zero syscalls, zero kernel copies. The receive path is
// zero-copy: recv hands out a borrowed FrameBuffer viewing the arena
// slot in place, and the slot is retired only when that frame dies (see
// "retire window" below). Receivers spin briefly, then sleep on a
// (non-private) futex with the same only-if-waiters discipline FrameRing
// uses for its condvars: a producer touches the futex word only when a
// consumer has registered as waiting, so a busy pipeline never pays a
// wake syscall.
//
// Retire window: an SPSC ring tail must advance contiguously, but the
// app can drop borrowed frames in any order (or hold one for a long
// time). The consumer therefore tracks a per-slot released bitmap and
// publishes the tail over the maximal released prefix; when the app pins
// more slots than the configured budget, recv falls back to copying the
// frame out (counted — shm_rx_copies stays 0 in a steady state that
// drops frames promptly) so the producer is never wedged by a leak.
//
// Bands: one segment carries `bands` direction pairs, mirroring
// LaneGroup's priority-banded lanes — the band in the GIOP flags octet
// picks the ring, each band has its own arena and space futex (so a bulk
// band blocked on backpressure never stalls an urgent send), the single
// receive thread drains band 0 first, and per-band depth/stall counters
// feed trace_report. Failover (oversize frame, abandon, peer death)
// reroutes all bands onto the one TCP wire at once, keeping per-band
// frame order.
//
// The zircon split (control channel / bulk shared segment) is the model:
// a plain TCP connection stays open next to the segment and carries the
// small control messages — the `compadres.shm` hello handshake that
// exchanges segment name + generation, the `bye` that starts an orderly
// failover — and doubles as the full fallback wire whenever shared
// memory cannot be used (peer on another host, /dev/shm unavailable,
// version or generation mismatch, oversize frame, peer death).
//
// Failover never loses or duplicates a frame. The abandoning side stops
// consuming its inbound ring at a frozen tail and sends `bye`; the peer
// reads the frozen tail, resends exactly the unconsumed [tail, head)
// frames over TCP ahead of any newer traffic, and drains its own inbound
// ring (the abandoner stopped producing before `bye`, and the TCP stream
// orders `bye` ahead of all post-abandon frames). Peer *death* is
// detected by pid liveness + attach generation: published frames still
// in the survivor's inbound ring are delivered before the transport
// reports closed.
//
// Segment layout, versioned header, and liveness words are in shm_detail
// below so tests (and DESIGN.md §13) can reason about them directly.
#pragma once

#include "net/ring_transport.hpp"
#include "net/tcp.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace compadres::net {

struct ShmOptions {
    /// Slots per band per direction (rounded up to a power of two).
    /// Bounds frames in flight exactly like a FrameRing's capacity.
    std::size_t ring_capacity = 256;
    /// Payload arena bytes per band per direction. Frames are
    /// bump-allocated here; a frame never spans the wrap boundary (the
    /// producer skips to the start instead, and the consumer mirrors the
    /// skip deterministically).
    std::size_t arena_bytes = 1 * 1024 * 1024;
    /// Largest frame carried through the segment (clamped to arena/2).
    /// A larger frame triggers an orderly failover to the TCP wire —
    /// frames on one route must stay ordered, so the transport cannot
    /// split traffic across both paths.
    std::size_t max_frame_bytes = 256 * 1024;
    /// Direction pairs in the segment, one per priority band (1..8,
    /// creator-side; the attacher reads the count from the header). The
    /// GIOP flags-octet band picks the ring, clamped LaneGroup-style to
    /// bands-1.
    std::size_t bands = 1;
    /// Consumer pause-spins before registering as a futex waiter. Kept
    /// deliberately small: on a single-core host the producer cannot run
    /// while the consumer spins, so a long spin only burns the quantum.
    std::size_t spin_budget = 64;
    /// Futex sleep per wait cycle, µs. Doubles as the cadence at which a
    /// blocked receiver polls the TCP control channel and peer liveness.
    std::size_t wait_cycle_us = 10 * 1000;
    /// Hand inbound frames out as borrowed views into the rx arena
    /// (zero-copy) instead of copying into a pooled buffer. On by
    /// default; the bench's copying baseline turns it off.
    bool borrowed_frames = true;
    /// Pinned-slot backpressure budget: the most rx slots (per band) the
    /// app may hold via undropped borrowed frames before recv falls back
    /// to copy-out (counted in shm_rx_copies / shm_rx_pin_stalls). 0
    /// means ring_capacity / 2; always clamped to ring_capacity - 1.
    std::size_t max_pinned_slots = 0;
    /// Pool inbound frames are copied out into (pin budget exhausted or
    /// borrowed_frames off); nullptr = process global.
    FrameBufferPool* pool = nullptr;
};

namespace shm_detail {

inline constexpr char kMagic[8] = {'C', 'P', 'D', 'S', 'H', 'M', '0', '1'};
/// v2: banded segments — the header grew a `bands` count and the
/// direction blocks moved out of the header into a per-(side, band)
/// array. v1 peers nack the hello and both sides stay on TCP.
inline constexpr std::uint32_t kVersion = 2;
/// Direction pairs one segment can carry (the GIOP flags octet caps the
/// band at 7, mirroring LaneGroup::kMaxLanes).
inline constexpr std::size_t kMaxShmBands = 8;
/// shm_open name prefix; in /dev/shm the leading '/' is stripped.
inline constexpr const char* kNamePrefix = "/compadres.";

/// One direction's control words, produced by exactly one side (SPSC).
/// Cache-line aligned so the two directions never false-share.
struct alignas(64) SegDir {
    /// Slots published (monotone; slot index = head & (capacity-1)).
    std::atomic<std::uint32_t> head;
    /// Slots consumed (monotone; written by the consumer).
    std::atomic<std::uint32_t> tail;
    /// Arena bytes retired by the consumer (monotone, includes wrap
    /// skips). The producer's free-space check is
    /// arena_bytes - (arena_head - arena_tail).
    std::atomic<std::uint64_t> arena_tail;
    /// Producer closed this direction (graceful close); consumer drains
    /// the remaining [tail, head) then treats the ring as ended.
    std::atomic<std::uint32_t> closed;
    /// Futex word + waiter count for "data available" (consumer sleeps,
    /// producer wakes only when waiters != 0).
    std::atomic<std::uint32_t> data_seq;
    std::atomic<std::uint32_t> data_waiters;
    /// Futex word + waiter count for "space available" (producer sleeps
    /// on a full ring or arena, consumer wakes only when waiters != 0).
    std::atomic<std::uint32_t> space_seq;
    std::atomic<std::uint32_t> space_waiters;
};

struct SegSlot {
    std::uint32_t offset; ///< payload start within the direction's arena
    std::uint32_t len;    ///< payload bytes
};

/// Versioned segment header. Sides: 0 = creator (connector), 1 = attacher
/// (acceptor). The header is followed by a SegDir array indexed
/// (side * bands + band) — the dirs for side i carry frames produced by
/// side i — then the slot rings and arenas in the same order.
struct SegHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t ring_capacity;   ///< power of two, per band-direction
    std::uint32_t arena_bytes;     ///< per band-direction
    std::uint32_t max_frame_bytes; ///< enforced by both producers
    std::uint32_t bands;           ///< direction pairs per side (1..8)
    std::uint32_t reserved;
    /// Creator-minted instance id. The hello carries it and the attacher
    /// cross-checks against the mapped header, so a handshake can never
    /// bind to a stale same-named segment left by an earlier process.
    std::uint64_t generation;
    /// Per-side liveness: pid recorded at create/attach, attached flag
    /// cleared on graceful close. A peer whose pid no longer exists while
    /// its attached flag is still set died without saying goodbye.
    std::atomic<std::uint32_t> pid[2];
    std::atomic<std::uint32_t> attached[2];
};

static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

/// Frame payloads are 8-byte aligned in the arena.
inline constexpr std::size_t align8(std::size_t n) noexcept {
    return (n + 7u) & ~std::size_t{7};
}
/// SegDir is cache-line aligned; the dir array keeps that alignment.
inline constexpr std::size_t align64(std::size_t n) noexcept {
    return (n + 63u) & ~std::size_t{63};
}

inline constexpr std::size_t dirs_offset() noexcept {
    return align64(sizeof(SegHeader));
}
inline constexpr std::size_t slots_offset(std::size_t bands) noexcept {
    return align8(dirs_offset() + 2 * bands * sizeof(SegDir));
}
inline constexpr std::size_t arena_offset(std::size_t bands,
                                          std::size_t ring_capacity) noexcept {
    return align8(slots_offset(bands) +
                  2 * bands * ring_capacity * sizeof(SegSlot));
}
inline constexpr std::size_t segment_bytes(std::size_t bands,
                                           std::size_t ring_capacity,
                                           std::size_t arena_bytes) noexcept {
    return arena_offset(bands, ring_capacity) + 2 * bands * arena_bytes;
}

} // namespace shm_detail

/// A created-or-attached mapping of one segment. Exposed (rather than
/// buried in the .cpp) so the test suite can exercise create/attach,
/// version and generation validation, and the orphan sweep directly.
class ShmSegment {
public:
    /// Create a fresh segment (O_CREAT|O_EXCL) sized for `options` and
    /// initialize its header. Throws TransportError on failure (e.g. no
    /// /dev/shm) — callers fall back to plain TCP.
    static std::shared_ptr<ShmSegment> create(const ShmOptions& options);

    /// Attach to an existing segment by name, validating magic, version,
    /// geometry, generation, and that side 1 is not already taken.
    /// Throws TransportError with a reason usable as a nack detail.
    static std::shared_ptr<ShmSegment> attach(const std::string& name,
                                              std::uint64_t generation);

    ~ShmSegment();
    ShmSegment(const ShmSegment&) = delete;
    ShmSegment& operator=(const ShmSegment&) = delete;

    const std::string& name() const noexcept { return name_; }
    std::uint64_t generation() const noexcept { return header().generation; }
    int side() const noexcept { return side_; }
    std::uint32_t bands() const noexcept { return header().bands; }

    shm_detail::SegHeader& header() const noexcept {
        return *reinterpret_cast<shm_detail::SegHeader*>(base_);
    }
    /// Control words for the ring carrying frames side `side` produces on
    /// band `band`.
    shm_detail::SegDir& dir(int side, std::size_t band) const noexcept;
    shm_detail::SegSlot* slots(int side, std::size_t band) const noexcept;
    std::uint8_t* arena(int side, std::size_t band) const noexcept;

    /// Mark this side detached (graceful) so the peer and the orphan
    /// sweep stop considering our pid. Idempotent.
    void detach() noexcept;

    /// Unlink the segment name (creator side, once the peer has attached
    /// or the handshake failed). The mapping stays valid until unmapped.
    void unlink() noexcept;

private:
    ShmSegment() = default;
    std::string name_;
    std::uint8_t* base_ = nullptr;
    std::size_t map_bytes_ = 0;
    int side_ = 0;
    bool unlinked_ = false;
};

/// Counters specific to the shm wire, surfaced through the bridge's
/// counter source as shm_* gauges next to the TransportStats counters.
struct ShmCounters {
    std::uint64_t shm_frames_sent = 0;
    std::uint64_t shm_frames_received = 0;
    std::uint64_t tcp_frames_sent = 0;     ///< via the fallback wire
    std::uint64_t tcp_frames_received = 0; ///< via the fallback wire
    std::uint64_t wakeups = 0;     ///< futex wake syscalls issued
    std::uint64_t futex_waits = 0; ///< futex wait syscalls issued
    std::uint64_t spins = 0;       ///< pause-spin iterations
    std::uint64_t failovers = 0;   ///< shm abandoned for the TCP wire
    std::uint64_t resent_frames = 0;  ///< ring frames replayed over TCP
    std::uint64_t dropped_on_failover = 0; ///< undeliverable (peer died)
    std::uint64_t tx_depth = 0; ///< instantaneous frames in our TX rings
    std::uint64_t rx_depth = 0; ///< instantaneous frames in our RX rings
    bool shm_active = false;    ///< still moving frames through the segment

    // Zero-copy receive path.
    std::uint64_t rx_borrowed = 0;   ///< frames handed out as arena views
    std::uint64_t rx_copies = 0;     ///< frames copied out instead (pin
                                     ///< budget hit or borrowing disabled)
    std::uint64_t rx_pinned = 0;     ///< instantaneous undropped borrowed
                                     ///< slots (sum over bands)
    std::uint64_t rx_pin_stalls = 0; ///< pops forced to copy by the budget
    std::uint64_t replay_skipped = 0; ///< replayed frames deduped after a
                                      ///< failover with delivered-but-
                                      ///< unretired slots outstanding

    // Banded lanes (first `bands` entries are meaningful).
    std::uint32_t bands = 1;
    std::uint64_t band_tx_depth[shm_detail::kMaxShmBands] = {};
    std::uint64_t band_rx_depth[shm_detail::kMaxShmBands] = {};
    std::uint64_t band_tx_stalls[shm_detail::kMaxShmBands] = {};   ///< space
                                                                   ///< waits
    std::uint64_t band_tx_frames[shm_detail::kMaxShmBands] = {};
    std::uint64_t band_rx_frames[shm_detail::kMaxShmBands] = {};
};

class ShmSession;

/// RingPair policy backed by a ShmSession (all logic lives in the .cpp).
/// send() leaves the frame intact when it returns false, so the
/// transport's on_send_down hook can reroute it over TCP.
struct ShmRingPair {
    std::shared_ptr<ShmSession> session;
    bool send(FrameBuffer& frame);
    RingRecv recv();
    void close();
    std::size_t tx_depth() const;
    std::size_t rx_depth() const;
};

/// The shared-memory transport. Not constructed directly — use
/// shm_upgrade_connect / ShmAcceptor, which run the handshake and fall
/// back to plain TCP when the segment cannot be shared.
class ShmTransport final : public RingPairTransport<ShmRingPair> {
public:
    ShmTransport(std::shared_ptr<ShmSession> session, std::string label);
    ~ShmTransport() override;

    ShmCounters counters() const;
    bool shm_active() const;
    const std::string& segment_name() const;
    std::uint64_t generation() const;
    std::size_t bands() const;

    /// Orderly reroute-to-TCP (the path peer death and oversize frames
    /// take), exposed so tests and the bench can trigger a mid-burst
    /// failover deterministically. Safe to call at any time; idempotent.
    void abandon_shm(const char* reason = "forced");

    FrameBufferPool& frame_pool() noexcept override;

private:
    void on_send_down(FrameBuffer&& frame) override;
    RingRecv on_ring_closed() override;
    RingRecv on_recv_idle() override;
    void on_close() override;
};

/// Outcome of a connect/accept that tried the shm upgrade. `transport`
/// is a ShmTransport when `shm` is true, a plain TCP transport (with the
/// handshake already consumed) otherwise; `detail` says why.
struct ShmConnectResult {
    std::unique_ptr<Transport> transport;
    bool shm = false;
    std::string detail;
};

/// Connect to a ShmAcceptor and negotiate the segment: TCP connect,
/// create a segment, send the `compadres.shm` hello (segment name +
/// generation + geometry), and upgrade on ack. Any failure — segment
/// creation, peer nack (cross-host, version mismatch, stale generation) —
/// degrades to the already-open TCP connection. Throws TransportError
/// only when TCP itself cannot connect.
ShmConnectResult shm_upgrade_connect(const std::string& host,
                                     std::uint16_t port,
                                     const ShmOptions& shm_options = {},
                                     const TcpOptions& tcp_options = {});

/// Accepting side of the upgrade. Wraps a TcpAcceptor; every accepted
/// connection must open with a `compadres.shm` hello (shm_upgrade_connect
/// always sends one, with an empty segment name when it could not create
/// a segment). Attach success acks and yields a ShmTransport; any
/// validation failure nacks with a reason and yields the plain TCP wire.
class ShmAcceptor {
public:
    explicit ShmAcceptor(std::uint16_t port, const ShmOptions& shm_options = {},
                         const TcpOptions& tcp_options = {});

    std::uint16_t bound_port() const noexcept { return tcp_.bound_port(); }

    /// Next negotiated connection; transport is nullptr after close().
    ShmConnectResult accept();

    void close() { tcp_.close(); }

private:
    TcpAcceptor tcp_;
    ShmOptions shm_options_;
};

/// Unlink /dev/shm/compadres.* segments whose recorded pids are all gone
/// (crashed runs). Called at transport startup and by the bench; returns
/// the number of segments removed. Never throws.
std::size_t sweep_orphan_segments() noexcept;

} // namespace compadres::net
