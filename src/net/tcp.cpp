#include "net/tcp.hpp"

#include "cdr/giop.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>

namespace compadres::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
    throw TransportError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Clamp kernel socket buffers when the options ask for a bound (0 keeps
/// the autotuned default). Best-effort: the kernel enforces its own floor.
void set_buffer_bounds(int fd, const TcpOptions& options) {
    if (options.send_buffer_bytes > 0) {
        const int bytes = static_cast<int>(options.send_buffer_bytes);
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    if (options.recv_buffer_bytes > 0) {
        const int bytes = static_cast<int>(options.recv_buffer_bytes);
        setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
    }
}

/// Read exactly n bytes; false on orderly EOF at a frame boundary.
bool read_exact(int fd, std::uint8_t* dst, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, dst + got, n - got);
        if (r == 0) {
            if (got == 0) return false;
            throw TransportError("connection truncated mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR) continue;
            fail_errno("read");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

class TcpTransport final : public Transport {
public:
    TcpTransport(int fd, std::string peer, TcpOptions options)
        : fd_(fd), peer_(std::move(peer)), opts_(options),
          intake_(opts_.intake_capacity ? opts_.intake_capacity : 1) {
        set_nodelay(fd_);
        set_buffer_bounds(fd_, opts_);
        // Writer-only scratch, sized once: drains never touch the heap.
        batch_.reserve(opts_.max_batch_frames ? opts_.max_batch_frames : 1);
        iov_.reserve(batch_.capacity());
    }

    ~TcpTransport() override {
        close();
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    void send_frame(FrameBuffer frame) override {
        std::unique_lock lk(mu_);
        if (opts_.policy == WritePolicy::kDirect) {
            // Serialize writers on the same flag close() waits on.
            cv_.wait(lk, [&] { return closing_ || !writer_active_; });
            throw_if_unwritable();
            writer_active_ = true;
            batch_.push_back(std::move(frame));
            flush_batch(lk); // unlocks around the write; rethrows on failure
            return;
        }
        cv_.wait(lk, [&] {
            return closing_ || send_failed_ || count_ < intake_.size();
        });
        throw_if_unwritable();
        enqueue(std::move(frame));
        if (writer_active_) return; // the active drainer will batch it
        writer_active_ = true;
        drain(lk);
        const bool failed = send_failed_;
        const int err = send_errno_;
        lk.unlock();
        cv_.notify_all();
        if (failed) {
            throw TransportError(std::string("send: ") + std::strerror(err));
        }
    }

    std::optional<FrameBuffer> recv_frame() override {
        if (fd_ < 0) return std::nullopt;
        std::uint8_t header_bytes[cdr::GiopHeader::kSize];
        if (!read_exact(fd_, header_bytes, sizeof(header_bytes))) {
            return std::nullopt;
        }
        const cdr::GiopHeader header =
            cdr::decode_header(header_bytes, sizeof(header_bytes));
        const std::size_t total =
            cdr::GiopHeader::kSize + static_cast<std::size_t>(header.message_size);
        if (total > opts_.max_frame_bytes) {
            // Validate before sizing the buffer: a corrupt or hostile
            // header must not drive an unbounded allocation.
            throw TransportError(
                "GIOP frame of " + std::to_string(total) +
                " bytes exceeds the max-frame limit (" +
                std::to_string(opts_.max_frame_bytes) + ")");
        }
        FrameBuffer frame = FrameBufferPool::global().acquire(total);
        std::memcpy(frame.data(), header_bytes, cdr::GiopHeader::kSize);
        if (header.message_size > 0 &&
            !read_exact(fd_, frame.data() + cdr::GiopHeader::kSize,
                        header.message_size)) {
            throw TransportError("connection truncated mid-frame");
        }
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        return frame;
    }

    void close() override {
        {
            std::lock_guard lk(mu_);
            closing_ = true;
        }
        cv_.notify_all();
        // Unblocks a reader parked in read() and fails any in-flight
        // sendmsg. The fd itself stays open until destruction so no thread
        // can race a reused descriptor.
        if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
        std::unique_lock lk(mu_);
        cv_.wait(lk, [&] { return !writer_active_; });
        drop_queue_locked();
    }

    std::string peer_description() const override { return peer_; }

    TransportStats stats() const override {
        TransportStats s;
        s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
        s.frames_received = frames_received_.load(std::memory_order_relaxed);
        s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
        s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
        s.send_batches = send_batches_.load(std::memory_order_relaxed);
        s.max_batch_frames = max_batch_.load(std::memory_order_relaxed);
        return s;
    }

private:
    void throw_if_unwritable() {
        if (closing_) throw TransportError("transport closed");
        if (send_failed_) {
            throw TransportError(std::string("send: ") +
                                 std::strerror(send_errno_));
        }
    }

    void enqueue(FrameBuffer frame) {
        intake_[(head_ + count_) % intake_.size()] = std::move(frame);
        ++count_;
    }

    FrameBuffer dequeue() {
        FrameBuffer out = std::move(intake_[head_]);
        head_ = (head_ + 1) % intake_.size();
        --count_;
        return out;
    }

    /// Drop every queued frame (storage returns to the pool) and account
    /// for it. Called with mu_ held once the writer has quiesced.
    void drop_queue_locked() {
        if (count_ == 0) return;
        frames_dropped_.fetch_add(count_, std::memory_order_relaxed);
        while (count_ > 0) dequeue().release();
    }

    /// Writer loop: repeatedly peel up to max_batch_frames off the intake
    /// and ship them with one scatter-gather syscall each flush. Entered
    /// with mu_ held and writer_active_ set; returns the same way.
    void drain(std::unique_lock<std::mutex>& lk) {
        const std::size_t cap =
            opts_.max_batch_frames ? opts_.max_batch_frames : 1;
        while (count_ > 0 && !closing_ && !send_failed_) {
            const std::size_t n = count_ < cap ? count_ : cap;
            for (std::size_t i = 0; i < n; ++i) batch_.push_back(dequeue());
            lk.unlock();
            cv_.notify_all(); // intake space freed: admit blocked senders
            const bool ok = write_batch();
            for (auto& b : batch_) b.release();
            batch_.clear();
            lk.lock();
            if (ok) {
                frames_sent_.fetch_add(n, std::memory_order_relaxed);
            } else {
                send_failed_ = true;
                frames_dropped_.fetch_add(n, std::memory_order_relaxed);
            }
        }
        if (closing_ || send_failed_) drop_queue_locked();
        writer_active_ = false;
    }

    /// Direct-policy flush of the single frame staged in batch_. Entered
    /// with mu_ held and writer_active_ set.
    void flush_batch(std::unique_lock<std::mutex>& lk) {
        lk.unlock();
        const bool ok = write_batch();
        for (auto& b : batch_) b.release();
        batch_.clear();
        lk.lock();
        writer_active_ = false;
        if (ok) {
            frames_sent_.fetch_add(1, std::memory_order_relaxed);
        } else {
            send_failed_ = true;
            frames_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
        const int err = send_errno_;
        lk.unlock();
        cv_.notify_all();
        if (!ok) {
            throw TransportError(std::string("send: ") + std::strerror(err));
        }
    }

    /// Ship batch_ with sendmsg(MSG_NOSIGNAL), advancing iovecs across
    /// partial writes. Returns false (with send_errno_ set) on failure.
    bool write_batch() {
        iov_.clear();
        for (auto& b : batch_) {
            if (b.size() == 0) continue;
            iov_.push_back(iovec{b.data(), b.size()});
        }
        send_batches_.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
        while (batch_.size() > prev &&
               !max_batch_.compare_exchange_weak(prev, batch_.size(),
                                                 std::memory_order_relaxed)) {
        }
        std::size_t at = 0;
        while (at < iov_.size()) {
            msghdr mh{};
            mh.msg_iov = iov_.data() + at;
            mh.msg_iovlen = iov_.size() - at;
            const ssize_t w = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR) continue;
                send_errno_ = errno;
                return false;
            }
            send_syscalls_.fetch_add(1, std::memory_order_relaxed);
            std::size_t advanced = static_cast<std::size_t>(w);
            while (advanced > 0 && at < iov_.size()) {
                if (advanced >= iov_[at].iov_len) {
                    advanced -= iov_[at].iov_len;
                    ++at;
                } else {
                    iov_[at].iov_base =
                        static_cast<std::uint8_t*>(iov_[at].iov_base) + advanced;
                    iov_[at].iov_len -= advanced;
                    advanced = 0;
                }
            }
        }
        return true;
    }

    int fd_;
    std::string peer_;
    TcpOptions opts_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<FrameBuffer> intake_; ///< fixed ring: slots never realloc
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    bool writer_active_ = false;
    bool closing_ = false;
    bool send_failed_ = false;
    int send_errno_ = 0;

    // Owned by whichever thread holds writer_active_.
    std::vector<FrameBuffer> batch_;
    std::vector<iovec> iov_;

    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> frames_received_{0};
    std::atomic<std::uint64_t> frames_dropped_{0};
    std::atomic<std::uint64_t> send_syscalls_{0};
    std::atomic<std::uint64_t> send_batches_{0};
    std::atomic<std::uint64_t> max_batch_{0};
};

} // namespace

std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                       std::uint16_t port,
                                       const TcpOptions& options) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw TransportError("bad IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail_errno("connect to " + host + ":" + std::to_string(port));
    }
    return std::make_unique<TcpTransport>(
        fd, host + ":" + std::to_string(port), options);
}

TcpAcceptor::TcpAcceptor(std::uint16_t port, const TcpOptions& options)
    : options_(options) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail_errno("socket");
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // SO_RCVBUF must be set on the listening socket so accepted
    // connections inherit the bound before the TCP window is negotiated.
    set_buffer_bounds(fd_, options_);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail_errno("bind");
    }
    if (::listen(fd_, 16) != 0) fail_errno("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

TcpAcceptor::~TcpAcceptor() { close(); }

std::unique_ptr<Transport> TcpAcceptor::accept() {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
        if (errno == EBADF || errno == EINVAL) return nullptr; // closed
        fail_errno("accept");
    }
    char buf[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &peer.sin_addr, buf, sizeof(buf));
    return std::make_unique<TcpTransport>(
        fd, std::string(buf) + ":" + std::to_string(ntohs(peer.sin_port)),
        options_);
}

void TcpAcceptor::close() {
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace compadres::net
