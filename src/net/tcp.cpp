#include "net/tcp.hpp"

#include "cdr/giop.hpp"
#include "obs/flight_recorder.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>

namespace compadres::net {

namespace {

/// Set by mark_reactor_loop_thread(): this thread delivers EPOLLOUT for
/// the wires it owns, so it must never block waiting for the intake
/// space that only its own event handling can free.
thread_local bool t_reactor_loop_thread = false;

[[noreturn]] void fail_errno(const std::string& what) {
    throw TransportError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Clamp kernel socket buffers when the options ask for a bound (0 keeps
/// the autotuned default). Best-effort: the kernel enforces its own floor.
void set_buffer_bounds(int fd, const TcpOptions& options) {
    if (options.send_buffer_bytes > 0) {
        const int bytes = static_cast<int>(options.send_buffer_bytes);
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    if (options.recv_buffer_bytes > 0) {
        const int bytes = static_cast<int>(options.recv_buffer_bytes);
        setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
    }
}

/// Staging size for blocking-read coalescing: one read() pulls whatever
/// the kernel has queued (bursts of small replies) instead of two reads
/// per frame (header, then body).
constexpr std::size_t kRecvScratchBytes = 16 * 1024;

/// Read exactly n bytes; false on orderly EOF at a frame boundary.
bool read_exact(int fd, std::uint8_t* dst, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, dst + got, n - got);
        if (r == 0) {
            if (got == 0) return false;
            throw TransportError("connection truncated mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR) continue;
            fail_errno("read");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

class TcpTransport final : public Transport, public ReactorHook {
public:
    TcpTransport(int fd, std::string peer, TcpOptions options)
        : fd_(fd), peer_(std::move(peer)), opts_(options),
          pool_(opts_.pool ? opts_.pool : &FrameBufferPool::global()),
          intake_(opts_.intake_capacity ? opts_.intake_capacity : 1) {
        set_nodelay(fd_);
        set_buffer_bounds(fd_, opts_);
        // Writer-only scratch, sized once: drains never touch the heap.
        batch_.reserve(opts_.max_batch_frames ? opts_.max_batch_frames : 1);
        iov_.reserve(batch_.capacity());
    }

    ~TcpTransport() override {
        close();
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    void send_frame(FrameBuffer frame) override {
        obs::FlightRecorder::emit(
            obs::EventType::kFrameSend, frame.size(),
            frame.size() >= cdr::GiopHeader::kSize
                ? cdr::frame_band(frame.data())
                : 0);
        std::unique_lock lk(mu_);
        if (opts_.policy == WritePolicy::kDirect) {
            // Serialize writers on the same flag close() waits on.
            if (!closing_ && writer_active_) {
                send_stalls_.fetch_add(1, std::memory_order_relaxed);
            }
            cv_.wait(lk, [&] { return closing_ || !writer_active_; });
            throw_if_unwritable();
            if (opts_.policy == WritePolicy::kDirect) {
                writer_active_ = true;
                batch_.push_back(std::move(frame));
                flush_direct(lk); // unlocks around write; rethrows on failure
                return;
            }
            // enter_reactor_mode flipped the policy while we waited (the
            // flip can also leave a kAgain'd direct batch parked, see
            // flush_direct): fall through to the coalescing path.
        }
        if (t_reactor_loop_thread && !closing_ && !send_failed_ &&
            count_ == intake_.size()) {
            // A loop-thread sender (frame/closed callback replying under
            // backpressure) must never wait for intake space: the only
            // drain that frees it is the EPOLLOUT this very thread
            // delivers, so the wait below would deadlock the loop — and
            // every wire it owns. One inline resume attempt either ships
            // the parked batch (freeing intake slots) or re-parks on
            // EAGAIN; if the intake is still full after it, a counted
            // drop beats a frozen loop.
            if (parked_ && !writer_active_ && !inflight_) {
                writer_active_ = true;
                const bool want_writable = drain(lk);
                if (want_writable) {
                    lk.unlock();
                    cv_.notify_all();
                    if (request_writable_) request_writable_();
                    lk.lock();
                }
            }
            if (!closing_ && !send_failed_ && count_ == intake_.size()) {
                frames_dropped_.fetch_add(1, std::memory_order_relaxed);
                lk.unlock();
                frame.release();
                return;
            }
        }
        if (!closing_ && !send_failed_ && !no_new_frames_ &&
            count_ >= intake_.size()) {
            send_stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        cv_.wait(lk, [&] {
            return closing_ || send_failed_ || no_new_frames_ ||
                   count_ < intake_.size();
        });
        throw_if_unwritable();
        enqueue(std::move(frame));
        // A parked batch means the socket would not take more bytes the
        // last time anyone tried: attempting again from every sender would
        // burn a syscall per enqueue. The reactor's EPOLLOUT resumes it.
        if (writer_active_ || parked_) return;
        // Corked (mid read-pump): stage replies for one flush at uncork.
        // A full intake still drains here so corking never deadlocks a
        // sender against its own backpressure.
        if (corked_ && count_ < intake_.size()) return;
        writer_active_ = true;
        const bool want_writable = drain(lk);
        const bool failed = send_failed_;
        const int err = send_errno_;
        lk.unlock();
        cv_.notify_all();
        if (want_writable && request_writable_) request_writable_();
        if (failed) {
            throw TransportError(std::string("send: ") + std::strerror(err));
        }
    }

    std::optional<FrameBuffer> recv_frame() override {
        if (fd_ < 0) return std::nullopt;
        if (nonblocking_.load(std::memory_order_relaxed)) {
            throw TransportError(
                "recv_frame on a reactor-managed transport (the reactor "
                "owns the read direction)");
        }
        std::uint8_t header_bytes[cdr::GiopHeader::kSize];
        if (!buffered_read(header_bytes, sizeof(header_bytes))) {
            return std::nullopt;
        }
        const cdr::GiopHeader header =
            cdr::decode_header(header_bytes, sizeof(header_bytes));
        const std::size_t total =
            cdr::GiopHeader::kSize + static_cast<std::size_t>(header.message_size);
        if (total > opts_.max_frame_bytes) {
            // Validate before sizing the buffer: a corrupt or hostile
            // header must not drive an unbounded allocation.
            throw TransportError(
                "GIOP frame of " + std::to_string(total) +
                " bytes exceeds the max-frame limit (" +
                std::to_string(opts_.max_frame_bytes) + ")");
        }
        FrameBuffer frame = pool_->acquire(total);
        std::memcpy(frame.data(), header_bytes, cdr::GiopHeader::kSize);
        if (header.message_size > 0 &&
            !buffered_read(frame.data() + cdr::GiopHeader::kSize,
                           header.message_size)) {
            throw TransportError("connection truncated mid-frame");
        }
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kFrameRecv, total,
                                  cdr::frame_band(frame.data()));
        return frame;
    }

    void close() override {
        {
            std::lock_guard lk(mu_);
            closing_ = true;
        }
        cv_.notify_all();
        // Unblocks a reader parked in read() and fails any in-flight
        // sendmsg. The fd itself stays open until destruction so no thread
        // can race a reused descriptor.
        if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
        std::unique_lock lk(mu_);
        // An in-flight gather-send SQE still references the batch; the
        // shutdown above fails it promptly and complete_send drops it.
        // Only a loop thread may skip the wait (its own dispatch is what
        // delivers the completion) — then the batch is left for
        // complete_send rather than dropped out from under the kernel.
        cv_.wait(lk, [&] {
            return !writer_active_ && (!inflight_ || t_reactor_loop_thread);
        });
        // A parked batch has no drainer to wake: drop it here along with
        // the queue, deterministically and counted.
        if (!inflight_) drop_parked_locked();
        drop_queue_locked();
    }

    void prepare_close() override {
        std::unique_lock lk(mu_);
        if (closing_ || send_failed_) return;
        // Phase 1 of the lane group's two-phase close: refuse new frames,
        // push what is already queued onto the wire, send NO FIN. Senders
        // blocked on intake space wake and throw as if close() ran.
        no_new_frames_ = true;
        cv_.notify_all();
        if (t_reactor_loop_thread) {
            // A loop thread cannot wait for a quiescing writer or a parked
            // batch — both may need this very thread's events to progress.
            // close() on this lane will drop whatever remains, counted.
            return;
        }
        cv_.wait(lk, [&] { return !writer_active_; });
        if (!closing_ && !send_failed_ && !parked_ && count_ > 0) {
            writer_active_ = true;
            const bool want_writable = drain(lk);
            if (want_writable) {
                lk.unlock();
                cv_.notify_all();
                if (request_writable_) request_writable_();
                lk.lock();
            }
        }
        // A parked batch (reactor mode, socket backed up) finishes via
        // EPOLLOUT: wait until it flushes or the connection dies, so every
        // frame accepted before this call is on the wire when we return.
        cv_.wait(lk, [&] {
            return closing_ || send_failed_ || (!parked_ && count_ == 0);
        });
    }

    std::string peer_description() const override { return peer_; }

    TransportStats stats() const override {
        TransportStats s;
        s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
        s.frames_received = frames_received_.load(std::memory_order_relaxed);
        s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
        s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
        s.send_batches = send_batches_.load(std::memory_order_relaxed);
        s.max_batch_frames = max_batch_.load(std::memory_order_relaxed);
        s.send_stalls = send_stalls_.load(std::memory_order_relaxed);
        s.intake_depth_hwm = intake_hwm_.load(std::memory_order_relaxed);
        return s;
    }

    ReactorHook* reactor_hook() noexcept override { return this; }

    // One override serves both bases: Transport::frame_pool and
    // ReactorHook::frame_pool share the signature.
    FrameBufferPool& frame_pool() noexcept override { return *pool_; }

    void set_frame_pool(FrameBufferPool* pool) noexcept override {
        pool_ = pool ? pool : &FrameBufferPool::global();
    }

    void set_coalescing(bool on) override {
        std::unique_lock lk(mu_);
        // Reactor mode forces coalescing (a parked batch lives in the
        // coalescer's staging area, which kDirect doesn't have); treat the
        // request as satisfied rather than breaking the parked-write path.
        if (nonblocking_.load(std::memory_order_relaxed)) return;
        const WritePolicy want =
            on ? WritePolicy::kCoalesce : WritePolicy::kDirect;
        if (opts_.policy == want) return;
        opts_.policy = want;
        if (on) return;
        // Switching to direct: frames the coalescer staged would have no
        // drainer once senders go direct — push them onto the wire now.
        if (writer_active_ || parked_ || count_ == 0) return;
        if (closing_ || send_failed_) return;
        writer_active_ = true;
        const bool want_writable = drain(lk);
        lk.unlock();
        cv_.notify_all();
        if (want_writable && request_writable_) request_writable_();
    }

    // ---- ReactorHook ----

    int descriptor() const noexcept override { return fd_; }

    void enter_reactor_mode(std::function<void()> request_writable) override {
        std::lock_guard lk(mu_);
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
        // Parked-write resumption stages EAGAIN'd output in the intake
        // machinery; kDirect has nowhere to stage it, so reactor mode
        // always coalesces (uncontended it degenerates to one sendmsg per
        // frame anyway).
        opts_.policy = WritePolicy::kCoalesce;
        request_writable_ = std::move(request_writable);
        nonblocking_.store(true, std::memory_order_relaxed);
    }

    bool flush_pending_writes() override {
        std::unique_lock lk(mu_);
        // A kernel-owned batch (gather-send SQE in flight) must not be
        // touched — not even to drop it on close; complete_send resumes
        // or drops it when the completion lands.
        if (inflight_) return true;
        // An active drainer owns the socket; its own EAGAIN re-requests
        // writability, so there is nothing for the reactor to take over.
        if (writer_active_) return true;
        if (!parked_ && count_ == 0) return true; // spurious wake: no-op
        if (closing_ || send_failed_) {
            drop_parked_locked();
            drop_queue_locked();
            lk.unlock();
            cv_.notify_all();
            return true;
        }
        writer_active_ = true;
        const bool want_writable = drain(lk);
        lk.unlock();
        cv_.notify_all();
        if (want_writable && request_writable_) request_writable_();
        return !want_writable;
    }

    std::size_t max_frame_bytes() const noexcept override {
        return opts_.max_frame_bytes;
    }

    void note_frame_received() noexcept override {
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kFrameRecv, 0, 0);
    }

    void set_corked(bool on) override {
        std::unique_lock lk(mu_);
        corked_ = on;
        if (on) return;
        // Uncork: flush whatever the pump's callbacks staged. Skip if a
        // drainer already owns the socket or a parked batch awaits its
        // EPOLLOUT — both resume the queue on their own.
        if (writer_active_ || parked_ || count_ == 0) return;
        if (closing_ || send_failed_) return;
        writer_active_ = true;
        const bool want_writable = drain(lk);
        lk.unlock();
        cv_.notify_all();
        if (want_writable && request_writable_) request_writable_();
    }

    void set_loop_sender(ReactorLoopSender* sender,
                         std::uint64_t wire_id) override {
        std::lock_guard lk(mu_);
        // Ordered stores: write_batch_step reads the id unlocked after an
        // acquire-load of the sender, so the id must be published first.
        loop_wire_id_ = wire_id;
        loop_sender_.store(sender, std::memory_order_release);
    }

    /// Gather-send SQE completion (uring backend, loop thread). The batch
    /// the kernel just finished with is the parked one: advance it exactly
    /// as write_batch_step would after a sendmsg, then keep the queue
    /// moving — resubmit a remainder, or continue draining.
    void complete_send(long result) noexcept override {
        std::unique_lock lk(mu_);
        inflight_ = false;
        if (!parked_) { // defensive: nothing staged (should not happen)
            lk.unlock();
            cv_.notify_all();
            return;
        }
        if (closing_ || send_failed_) {
            drop_parked_locked();
            drop_queue_locked();
            lk.unlock();
            cv_.notify_all();
            return;
        }
        if (result == -EINTR || result == -EAGAIN) result = 0;
        if (result < 0) {
            if (result == -ECANCELED) {
                // Wire teardown reaped the SQE unsent. The batch stays
                // parked; the transport's own close drops and counts it.
                lk.unlock();
                cv_.notify_all();
                return;
            }
            send_errno_ = static_cast<int>(-result);
            send_failed_ = true;
            drop_parked_locked();
            drop_queue_locked();
            lk.unlock();
            cv_.notify_all();
            return;
        }
        std::size_t advanced = static_cast<std::size_t>(result);
        while (advanced > 0 && iov_at_ < iov_.size()) {
            if (advanced >= iov_[iov_at_].iov_len) {
                advanced -= iov_[iov_at_].iov_len;
                ++iov_at_;
            } else {
                iov_[iov_at_].iov_base =
                    static_cast<std::uint8_t*>(iov_[iov_at_].iov_base) +
                    advanced;
                iov_[iov_at_].iov_len -= advanced;
                advanced = 0;
            }
        }
        if (iov_at_ < iov_.size()) {
            // Short send: resubmit the remainder in-ring when possible,
            // else fall back to a write-ready park.
            ReactorLoopSender* s =
                loop_sender_.load(std::memory_order_acquire);
            if (s != nullptr && s->on_loop_thread() &&
                s->submit_send(loop_wire_id_, iov_.data() + iov_at_,
                               iov_.size() - iov_at_)) {
                inflight_ = true;
                lk.unlock();
                cv_.notify_all();
                return;
            }
            lk.unlock();
            cv_.notify_all();
            if (request_writable_) request_writable_();
            return;
        }
        // Batch fully on the wire. Claim the writer slot so the frames
        // can be released outside the lock (same discipline as drain);
        // batch_ keeps its reserved capacity for the next flush.
        const std::size_t n = batch_.size();
        parked_ = false;
        writer_active_ = true;
        frames_sent_.fetch_add(n, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kCoalesceFlush,
                                  static_cast<std::uint64_t>(fd_),
                                  static_cast<std::uint32_t>(n));
        lk.unlock();
        for (auto& b : batch_) b.release();
        batch_.clear();
        iov_.clear();
        iov_at_ = 0;
        lk.lock();
        if (count_ > 0 && !corked_ && !closing_ && !send_failed_) {
            const bool want_writable = drain(lk);
            lk.unlock();
            cv_.notify_all();
            if (want_writable && request_writable_) request_writable_();
            return;
        }
        writer_active_ = false;
        lk.unlock();
        cv_.notify_all();
    }

private:
    enum class WriteOutcome { kDone, kAgain, kError, kInflight };

    /// Buffered read_exact: drains the recv staging buffer first and
    /// refills it with single read() calls sized to the whole buffer, so a
    /// burst of queued frames costs ~one syscall instead of two per frame.
    /// Remainders at least a buffer long bypass staging and land directly
    /// in the caller's storage (no copy for large bodies). Same contract
    /// as read_exact: false on orderly EOF at a frame boundary, throws on
    /// truncation or error. Reader-thread only, like recv_frame itself.
    bool buffered_read(std::uint8_t* dst, std::size_t n) {
        std::size_t got = 0;
        while (got < n) {
            const std::size_t have = rlen_ - rpos_;
            if (have > 0) {
                const std::size_t take = have < n - got ? have : n - got;
                std::memcpy(dst + got, rbuf_.data() + rpos_, take);
                rpos_ += take;
                got += take;
                continue;
            }
            // Lazily sized: reactor-managed transports never stage here.
            if (rbuf_.empty()) rbuf_.resize(kRecvScratchBytes);
            if (n - got >= rbuf_.size()) {
                if (!read_exact(fd_, dst + got, n - got)) {
                    if (got == 0) return false;
                    throw TransportError("connection truncated mid-frame");
                }
                return true;
            }
            rpos_ = 0;
            rlen_ = 0;
            const ssize_t r = ::read(fd_, rbuf_.data(), rbuf_.size());
            if (r == 0) {
                if (got == 0) return false;
                throw TransportError("connection truncated mid-frame");
            }
            if (r < 0) {
                if (errno == EINTR) continue;
                fail_errno("read");
            }
            rlen_ = static_cast<std::size_t>(r);
        }
        return true;
    }

    void throw_if_unwritable() {
        if (closing_ || no_new_frames_) {
            throw TransportError("transport closed");
        }
        if (send_failed_) {
            throw TransportError(std::string("send: ") +
                                 std::strerror(send_errno_));
        }
    }

    void enqueue(FrameBuffer frame) {
        intake_[(head_ + count_) % intake_.size()] = std::move(frame);
        ++count_;
        // mu_ is held, so a plain load/store high-water update suffices
        // (the atomic is only for the lock-free read in stats()).
        if (count_ > intake_hwm_.load(std::memory_order_relaxed)) {
            intake_hwm_.store(count_, std::memory_order_relaxed);
        }
    }

    FrameBuffer dequeue() {
        FrameBuffer out = std::move(intake_[head_]);
        head_ = (head_ + 1) % intake_.size();
        --count_;
        return out;
    }

    /// Drop every queued frame (storage returns to the pool) and account
    /// for it. Called with mu_ held once the writer has quiesced.
    void drop_queue_locked() {
        if (count_ == 0) return;
        frames_dropped_.fetch_add(count_, std::memory_order_relaxed);
        while (count_ > 0) dequeue().release();
    }

    /// Drop a batch parked mid-write (the peer sees a truncated stream —
    /// only reached when the connection is going down anyway). mu_ held.
    void drop_parked_locked() {
        if (batch_.empty()) return;
        frames_dropped_.fetch_add(batch_.size(), std::memory_order_relaxed);
        for (auto& b : batch_) b.release();
        batch_.clear();
        iov_.clear();
        iov_at_ = 0;
        parked_ = false;
    }

    /// Writer loop: repeatedly peel up to max_batch_frames off the intake
    /// (or resume a parked batch) and ship them with one scatter-gather
    /// syscall each flush. Entered with mu_ held and writer_active_ set;
    /// returns the same way with writer_active_ cleared. Returns true when
    /// the batch parked on EAGAIN and the caller must invoke
    /// request_writable_ (outside the lock) so the reactor resumes it.
    bool drain(std::unique_lock<std::mutex>& lk) {
        const std::size_t cap =
            opts_.max_batch_frames ? opts_.max_batch_frames : 1;
        while (!closing_ && !send_failed_) {
            if (!parked_) {
                if (count_ == 0) break;
                const std::size_t n = count_ < cap ? count_ : cap;
                for (std::size_t i = 0; i < n; ++i) batch_.push_back(dequeue());
                stage_batch();
            } else {
                parked_ = false; // resume the saved iovec position
                obs::FlightRecorder::emit(obs::EventType::kWriterResume,
                                          static_cast<std::uint64_t>(fd_),
                                          static_cast<std::uint32_t>(
                                              batch_.size()));
            }
            lk.unlock();
            cv_.notify_all(); // intake space freed: admit blocked senders
            const WriteOutcome outcome = write_batch_step();
            if (outcome == WriteOutcome::kInflight) {
                // The kernel owns the staged iovecs now; complete_send
                // resumes this queue when the SQE finishes. No writable
                // request — the completion IS the wakeup.
                lk.lock();
                parked_ = true;
                inflight_ = true;
                writer_active_ = false;
                return false;
            }
            if (outcome == WriteOutcome::kAgain) {
                obs::FlightRecorder::emit(obs::EventType::kWriterPark,
                                          static_cast<std::uint64_t>(fd_),
                                          static_cast<std::uint32_t>(
                                              batch_.size()));
                lk.lock();
                parked_ = true;
                writer_active_ = false;
                return true;
            }
            const std::size_t n = batch_.size();
            for (auto& b : batch_) b.release();
            batch_.clear();
            iov_.clear();
            iov_at_ = 0;
            lk.lock();
            if (outcome == WriteOutcome::kDone) {
                frames_sent_.fetch_add(n, std::memory_order_relaxed);
                obs::FlightRecorder::emit(obs::EventType::kCoalesceFlush,
                                          static_cast<std::uint64_t>(fd_),
                                          static_cast<std::uint32_t>(n));
            } else {
                send_failed_ = true;
                frames_dropped_.fetch_add(n, std::memory_order_relaxed);
            }
        }
        if (closing_ || send_failed_) {
            drop_parked_locked();
            drop_queue_locked();
        }
        writer_active_ = false;
        return false;
    }

    /// Direct-policy flush of the single frame staged in batch_. Entered
    /// with mu_ held and writer_active_ set; returns (or throws) with mu_
    /// released. Normally the socket is blocking and the write completes
    /// or fails — but enter_reactor_mode can flip the fd to O_NONBLOCK
    /// while this send is in flight (the only way a direct flush sees
    /// kAgain), and that must not poison the transport: the remainder
    /// parks exactly as drain() would, and the reactor's EPOLLOUT resumes
    /// it. The policy is already kCoalesce for every later sender.
    void flush_direct(std::unique_lock<std::mutex>& lk) {
        stage_batch();
        lk.unlock();
        const WriteOutcome outcome = write_batch_step();
        if (outcome == WriteOutcome::kInflight) {
            // Unreachable in practice (the sender is only installed once
            // reactor mode forced kCoalesce), but park correctly anyway.
            lk.lock();
            parked_ = true;
            inflight_ = true;
            writer_active_ = false;
            lk.unlock();
            cv_.notify_all();
            return;
        }
        if (outcome == WriteOutcome::kAgain) {
            lk.lock();
            parked_ = true;
            writer_active_ = false;
            lk.unlock();
            cv_.notify_all();
            // kAgain implies nonblocking_, which enter_reactor_mode set
            // (under mu_, since reacquired) after request_writable_ — the
            // hook is safely visible. The frame is accounted as sent (or
            // dropped) when the parked batch finishes in drain().
            if (request_writable_) request_writable_();
            return;
        }
        for (auto& b : batch_) b.release();
        batch_.clear();
        iov_.clear();
        iov_at_ = 0;
        lk.lock();
        writer_active_ = false;
        if (outcome == WriteOutcome::kDone) {
            frames_sent_.fetch_add(1, std::memory_order_relaxed);
        } else {
            send_failed_ = true;
            frames_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
        const int err = send_errno_;
        lk.unlock();
        cv_.notify_all();
        if (outcome != WriteOutcome::kDone) {
            throw TransportError(std::string("send: ") + std::strerror(err));
        }
    }

    /// Build the iovec array for batch_ and account the flush attempt.
    void stage_batch() {
        iov_.clear();
        iov_at_ = 0;
        for (auto& b : batch_) {
            if (b.size() == 0) continue;
            iov_.push_back(iovec{b.data(), b.size()});
        }
        send_batches_.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
        while (batch_.size() > prev &&
               !max_batch_.compare_exchange_weak(prev, batch_.size(),
                                                 std::memory_order_relaxed)) {
        }
    }

    /// Ship the staged iovecs with sendmsg(MSG_NOSIGNAL), advancing across
    /// partial writes. kAgain (non-blocking sockets only) keeps iov_at_ and
    /// the partially-advanced iovecs so a later call resumes exactly where
    /// the socket stopped accepting bytes.
    WriteOutcome write_batch_step() {
        // On the owning loop's thread, hand the whole staged batch to the
        // uring backend as one gather-send SQE instead of paying a
        // sendmsg: kInflight parks the batch (kernel-owned) until
        // complete_send. Any other thread — or epoll mode, which never
        // installs a sender — keeps the sendmsg path below.
        if (ReactorLoopSender* s =
                loop_sender_.load(std::memory_order_acquire)) {
            if (iov_at_ < iov_.size() && s->on_loop_thread() &&
                s->submit_send(loop_wire_id_, iov_.data() + iov_at_,
                               iov_.size() - iov_at_)) {
                return WriteOutcome::kInflight;
            }
        }
        while (iov_at_ < iov_.size()) {
            msghdr mh{};
            mh.msg_iov = iov_.data() + iov_at_;
            mh.msg_iovlen = iov_.size() - iov_at_;
            const ssize_t w = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR) continue;
                if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
                    nonblocking_.load(std::memory_order_relaxed)) {
                    return WriteOutcome::kAgain;
                }
                send_errno_ = errno;
                return WriteOutcome::kError;
            }
            send_syscalls_.fetch_add(1, std::memory_order_relaxed);
            std::size_t advanced = static_cast<std::size_t>(w);
            while (advanced > 0 && iov_at_ < iov_.size()) {
                if (advanced >= iov_[iov_at_].iov_len) {
                    advanced -= iov_[iov_at_].iov_len;
                    ++iov_at_;
                } else {
                    iov_[iov_at_].iov_base =
                        static_cast<std::uint8_t*>(iov_[iov_at_].iov_base) +
                        advanced;
                    iov_[iov_at_].iov_len -= advanced;
                    advanced = 0;
                }
            }
        }
        return WriteOutcome::kDone;
    }

    int fd_;
    std::string peer_;
    TcpOptions opts_;
    /// Inbound frame storage source; swapped only before traffic flows.
    FrameBufferPool* pool_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<FrameBuffer> intake_; ///< fixed ring: slots never realloc
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    bool writer_active_ = false;
    bool closing_ = false;
    bool send_failed_ = false;
    /// prepare_close() ran: new sends throw, queued frames still flush.
    bool no_new_frames_ = false;
    /// Reactor mode: a batch hit EAGAIN mid-write and waits for EPOLLOUT.
    bool parked_ = false;
    /// The parked batch is kernel-owned (gather-send SQE in flight, uring
    /// backend): nobody may touch batch_/iov_ until complete_send runs.
    /// inflight_ implies parked_.
    bool inflight_ = false;
    /// Installed by the uring backend after the wire joins its loop
    /// (null in epoll mode); loop_wire_id_ is published before the
    /// release-store and read only after an acquire-load of the sender.
    std::atomic<ReactorLoopSender*> loop_sender_{nullptr};
    std::uint64_t loop_wire_id_ = 0;
    // Reactor read-pump cork: replies staged in the intake flush together
    // at uncork instead of one sendmsg each (set_corked).
    bool corked_ = false;
    // recv_frame staging (reader thread only, untouched in reactor mode).
    std::vector<std::uint8_t> rbuf_;
    std::size_t rpos_ = 0;
    std::size_t rlen_ = 0;
    int send_errno_ = 0;
    std::atomic<bool> nonblocking_{false};
    std::function<void()> request_writable_;

    // Owned by whichever thread holds writer_active_ (or, while parked_,
    // by nobody — protected by mu_ until a resumer claims it).
    std::vector<FrameBuffer> batch_;
    std::vector<iovec> iov_;
    std::size_t iov_at_ = 0; ///< first iovec not yet fully written

    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> frames_received_{0};
    std::atomic<std::uint64_t> frames_dropped_{0};
    std::atomic<std::uint64_t> send_syscalls_{0};
    std::atomic<std::uint64_t> send_batches_{0};
    std::atomic<std::uint64_t> max_batch_{0};
    std::atomic<std::uint64_t> send_stalls_{0};
    std::atomic<std::uint64_t> intake_hwm_{0};
};

} // namespace

void mark_reactor_loop_thread() noexcept { t_reactor_loop_thread = true; }

std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                       std::uint16_t port,
                                       const TcpOptions& options) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw TransportError("bad IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail_errno("connect to " + host + ":" + std::to_string(port));
    }
    return std::make_unique<TcpTransport>(
        fd, host + ":" + std::to_string(port), options);
}

TcpAcceptor::TcpAcceptor(std::uint16_t port, const TcpOptions& options)
    : options_(options) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail_errno("socket");
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // SO_RCVBUF must be set on the listening socket so accepted
    // connections inherit the bound before the TCP window is negotiated.
    set_buffer_bounds(fd_, options_);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail_errno("bind");
    }
    if (::listen(fd_, 128) != 0) fail_errno("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

TcpAcceptor::~TcpAcceptor() { close(); }

std::unique_ptr<Transport> TcpAcceptor::accept() {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
        if (errno == EBADF || errno == EINVAL) return nullptr; // closed
        fail_errno("accept");
    }
    char buf[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &peer.sin_addr, buf, sizeof(buf));
    return std::make_unique<TcpTransport>(
        fd, std::string(buf) + ":" + std::to_string(ntohs(peer.sin_port)),
        options_);
}

void TcpAcceptor::close() {
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace compadres::net
