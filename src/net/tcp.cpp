#include "net/tcp.hpp"

#include "cdr/giop.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace compadres::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
    throw TransportError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Read exactly n bytes; false on orderly EOF at a frame boundary.
bool read_exact(int fd, std::uint8_t* dst, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, dst + got, n - got);
        if (r == 0) {
            if (got == 0) return false;
            throw TransportError("connection truncated mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR) continue;
            fail_errno("read");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

void write_all(int fd, const std::uint8_t* src, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w = ::write(fd, src + sent, n - sent);
        if (w < 0) {
            if (errno == EINTR) continue;
            fail_errno("write");
        }
        sent += static_cast<std::size_t>(w);
    }
}

class TcpTransport final : public Transport {
public:
    TcpTransport(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
        set_nodelay(fd_);
    }

    ~TcpTransport() override { close(); }

    void send_frame(const std::vector<std::uint8_t>& frame) override {
        if (fd_ < 0) throw TransportError("transport closed");
        write_all(fd_, frame.data(), frame.size());
    }

    std::optional<std::vector<std::uint8_t>> recv_frame() override {
        if (fd_ < 0) return std::nullopt;
        std::vector<std::uint8_t> frame(cdr::GiopHeader::kSize);
        if (!read_exact(fd_, frame.data(), frame.size())) return std::nullopt;
        const cdr::GiopHeader header =
            cdr::decode_header(frame.data(), frame.size());
        frame.resize(cdr::GiopHeader::kSize + header.message_size);
        if (header.message_size > 0 &&
            !read_exact(fd_, frame.data() + cdr::GiopHeader::kSize,
                        header.message_size)) {
            throw TransportError("connection truncated mid-frame");
        }
        return frame;
    }

    void close() override {
        if (fd_ >= 0) {
            ::shutdown(fd_, SHUT_RDWR);
            ::close(fd_);
            fd_ = -1;
        }
    }

    std::string peer_description() const override { return peer_; }

private:
    int fd_;
    std::string peer_;
};

} // namespace

std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                       std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw TransportError("bad IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail_errno("connect to " + host + ":" + std::to_string(port));
    }
    return std::make_unique<TcpTransport>(fd, host + ":" + std::to_string(port));
}

TcpAcceptor::TcpAcceptor(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail_errno("socket");
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail_errno("bind");
    }
    if (::listen(fd_, 16) != 0) fail_errno("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

TcpAcceptor::~TcpAcceptor() { close(); }

std::unique_ptr<Transport> TcpAcceptor::accept() {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
        if (errno == EBADF || errno == EINVAL) return nullptr; // closed
        fail_errno("accept");
    }
    char buf[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &peer.sin_addr, buf, sizeof(buf));
    return std::make_unique<TcpTransport>(
        fd, std::string(buf) + ":" + std::to_string(ntohs(peer.sin_port)));
}

void TcpAcceptor::close() {
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace compadres::net
