// Ring-pair transports — one skeleton for every zero-copy frame wire.
//
// Two transports in this repo move frames through a pair of bounded rings
// instead of a kernel socket: the in-process loopback (heap FrameRings)
// and the cross-process shared-memory wire (SPSC rings inside a mapped
// segment, net/shm_transport.hpp). Before this header they were two
// near-copies of the same send/recv/close/stats scaffolding; now both are
// instantiations of RingPairTransport over a RingPair policy, so the
// tested code path — frame accounting, close semantics, the recv retry
// loop — exists once.
//
// A RingPair provides:
//   bool send(FrameBuffer& frame)
//       Accept one frame. On success the frame has been consumed (moved
//       into the ring). On false the pair's send side is down; a pair
//       backing a transport with a fallback path (shm -> TCP) must leave
//       `frame` intact so the on_send_down hook can reroute it; a pair
//       with nowhere else to go may have consumed it (the default hook
//       throws without touching the frame).
//   RingRecv recv()
//       One bounded receive attempt: a frame, `closed` (down and
//       drained), or neither — idle, meaning the pair waited its bounded
//       interval without data and the transport should run its
//       on_recv_idle hook (poll a control channel, check peer liveness)
//       before retrying. Pairs that can block indefinitely (heap rings)
//       simply never return idle.
//   void close()
//       Close both directions; queued frames stay poppable.
//   std::size_t tx_depth() / rx_depth()
//       Frames currently queued per direction (0 when untracked).
#pragma once

#include "net/transport.hpp"

#include <atomic>
#include <optional>
#include <string>
#include <utility>

namespace compadres::net {

/// Result of one bounded RingPair::recv attempt. Exactly one of:
/// frame set; closed true; neither (idle — run the transport's idle hook
/// and retry).
struct RingRecv {
    std::optional<FrameBuffer> frame;
    bool closed = false;

    static RingRecv ended() {
        RingRecv r;
        r.closed = true;
        return r;
    }
};

template <typename RingPair>
class RingPairTransport : public Transport {
public:
    RingPairTransport(RingPair rings, std::string label)
        : rings_(std::move(rings)), label_(std::move(label)) {}

    using Transport::send_frame; // keep the copying vector shim visible

    void send_frame(FrameBuffer frame) override {
        if (!rings_.send(frame)) {
            on_send_down(std::move(frame));
            return;
        }
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    std::optional<FrameBuffer> recv_frame() override {
        for (;;) {
            RingRecv r = rings_.recv();
            if (!r.frame.has_value()) {
                // Down-and-drained consults the closed hook (a transport
                // with a fallback wire keeps serving frames from it);
                // idle consults the idle hook (liveness, control traffic).
                r = r.closed ? on_ring_closed() : on_recv_idle();
            }
            if (r.frame.has_value()) {
                frames_received_.fetch_add(1, std::memory_order_relaxed);
                return std::move(r.frame);
            }
            if (r.closed) return std::nullopt;
        }
    }

    void close() override {
        rings_.close();
        on_close();
    }

    std::string peer_description() const override { return label_; }

    TransportStats stats() const override {
        TransportStats s;
        s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
        s.frames_received = frames_received_.load(std::memory_order_relaxed);
        s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
        return s;
    }

protected:
    /// The ring rejected the frame (send side down). Default: no fallback
    /// wire, so the peer is simply gone.
    virtual void on_send_down(FrameBuffer&&) {
        throw TransportError(label_ + ": peer closed");
    }

    /// Ring down and drained. Default: the transport is done. A transport
    /// with a fallback wire overrides this to keep receiving from it.
    virtual RingRecv on_ring_closed() { return RingRecv::ended(); }

    /// The pair waited its bounded interval without data. Default: retry
    /// (only reached by pairs that actually return idle).
    virtual RingRecv on_recv_idle() { return RingRecv{}; }

    /// Extra teardown after the rings close (close a fallback wire, wake
    /// a peer). Default: nothing.
    virtual void on_close() {}

    RingPair rings_;
    std::string label_;
    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> frames_received_{0};
    std::atomic<std::uint64_t> frames_dropped_{0};
};

} // namespace compadres::net
