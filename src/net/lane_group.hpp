// Priority-banded connection lanes.
//
// Compadres preserves priority end to end — per-In-port priority thread
// pools, bounded buffers — yet a single TCP connection re-serializes every
// band: a 1024 B bulk burst sits in front of a 32 B urgent frame in the
// coalescing writer's batch and again in the kernel's socket buffer. A
// LaneGroup is RT-CORBA's priority-banded connection applied to this
// repo's frame transports: one logical route sharded across N TCP wires
// (one per priority band), so bulk traffic can never head-of-line-block
// urgent frames. Each lane keeps its own coalescing writer, its own
// kernel socket buffers, and — via an injected per-lane FrameBufferPool —
// its own frame-pool thread-cache rings, so bands share no queue at any
// layer of the send path.
//
// Classification: every frame carries its band in the GIOP flags octet
// (cdr::frame_band; band 0 frames are byte-identical to stock GIOP 1.0).
// Band 0 is the most urgent and rides lane 0; bands beyond the group's
// lane count clamp to the last (least urgent) lane, so a frame stamped
// for a wider group still flows on a narrower one.
//
// Handshake: the connecting side opens N connections and sends one
// "hello" frame on each — a GIOP Request to object key "compadres.lane"
// carrying [group id, lane index, lane count]. The accepting side
// (LaneAcceptor) binds connections with the same group id into one
// logical LaneGroup, however the N connects interleave with other
// groups'. Route-id cache semantics are untouched: lanes multiplex the
// same routes, the hello frames never reach the bridge.
//
// Failure: a dying lane (ECONNRESET mid-send) degrades the group — the
// band reroutes to the nearest surviving lane and the event is counted in
// lane_failovers() — instead of poisoning the whole route. Only when
// every lane is dead does send_frame throw.
//
// Close: deterministic two-phase. close() first runs prepare_close() on
// every lane (stop intake, flush queued frames, NO FIN), then close() on
// every lane — so the peer never sees FIN on one lane while another lane
// still holds undelivered frames of the same logical route.
#pragma once

#include "net/tcp.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace compadres::net {

/// Hard ceiling on lanes per group: the GIOP flags octet carries the band
/// in 3 bits (cdr::GiopHeader::kBandMask).
constexpr std::size_t kMaxLanes = 8;

struct LaneGroupOptions {
    /// Number of priority bands = TCP wires per logical route. Band 0 is
    /// the most urgent. Default 2: urgent / bulk.
    std::size_t bands = 2;
    /// Per-wire TCP options. The pool field is overridden per lane when
    /// per_lane_pools is set.
    TcpOptions tcp;
    /// Give each lane its own FrameBufferPool (thread-cached, depths
    /// below) so bands never share a pool ring. Off: every lane uses the
    /// process-global pool.
    bool per_lane_pools = true;
    /// Per-size-class TLS ring depths for the per-lane pools.
    std::size_t tls_depth[4] = {16, 16, 2, 1};
};

/// Maps messages to bands. Static per-route bands come from the CCL
/// compiler's <Bands> element; dynamic per-message bands ride the GIOP
/// flags octet (stamped at encode via cdr::set_frame_band).
struct LanePolicy {
    /// Messages at or above this Compadres priority ride band 0 when the
    /// route has no explicit band (matches the repo's "urgent" convention
    /// in the benches).
    int urgent_priority = 10;

    /// Band already stamped in an encoded frame, clamped to the group.
    static std::size_t band_for_frame(const std::uint8_t* frame,
                                      std::size_t lanes) noexcept;

    /// Default band for a message priority on an N-lane group: urgent
    /// priorities ride lane 0, everything else the last (bulk) lane.
    std::size_t band_for_priority(int priority,
                                  std::size_t lanes) const noexcept {
        if (lanes <= 1) return 0;
        return priority >= urgent_priority ? 0 : lanes - 1;
    }
};

/// N per-band TCP wires behind the single-wire Transport API.
class LaneGroup final : public Transport {
public:
    /// Takes ownership of the connected lanes (lane i = band i) and the
    /// per-lane pools backing them (entries may be null when the lane
    /// uses the global pool). Use lane_connect()/LaneAcceptor::accept()
    /// rather than building groups by hand.
    LaneGroup(std::vector<std::unique_ptr<Transport>> lanes,
              std::vector<std::unique_ptr<FrameBufferPool>> pools,
              std::uint64_t group_id);
    ~LaneGroup() override;

    using Transport::send_frame; // keep the copying vector shim visible

    /// Classify by the frame's stamped band and forward to that band's
    /// lane. A lane failing mid-send degrades the group (see header
    /// comment); the frame that hit the failure is dropped and counted by
    /// its lane. Throws only when no lane survives (or after close()).
    void send_frame(FrameBuffer frame) override;

    /// Pops from a ring fed by per-lane reader threads (started lazily on
    /// first call). NOTE: merging lanes into one ring re-serializes
    /// bands — latency-sensitive receivers (the bridge's reactor path)
    /// read each lane() individually instead.
    std::optional<FrameBuffer> recv_frame() override;

    /// Two-phase deterministic close across all lanes (header comment).
    void close() override;

    /// Phase 1 only, for nesting groups under a larger close scope.
    void prepare_close() override;

    std::string peer_description() const override;

    /// Sum of all lane stats.
    TransportStats stats() const override;

    std::size_t lane_count() const noexcept override { return lanes_.size(); }
    Transport& lane(std::size_t i) noexcept override { return *lanes_[i]; }

    /// Flip every lane's coalescing writer at once (Transport seam).
    void set_coalescing(bool on) override {
        for (auto& lane : lanes_) lane->set_coalescing(on);
    }

    /// Flip only the lane currently carrying `band` — live recomposition
    /// repolicies one route's band without touching the others' wires.
    /// No-op when every lane is dead.
    void set_band_coalescing(std::size_t band, bool on) {
        if (route_.empty()) return;
        if (band >= route_.size()) band = route_.size() - 1;
        const std::size_t idx = route_[band].load(std::memory_order_acquire);
        if (idx == kNoLane) return;
        lanes_[idx]->set_coalescing(on);
    }

    TransportStats lane_stats(std::size_t i) const { return lanes_[i]->stats(); }
    /// The pool backing band i's lane (the global pool when per-lane
    /// pools are off). Encoders acquire outbound storage here so the
    /// whole band round-trip stays inside one pool.
    FrameBufferPool& pool_for_band(std::size_t i) noexcept;
    /// Count of lane-death reroute events (satellite: counted failover).
    std::uint64_t lane_failovers() const noexcept {
        return failovers_.load(std::memory_order_relaxed);
    }
    bool lane_alive(std::size_t i) const noexcept {
        return alive_[i].load(std::memory_order_acquire);
    }
    std::uint64_t group_id() const noexcept { return group_id_; }

private:
    void note_lane_failure(std::size_t idx) noexcept;
    void start_readers_locked();

    std::vector<std::unique_ptr<Transport>> lanes_;
    std::vector<std::unique_ptr<FrameBufferPool>> pools_;
    const std::uint64_t group_id_;

    /// route_[band] = lane currently carrying that band (== band until a
    /// failover reroutes it); kNoLane when every lane is dead.
    static constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);
    std::vector<std::atomic<std::size_t>> route_;
    std::vector<std::atomic<bool>> alive_;
    std::atomic<std::uint64_t> failovers_{0};

    std::mutex mu_; ///< failover bookkeeping + reader/close lifecycle
    bool closed_ = false;
    bool readers_started_ = false;
    FrameRing recv_ring_{256};
    std::atomic<std::size_t> readers_live_{0};
    std::vector<std::thread> readers_;
};

/// Open one lane per band to a LaneAcceptor and run the hello handshake.
/// Returns the assembled group (band i on lane i).
std::unique_ptr<LaneGroup> lane_connect(const std::string& host,
                                        std::uint16_t port,
                                        const LaneGroupOptions& options = {});

/// Accepts lane-group connections: reads each incoming connection's hello
/// frame and assembles connections sharing a group id into LaneGroups.
class LaneAcceptor {
public:
    /// `options.bands` is advisory here — the accepted group's width
    /// comes from the client's hello (capped at kMaxLanes); pool and TCP
    /// options apply to every accepted lane.
    explicit LaneAcceptor(std::uint16_t port,
                          const LaneGroupOptions& options = {});

    std::uint16_t bound_port() const noexcept { return acceptor_.bound_port(); }

    /// Block until one whole group's lanes have arrived (interleaved
    /// groups are kept apart by group id); nullptr after close().
    std::unique_ptr<LaneGroup> accept();

    void close() { acceptor_.close(); }

private:
    struct PendingGroup {
        std::vector<std::unique_ptr<Transport>> lanes;
        std::size_t present = 0;
    };

    TcpAcceptor acceptor_;
    LaneGroupOptions options_;
    std::map<std::uint64_t, PendingGroup> pending_;
};

} // namespace compadres::net
