#include "net/uring.hpp"

#include "net/transport.hpp"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

namespace compadres::net {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) noexcept {
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) noexcept {
    return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                      min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg,
                          unsigned nr_args) noexcept {
    return static_cast<int>(
        ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// The ring head/tail words are shared with the kernel through the mmap,
// so they need the same acquire/release discipline liburing uses: the
// consumer side load-acquires the producer's index, the producer side
// store-releases its own after filling the slots.
unsigned load_acquire(const unsigned* p) noexcept {
    return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void store_release(unsigned* p, unsigned v) noexcept {
    __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

[[noreturn]] void fail(const std::string& what, int err) {
    throw TransportError("io_uring: " + what + ": " + std::strerror(err));
}

} // namespace

bool uring_available() noexcept {
    static const bool available = [] {
        io_uring_params p{};
        const int fd = sys_io_uring_setup(4, &p);
        if (fd < 0) return false;
        ::close(fd);
        return true;
    }();
    return available;
}

Uring::Uring(const Options& opts) {
    io_uring_params p{};
    if (opts.sqpoll) {
        p.flags |= IORING_SETUP_SQPOLL;
        p.sq_thread_idle = opts.sqpoll_idle_ms;
    }
    // Deliberately no IORING_SETUP_CLAMP: a depth beyond IORING_MAX_ENTRIES
    // is rejected (EINVAL) instead of silently clamped, which is exactly
    // the forced-setup-failure seam the epoll-fallback tests lean on.
    ring_fd_ = sys_io_uring_setup(opts.entries, &p);
    if (ring_fd_ < 0) fail("setup", errno);
    sqpoll_ = (p.flags & IORING_SETUP_SQPOLL) != 0;

    sq_map_len_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    std::size_t cq_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_len > sq_map_len_) sq_map_len_ = cq_len;

    sq_map_ = ::mmap(nullptr, sq_map_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_map_ == MAP_FAILED) {
        const int err = errno;
        sq_map_ = nullptr;
        ::close(ring_fd_);
        ring_fd_ = -1;
        fail("mmap(sq)", err);
    }
    if (single_mmap) {
        cq_map_ = sq_map_;
        cq_map_len_ = 0; // aliased: unmapped once, via sq_map_
    } else {
        cq_map_len_ = cq_len;
        cq_map_ = ::mmap(nullptr, cq_map_len_, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring_fd_,
                         IORING_OFF_CQ_RING);
        if (cq_map_ == MAP_FAILED) {
            const int err = errno;
            ::munmap(sq_map_, sq_map_len_);
            sq_map_ = nullptr;
            cq_map_ = nullptr;
            ::close(ring_fd_);
            ring_fd_ = -1;
            fail("mmap(cq)", err);
        }
    }
    sqes_len_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_len_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
        const int err = errno;
        if (cq_map_ != nullptr && cq_map_ != sq_map_) {
            ::munmap(cq_map_, cq_map_len_);
        }
        ::munmap(sq_map_, sq_map_len_);
        sq_map_ = nullptr;
        cq_map_ = nullptr;
        sqes_ = nullptr;
        ::close(ring_fd_);
        ring_fd_ = -1;
        fail("mmap(sqes)", err);
    }

    auto* sq_base = static_cast<std::uint8_t*>(sq_map_);
    sq_khead_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.head);
    sq_ktail_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.tail);
    sq_kflags_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.flags);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + p.sq_off.ring_mask);
    sq_entry_count_ = p.sq_entries;
    // Identity-map the SQ index array once: slot i always submits sqes_[i],
    // so publishing is just a tail bump.
    auto* sq_array = reinterpret_cast<unsigned*>(sq_base + p.sq_off.array);
    for (unsigned i = 0; i < p.sq_entries; ++i) sq_array[i] = i;

    auto* cq_base = static_cast<std::uint8_t*>(cq_map_);
    cq_khead_ = reinterpret_cast<unsigned*>(cq_base + p.cq_off.head);
    cq_ktail_ = reinterpret_cast<unsigned*>(cq_base + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + p.cq_off.cqes);

    sqe_tail_ = load_acquire(sq_ktail_);
    sqe_head_ = sqe_tail_;
}

Uring::~Uring() {
    if (buf_ring_ != nullptr) {
        io_uring_buf_reg reg{};
        reg.bgid = buf_group();
        sys_io_uring_register(ring_fd_, IORING_UNREGISTER_PBUF_RING, &reg, 1);
        ::munmap(buf_ring_, buf_ring_len_);
        buf_ring_ = nullptr;
    }
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_len_);
    if (cq_map_ != nullptr && cq_map_ != sq_map_) {
        ::munmap(cq_map_, cq_map_len_);
    }
    if (sq_map_ != nullptr) ::munmap(sq_map_, sq_map_len_);
    // Closing the ring fd reaps every in-flight SQE (the kernel cancels
    // on final ring release), so teardown needs no quiesce handshake
    // beyond what the reactor already did per wire.
    if (ring_fd_ >= 0) ::close(ring_fd_);
}

io_uring_sqe* Uring::get_sqe() noexcept {
    const unsigned head = load_acquire(sq_khead_);
    if (sqe_tail_ - head >= sq_entry_count_) return nullptr; // SQ full
    io_uring_sqe* sqe = &sqes_[sqe_tail_ & sq_mask_];
    ++sqe_tail_;
    std::memset(sqe, 0, sizeof(*sqe));
    return sqe;
}

int Uring::enter(unsigned to_submit, unsigned min_complete,
                 unsigned flags) noexcept {
    for (;;) {
        const int r =
            sys_io_uring_enter(ring_fd_, to_submit, min_complete, flags);
        if (r >= 0) return r;
        if (errno == EINTR) continue;
        // EBUSY/EAGAIN: CQ overflow backpressure — the caller drains and
        // retries at its own pace.
        return -errno;
    }
}

int Uring::submit_and_wait(unsigned wait_nr, bool* entered) noexcept {
    if (entered != nullptr) *entered = false;
    const unsigned to_submit = sqe_tail_ - sqe_head_;
    if (to_submit > 0) {
        store_release(sq_ktail_, sqe_tail_);
        sqe_head_ = sqe_tail_;
    }
    if (sqpoll_) {
        // The kernel thread consumes the SQ on its own; enter only to
        // wake a napping poller or to actually wait for completions.
        unsigned flags = 0;
        if (load_acquire(sq_kflags_) & IORING_SQ_NEED_WAKEUP) {
            flags |= IORING_ENTER_SQ_WAKEUP;
        }
        if (wait_nr > 0 && cq_ready() < wait_nr) {
            flags |= IORING_ENTER_GETEVENTS;
        }
        if (flags == 0) return static_cast<int>(to_submit);
        if (entered != nullptr) *entered = true;
        const int r = enter(0, (flags & IORING_ENTER_GETEVENTS) ? wait_nr : 0,
                            flags);
        return r < 0 ? r : static_cast<int>(to_submit);
    }
    if (to_submit == 0 && (wait_nr == 0 || cq_ready() >= wait_nr)) return 0;
    if (entered != nullptr) *entered = true;
    return enter(to_submit, wait_nr,
                 wait_nr > 0 ? IORING_ENTER_GETEVENTS : 0);
}

unsigned Uring::cq_ready() const noexcept {
    return load_acquire(cq_ktail_) - load_acquire(cq_khead_);
}

bool Uring::pop_cqe(io_uring_cqe* out) noexcept {
    const unsigned head = load_acquire(cq_khead_);
    if (head == load_acquire(cq_ktail_)) return false;
    *out = cqes_[head & cq_mask_];
    store_release(cq_khead_, head + 1);
    return true;
}

bool Uring::register_buf_ring(unsigned entries) noexcept {
    buf_ring_len_ = entries * sizeof(io_uring_buf);
    const long page = ::sysconf(_SC_PAGESIZE);
    const std::size_t ps = page > 0 ? static_cast<std::size_t>(page) : 4096;
    buf_ring_len_ = (buf_ring_len_ + ps - 1) & ~(ps - 1);
    void* mem = ::mmap(nullptr, buf_ring_len_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
        buf_ring_ = nullptr;
        return false;
    }
    io_uring_buf_reg reg{};
    reg.ring_addr = reinterpret_cast<std::uint64_t>(mem);
    reg.ring_entries = entries;
    reg.bgid = buf_group();
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) <
        0) {
        ::munmap(mem, buf_ring_len_);
        buf_ring_ = nullptr;
        return false;
    }
    buf_ring_ = static_cast<io_uring_buf_ring*>(mem);
    buf_ring_mask_ = entries - 1;
    buf_ring_tail_ = 0;
    return true;
}

void Uring::buf_ring_push(void* addr, unsigned len,
                          std::uint16_t bid) noexcept {
    // Index slots from the ring base, NOT via buf_ring_->bufs: compiled as
    // C++, __DECLARE_FLEX_ARRAY wraps bufs in an anonymous struct whose
    // empty __empty_bufs member has sizeof 1, which alignment pads to 8 —
    // every bufs[i] access would land 8 bytes past where the kernel reads.
    io_uring_buf* slot = reinterpret_cast<io_uring_buf*>(buf_ring_) +
                         (buf_ring_tail_ & buf_ring_mask_);
    // Never touch slot->resv: slot 0's resv bytes ARE the ring tail (the
    // header union overlays them), which buf_ring_commit publishes.
    slot->addr = reinterpret_cast<std::uint64_t>(addr);
    slot->len = len;
    slot->bid = bid;
    ++buf_ring_tail_;
}

void Uring::buf_ring_commit() noexcept {
    __atomic_store_n(&buf_ring_->tail, buf_ring_tail_, __ATOMIC_RELEASE);
}

} // namespace compadres::net
