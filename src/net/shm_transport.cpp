#include "net/shm_transport.hpp"

#include "cdr/giop.hpp"
#include "net/lane_group.hpp"
#include "obs/flight_recorder.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <linux/futex.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

namespace compadres::net {

using shm_detail::SegDir;
using shm_detail::SegHeader;
using shm_detail::SegSlot;
using shm_detail::align8;

namespace {

// ---- futex plumbing -------------------------------------------------------
// Non-private futexes: the wait/wake address lives in a MAP_SHARED segment,
// so the kernel keys on the backing page and the two processes' different
// virtual addresses still name the same futex.

void futex_wait_us(std::atomic<std::uint32_t>& word, std::uint32_t expected,
                   std::size_t timeout_us) {
    timespec ts;
    ts.tv_sec = static_cast<time_t>(timeout_us / 1000000);
    ts.tv_nsec = static_cast<long>((timeout_us % 1000000) * 1000);
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAIT,
            expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>& word) {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    asm volatile("" ::: "memory");
#endif
}

std::uint64_t mint_generation() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (static_cast<std::uint64_t>(ts.tv_sec) << 32) ^
           static_cast<std::uint64_t>(ts.tv_nsec) ^
           (static_cast<std::uint64_t>(getpid()) << 16) ^
           counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Clamp options into a self-consistent geometry (pow2 ring, arena big
/// enough that the largest frame plus a wrap skip always fits).
ShmOptions normalize(ShmOptions o) {
    o.ring_capacity = round_up_pow2(o.ring_capacity ? o.ring_capacity : 2);
    if (o.ring_capacity < 2) o.ring_capacity = 2;
    // Bounded so a slot index always fits the 24 bits a borrowed frame's
    // release token reserves for it (the band takes the top 8).
    if (o.ring_capacity > (1u << 20)) o.ring_capacity = 1u << 20;
    if (o.arena_bytes < 4096) o.arena_bytes = 4096;
    o.arena_bytes = align8(o.arena_bytes);
    if (o.max_frame_bytes > o.arena_bytes / 2) {
        o.max_frame_bytes = o.arena_bytes / 2;
    }
    if (o.max_frame_bytes < 64) o.max_frame_bytes = 64;
    if (o.bands < 1) o.bands = 1;
    if (o.bands > shm_detail::kMaxShmBands) o.bands = shm_detail::kMaxShmBands;
    if (o.max_pinned_slots == 0) o.max_pinned_slots = o.ring_capacity / 2;
    // Strictly below capacity: at pinned == capacity the slot index
    // (head & mask) of the next pop would collide with an unreleased
    // slot's bitmap bit.
    if (o.max_pinned_slots > o.ring_capacity - 1) {
        o.max_pinned_slots = o.ring_capacity - 1;
    }
    return o;
}

bool pid_alive(pid_t pid) noexcept {
    return pid > 0 && (kill(pid, 0) == 0 || errno == EPERM);
}

void sweep_once_at_startup() {
    static std::once_flag flag;
    std::call_once(flag, [] { sweep_orphan_segments(); });
}

constexpr const char* kControlKey = "compadres.shm";

} // namespace

// ---- ShmSegment -----------------------------------------------------------

std::shared_ptr<ShmSegment> ShmSegment::create(const ShmOptions& options) {
    sweep_once_at_startup();
    const ShmOptions o = normalize(options);
    static std::atomic<std::uint32_t> seq{0};

    auto seg = std::shared_ptr<ShmSegment>(new ShmSegment());
    int fd = -1;
    for (int attempt = 0; attempt < 4 && fd < 0; ++attempt) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s%u.%u.%llx", shm_detail::kNamePrefix,
                      static_cast<unsigned>(getpid()),
                      seq.fetch_add(1, std::memory_order_relaxed),
                      static_cast<unsigned long long>(mint_generation() & 0xffffff));
        fd = shm_open(buf, O_CREAT | O_EXCL | O_RDWR, 0600);
        if (fd >= 0) seg->name_ = buf;
    }
    if (fd < 0) {
        throw TransportError(std::string("shm_open failed: ") +
                             std::strerror(errno));
    }
    const std::size_t total =
        shm_detail::segment_bytes(o.bands, o.ring_capacity, o.arena_bytes);
    if (ftruncate(fd, static_cast<off_t>(total)) != 0) {
        const int err = errno;
        ::close(fd);
        shm_unlink(seg->name_.c_str());
        throw TransportError(std::string("shm ftruncate failed: ") +
                             std::strerror(err));
    }
    void* base =
        mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        shm_unlink(seg->name_.c_str());
        throw TransportError(std::string("shm mmap failed: ") +
                             std::strerror(errno));
    }
    seg->base_ = static_cast<std::uint8_t*>(base);
    seg->map_bytes_ = total;
    seg->side_ = 0;

    auto* h = new (base) SegHeader{};
    std::memcpy(h->magic, shm_detail::kMagic, sizeof h->magic);
    h->version = shm_detail::kVersion;
    h->ring_capacity = static_cast<std::uint32_t>(o.ring_capacity);
    h->arena_bytes = static_cast<std::uint32_t>(o.arena_bytes);
    h->max_frame_bytes = static_cast<std::uint32_t>(o.max_frame_bytes);
    h->bands = static_cast<std::uint32_t>(o.bands);
    h->generation = mint_generation();
    new (seg->base_ + shm_detail::dirs_offset()) SegDir[2 * o.bands]{};
    h->pid[0].store(static_cast<std::uint32_t>(getpid()),
                    std::memory_order_relaxed);
    h->attached[0].store(1, std::memory_order_release);
    return seg;
}

std::shared_ptr<ShmSegment> ShmSegment::attach(const std::string& name,
                                               std::uint64_t generation) {
    sweep_once_at_startup();
    int fd = shm_open(name.c_str(), O_RDWR, 0);
    if (fd < 0) {
        throw TransportError("shm segment unavailable (cross-host peer or "
                             "cleaned segment): " +
                             name);
    }
    struct stat st{};
    if (fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(SegHeader)) {
        ::close(fd);
        throw TransportError("shm segment truncated: " + name);
    }
    const std::size_t total = static_cast<std::size_t>(st.st_size);
    void* base =
        mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        throw TransportError(std::string("shm mmap failed: ") +
                             std::strerror(errno));
    }
    auto seg = std::shared_ptr<ShmSegment>(new ShmSegment());
    seg->base_ = static_cast<std::uint8_t*>(base);
    seg->map_bytes_ = total;
    seg->side_ = 1;
    seg->name_ = name;

    SegHeader& h = seg->header();
    if (std::memcmp(h.magic, shm_detail::kMagic, sizeof h.magic) != 0) {
        throw TransportError("shm segment bad magic: " + name);
    }
    if (h.version != shm_detail::kVersion) {
        throw TransportError("shm version mismatch: segment v" +
                             std::to_string(h.version) + ", expected v" +
                             std::to_string(shm_detail::kVersion));
    }
    if (h.bands < 1 || h.bands > shm_detail::kMaxShmBands ||
        shm_detail::segment_bytes(h.bands, h.ring_capacity, h.arena_bytes) !=
            total ||
        (h.ring_capacity & (h.ring_capacity - 1)) != 0 ||
        h.ring_capacity < 2) {
        throw TransportError("shm segment geometry corrupt: " + name);
    }
    if (h.generation != generation) {
        throw TransportError("shm stale generation: segment holds " +
                             std::to_string(h.generation) + ", hello claims " +
                             std::to_string(generation));
    }
    std::uint32_t expect = 0;
    if (!h.attached[1].compare_exchange_strong(expect, 1,
                                               std::memory_order_acq_rel)) {
        throw TransportError("shm segment already attached: " + name);
    }
    h.pid[1].store(static_cast<std::uint32_t>(getpid()),
                   std::memory_order_release);
    return seg;
}

ShmSegment::~ShmSegment() {
    detach();
    if (side_ == 0) unlink();
    if (base_ != nullptr) munmap(base_, map_bytes_);
}

SegDir& ShmSegment::dir(int side, std::size_t band) const noexcept {
    auto* first = reinterpret_cast<SegDir*>(base_ + shm_detail::dirs_offset());
    return first[static_cast<std::size_t>(side) * header().bands + band];
}

SegSlot* ShmSegment::slots(int side, std::size_t band) const noexcept {
    auto* first = reinterpret_cast<SegSlot*>(
        base_ + shm_detail::slots_offset(header().bands));
    return first + (static_cast<std::size_t>(side) * header().bands + band) *
                       header().ring_capacity;
}

std::uint8_t* ShmSegment::arena(int side, std::size_t band) const noexcept {
    return base_ +
           shm_detail::arena_offset(header().bands, header().ring_capacity) +
           (static_cast<std::size_t>(side) * header().bands + band) *
               header().arena_bytes;
}

void ShmSegment::detach() noexcept {
    if (base_ != nullptr) {
        header().attached[side_].store(0, std::memory_order_release);
    }
}

void ShmSegment::unlink() noexcept {
    if (!unlinked_ && !name_.empty()) {
        unlinked_ = true;
        shm_unlink(name_.c_str());
    }
}

// ---- ShmSession -----------------------------------------------------------

/// The engine behind ShmTransport: per-band SPSC ring producer/consumer
/// over the segment, plus the TCP control/fallback channel and the
/// failover state machine.
///
/// Locking. Producers serialize per band (TxBand::mu), so a bulk band
/// parked in a space wait never stalls an urgent send. send_mu_ guards
/// the failover state machine (bye in either direction, peer death,
/// close) and TCP fallback ordering; a state transition takes send_mu_
/// first, then every band mutex in index order — never the reverse, so a
/// producer holding its band mutex must not take send_mu_ (failure
/// handling runs after the band mutex is dropped). recv_mu_ serializes
/// pops against the rx freeze and is held only for the duration of a pop
/// — never across a futex wait — so an abandoner freezing the rx tails
/// cannot deadlock against a sleeping receiver. retire_mu_ guards the
/// released bitmaps and published tails (taken after recv_mu_ where both
/// are needed, never before). recv_frame is single-consumer (one bridge
/// reader thread), like every transport in this repo; send_frame is
/// any-thread. enable_shared_from_this: every borrowed frame keeps the
/// session (and therefore the segment mapping) alive until it dies.
class ShmSession : public std::enable_shared_from_this<ShmSession> {
public:
    ShmSession(std::shared_ptr<ShmSegment> seg, std::unique_ptr<Transport> tcp,
               const ShmOptions& opts)
        : seg_(std::move(seg)), tcp_(std::move(tcp)), opts_(normalize(opts)),
          side_(seg_->side()) {
        SegHeader& h = seg_->header();
        capacity_ = h.ring_capacity;
        mask_ = capacity_ - 1;
        arena_bytes_ = h.arena_bytes;
        max_frame_ = h.max_frame_bytes;
        bands_ = h.bands;
        // Geometry (bands included) comes from the header so both sides
        // agree; only local knobs come from opts_. Re-clamp the pin
        // budget against the header's capacity, which can differ from
        // the capacity in this side's options.
        max_pinned_ = opts_.max_pinned_slots;
        if (max_pinned_ > capacity_ - 1) max_pinned_ = capacity_ - 1;
        if (max_pinned_ < 1) max_pinned_ = 1;
        for (std::size_t b = 0; b < bands_; ++b) {
            tx_[b].slots = seg_->slots(side_, b);
            tx_[b].arena = seg_->arena(side_, b);
            rx_[b].slots = seg_->slots(1 - side_, b);
            rx_[b].arena = seg_->arena(1 - side_, b);
            rx_[b].released =
                std::make_unique<std::atomic<std::uint8_t>[]>(capacity_);
            for (std::uint32_t i = 0; i < capacity_; ++i) {
                rx_[b].released[i].store(0, std::memory_order_relaxed);
            }
        }
        if (ReactorHook* hook = tcp_->reactor_hook()) {
            tcp_fd_ = hook->descriptor();
        }
    }

    ~ShmSession() { close_all(); }

    // -- ring-pair surface --------------------------------------------------

    /// Push one frame into the ring its band selects. False (frame
    /// untouched) when the shm path cannot take it — oversize (triggers
    /// orderly failover), peer gone, bye exchanged, or closed — and the
    /// caller reroutes to TCP.
    bool ring_send(FrameBuffer& frame) {
        if (bye_pending_.load(std::memory_order_acquire)) {
            std::lock_guard lk(send_mu_);
            complete_peer_bye_locked();
        }
        if (!tx_up_.load(std::memory_order_acquire)) return false;
        const std::size_t len = frame.size();
        const std::size_t band = band_of(frame.data(), len);
        TxBand& tx = tx_[band];
        bool peer_died = false;
        if (len <= max_frame_) {
            std::lock_guard lk(tx.mu);
            if (!tx_up_.load(std::memory_order_acquire)) return false;
            std::size_t pos = 0;
            switch (acquire_tx_space_locked(tx, band, len, pos)) {
            case kSpaceDown:
                return false;
            case kSpacePeerDead:
                peer_died = true;
                break;
            case kSpaceOk:
                std::memcpy(tx.arena + pos, frame.data(), len);
                tx.slots[tx.head & mask_] =
                    SegSlot{static_cast<std::uint32_t>(pos),
                            static_cast<std::uint32_t>(len)};
                tx.arena_head += align8(len);
                ++tx.head;
                tx_dir(band).head.store(tx.head, std::memory_order_release);
                wake_data_waiter(len, band);
                tx.sent.fetch_add(1, std::memory_order_relaxed);
                shm_sent_.fetch_add(1, std::memory_order_relaxed);
                obs::FlightRecorder::emit(obs::EventType::kFrameSend, len,
                                          static_cast<std::uint32_t>(band));
                return true;
            }
        }
        // Failure transitions run with the band mutex dropped: both take
        // send_mu_ and then every band mutex.
        if (peer_died) {
            note_peer_dead();
            return false;
        }
        // One route's frames must stay ordered, so an oversize frame
        // cannot simply take the other path: abandon shm first, then
        // everything (this frame included) rides TCP.
        abandon("oversize frame");
        return false;
    }

    /// One bounded receive attempt: spin, then at most one futex sleep
    /// cycle, then report idle so the transport can poll the control
    /// channel and peer liveness between cycles.
    RingRecv ring_recv() {
        RingRecv r = try_pop();
        if (r.frame.has_value() || r.closed) return r;
        for (std::size_t i = 0; i < opts_.spin_budget; ++i) {
            if (rx_ring_has_data()) return try_pop();
            cpu_relax();
            spins_.fetch_add(1, std::memory_order_relaxed);
        }
        // All bands share one side-level data futex (the producing side's
        // band-0 dir): the consumer registers once and whichever band's
        // producer publishes next claims + wakes it. SPSC per
        // registration: we are the only registrar, producers claim with
        // exchange(0), so plain stores keep the flag in {0, 1}.
        SegDir& d = rx_dir(0);
        d.data_waiters.store(1, std::memory_order_seq_cst);
        const std::uint32_t seq = d.data_seq.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const bool wake_worthy =
            rx_ring_has_data() || rx_rings_closed() ||
            rx_peer_done_.load(std::memory_order_acquire) ||
            rx_frozen_.load(std::memory_order_acquire) ||
            closed_.load(std::memory_order_acquire);
        if (!wake_worthy) {
            futex_wait_us(d.data_seq, seq, opts_.wait_cycle_us);
            futex_waits_.fetch_add(1, std::memory_order_relaxed);
        }
        d.data_waiters.store(0, std::memory_order_release);
        return try_pop();
    }

    std::size_t tx_depth() const {
        std::size_t total = 0;
        for (std::size_t b = 0; b < bands_; ++b) {
            const SegDir& d = seg_->dir(side_, b);
            total += d.head.load(std::memory_order_relaxed) -
                     d.tail.load(std::memory_order_relaxed);
        }
        return total;
    }
    std::size_t rx_depth() const {
        std::size_t total = 0;
        for (std::size_t b = 0; b < bands_; ++b) {
            const SegDir& d = seg_->dir(1 - side_, b);
            total += d.head.load(std::memory_order_relaxed) -
                     d.tail.load(std::memory_order_relaxed);
        }
        return total;
    }
    std::size_t bands() const noexcept { return bands_; }

    // -- transport hooks ----------------------------------------------------

    /// on_send_down: the ring refused the frame; carry it over TCP (after
    /// finishing any failover handshake that refusal was part of).
    void fallback_send(FrameBuffer frame) {
        std::lock_guard lk(send_mu_);
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
        }
        if (closed_.load(std::memory_order_relaxed) ||
            !tcp_up_.load(std::memory_order_relaxed)) {
            throw TransportError(label() + ": peer closed");
        }
        tcp_->send_frame(std::move(frame));
        tcp_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    /// on_recv_idle: the ring waited one cycle with no data. Poll the TCP
    /// channel for control/fallback traffic, and periodically check that
    /// the peer process still exists.
    RingRecv idle_poll() {
        if (closed_.load(std::memory_order_acquire)) {
            return RingRecv::ended();
        }
        if (tcp_fd_ >= 0 && tcp_up_.load(std::memory_order_relaxed)) {
            pollfd p{tcp_fd_, POLLIN | POLLRDHUP, 0};
            if (poll(&p, 1, 0) > 0) return pump_tcp();
        }
        if (++liveness_tick_ % 8 == 0 && !peer_alive()) {
            note_peer_dead();
        }
        return RingRecv{};
    }

    /// on_ring_closed: the segment is drained and done (graceful close,
    /// failover, or peer death); keep receiving from the TCP wire.
    RingRecv tcp_recv_blocking() {
        if (!tcp_up_.load(std::memory_order_relaxed) ||
            closed_.load(std::memory_order_relaxed)) {
            return RingRecv::ended();
        }
        return pump_tcp();
    }

    /// Orderly reroute-to-TCP. Freezes our rx tail, stops our tx, tells
    /// the peer (which replays our unconsumed inbound frames over TCP).
    void abandon(const char* reason) {
        std::lock_guard lk(send_mu_);
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
        }
        abandon_locked(reason);
    }

    void close_all() {
        if (close_done_.exchange(true)) return;
        {
            std::lock_guard lk(send_mu_);
            if (bye_pending_.load(std::memory_order_acquire)) {
                complete_peer_bye_locked();
            }
            closed_.store(true, std::memory_order_release);
            // Wake senders parked in a space wait so they drop their band
            // mutex (they re-check closed_), letting us take every band.
            wake_space_waiters();
            std::array<std::unique_lock<std::mutex>, shm_detail::kMaxShmBands>
                band_locks;
            for (std::size_t b = 0; b < bands_; ++b) {
                band_locks[b] = std::unique_lock(tx_[b].mu);
            }
            tx_up_.store(false, std::memory_order_release);
            for (std::size_t b = 0; b < bands_; ++b) {
                tx_dir(b).closed.store(1, std::memory_order_release);
            }
            std::atomic_thread_fence(std::memory_order_seq_cst);
            SegDir& d0 = tx_dir(0);
            d0.data_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d0.data_seq); // peer's receiver
        }
        { std::lock_guard rlk(recv_mu_); } // no pop in flight past here
        wake_local_waiters();
        // The mapping itself stays alive while borrowed frames hold the
        // session (each one keeps a shared_ptr); detach only drops our
        // attached flag so the peer and the orphan sweeper see us gone.
        seg_->detach();
        if (side_ == 0) seg_->unlink();
        tcp_->close();
    }

    // -- introspection ------------------------------------------------------

    ShmCounters counters() const {
        ShmCounters c;
        c.shm_frames_sent = shm_sent_.load(std::memory_order_relaxed);
        c.shm_frames_received = shm_recv_.load(std::memory_order_relaxed);
        c.tcp_frames_sent = tcp_sent_.load(std::memory_order_relaxed);
        c.tcp_frames_received = tcp_recv_.load(std::memory_order_relaxed);
        c.wakeups = wakeups_.load(std::memory_order_relaxed);
        c.futex_waits = futex_waits_.load(std::memory_order_relaxed);
        c.spins = spins_.load(std::memory_order_relaxed);
        c.failovers = failovers_.load(std::memory_order_relaxed);
        c.resent_frames = resent_.load(std::memory_order_relaxed);
        c.dropped_on_failover = dropped_.load(std::memory_order_relaxed);
        c.replay_skipped = replay_skipped_.load(std::memory_order_relaxed);
        c.bands = static_cast<std::uint32_t>(bands_);
        std::uint64_t txd = 0;
        std::uint64_t rxd = 0;
        for (std::size_t b = 0; b < bands_; ++b) {
            const SegDir& dt = seg_->dir(side_, b);
            const SegDir& dr = seg_->dir(1 - side_, b);
            c.band_tx_depth[b] = dt.head.load(std::memory_order_relaxed) -
                                 dt.tail.load(std::memory_order_relaxed);
            c.band_rx_depth[b] = dr.head.load(std::memory_order_relaxed) -
                                 dr.tail.load(std::memory_order_relaxed);
            c.band_tx_stalls[b] = tx_[b].stalls.load(std::memory_order_relaxed);
            c.band_tx_frames[b] = tx_[b].sent.load(std::memory_order_relaxed);
            c.band_rx_frames[b] =
                rx_[b].received.load(std::memory_order_relaxed);
            txd += c.band_tx_depth[b];
            rxd += c.band_rx_depth[b];
            c.rx_borrowed += rx_[b].borrowed.load(std::memory_order_relaxed);
            c.rx_copies += rx_[b].copies.load(std::memory_order_relaxed);
            c.rx_pin_stalls +=
                rx_[b].pin_stalls.load(std::memory_order_relaxed);
            c.rx_pinned += rx_[b].next.load(std::memory_order_relaxed) -
                           rx_[b].retired.load(std::memory_order_relaxed);
        }
        c.tx_depth = txd;
        c.rx_depth = rxd;
        c.shm_active = shm_active();
        return c;
    }

    bool shm_active() const {
        return tx_up_.load(std::memory_order_relaxed) &&
               !rx_frozen_.load(std::memory_order_relaxed) &&
               !closed_.load(std::memory_order_relaxed);
    }

    const std::string& segment_name() const { return seg_->name(); }
    std::uint64_t generation() const { return seg_->generation(); }
    std::string label() const { return "shm:" + seg_->name(); }

    FrameBufferPool& pool() noexcept {
        return opts_.pool != nullptr ? *opts_.pool : FrameBufferPool::global();
    }

private:
    /// Per-band producer state, guarded by its own mutex so a bulk band's
    /// space wait never blocks an urgent send. Cached consumer positions
    /// avoid re-reading the shared line until the ring looks full.
    struct TxBand {
        std::mutex mu;
        std::uint32_t head = 0;
        std::uint32_t cached_tail = 0;
        std::uint64_t arena_head = 0;
        std::uint64_t cached_arena_tail = 0;
        SegSlot* slots = nullptr;
        std::uint8_t* arena = nullptr;
        std::atomic<std::uint64_t> sent{0};
        std::atomic<std::uint64_t> stalls{0};
    };

    /// Per-band consumer state. `next` (the delivery cursor) is advanced
    /// by the recv thread under recv_mu_; the retire window — `retired`,
    /// `arena_retired`, the released bitmap — belongs to retire_mu_,
    /// because release hooks run on whatever thread drops a borrowed
    /// frame. `head_hint` is the recv thread's lock-free spin mirror.
    struct RxBand {
        std::atomic<std::uint32_t> next{0};
        std::uint32_t head_hint = 0;
        std::atomic<std::uint32_t> retired{0};
        std::uint64_t arena_retired = 0;
        std::atomic<std::uint32_t> skip_replay{0};
        std::unique_ptr<std::atomic<std::uint8_t>[]> released;
        SegSlot* slots = nullptr;
        std::uint8_t* arena = nullptr;
        std::atomic<std::uint64_t> received{0};
        std::atomic<std::uint64_t> borrowed{0};
        std::atomic<std::uint64_t> copies{0};
        std::atomic<std::uint64_t> pin_stalls{0};
    };

    enum SpaceResult { kSpaceOk, kSpaceDown, kSpacePeerDead };

    SegDir& tx_dir(std::size_t band) noexcept {
        return seg_->dir(side_, band);
    }
    SegDir& rx_dir(std::size_t band) noexcept {
        return seg_->dir(1 - side_, band);
    }

    /// Band selection mirrors LaneGroup: the GIOP flags octet names the
    /// band, clamped into the configured lane count. Short frames and
    /// single-band segments take band 0.
    std::size_t band_of(const std::uint8_t* data,
                        std::size_t len) const noexcept {
        if (bands_ == 1 || len < cdr::GiopHeader::kSize) return 0;
        return LanePolicy::band_for_frame(data, bands_);
    }

    bool rx_ring_has_data() noexcept {
        for (std::size_t b = 0; b < bands_; ++b) {
            if (rx_dir(b).head.load(std::memory_order_acquire) !=
                rx_[b].head_hint) {
                return true;
            }
        }
        return false;
    }

    bool rx_rings_closed() noexcept {
        for (std::size_t b = 0; b < bands_; ++b) {
            if (rx_dir(b).closed.load(std::memory_order_acquire) == 0) {
                return false;
            }
        }
        return true;
    }

    /// Anything that should abort an in-flight send attempt.
    bool tx_interrupted() const noexcept {
        return bye_pending_.load(std::memory_order_acquire) ||
               bye_sent_.load(std::memory_order_acquire) ||
               peer_dead_.load(std::memory_order_acquire) ||
               closed_.load(std::memory_order_acquire) ||
               !tx_up_.load(std::memory_order_acquire);
    }

    /// Only-if-waiters wake of the consumer's side-level data futex
    /// (Dekker with the consumer's registration: the seq_cst fence orders
    /// our head publish before the waiters exchange; the consumer's
    /// seq_cst registration orders before its head re-check, so one of us
    /// always sees the other). The exchange CLAIMS the registration: a
    /// woken-but-not-yet-scheduled consumer costs one wake per waiting
    /// episode, not one per push — on a single core the consumer can stay
    /// registered across a whole batch of sends. All bands funnel through
    /// band 0's dir; concurrent producers race on the exchange and
    /// exactly one wins.
    void wake_data_waiter(std::size_t len, std::size_t band) {
        SegDir& d0 = tx_dir(0);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (d0.data_waiters.exchange(0, std::memory_order_seq_cst) != 0) {
            d0.data_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d0.data_seq);
            wakeups_.fetch_add(1, std::memory_order_relaxed);
            obs::FlightRecorder::emit(obs::EventType::kShmWakeup, len, 0);
            // Priority handoff: on a banded segment, a band-0 frame just
            // woke a consumer that outranks whatever this thread does next
            // (typically draining bulk lanes). Without kernel priority
            // preemption (SCHED_FIFO is rarely available in containers) the
            // woken thread only runs when this one exhausts its slice, so
            // an urgent frame sits decoded-but-undelivered behind bulk
            // work. Yielding here is the uniprocessor stand-in for a
            // priority-based dispatch: it costs one syscall per *claimed*
            // wake (rare — the exchange above already dedups), and only
            // when lanes exist to invert.
            if (bands_ > 1 && band == 0) {
                std::this_thread::yield();
            }
        }
    }

    /// Nudge every band's space futex so parked senders re-check state
    /// (and drop their band mutex when a transition is in flight).
    void wake_space_waiters() {
        for (std::size_t b = 0; b < bands_; ++b) {
            SegDir& d = tx_dir(b);
            d.space_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d.space_seq);
        }
    }

    /// Reserve a slot + `len` arena bytes in one band, applying the wrap
    /// skip. Blocks (bounded futex cycles with liveness/bye checks) under
    /// backpressure.
    SpaceResult acquire_tx_space_locked(TxBand& tx, std::size_t band,
                                        std::size_t len,
                                        std::size_t& pos_out) {
        SegDir& d = tx_dir(band);
        for (;;) {
            if (tx.head - tx.cached_tail >= capacity_) {
                tx.cached_tail = d.tail.load(std::memory_order_acquire);
            }
            const std::uint64_t pos = tx.arena_head % arena_bytes_;
            const std::uint64_t skip =
                (arena_bytes_ - pos < len) ? (arena_bytes_ - pos) : 0;
            const std::uint64_t need = skip + align8(len);
            if (tx.arena_head + need - tx.cached_arena_tail > arena_bytes_) {
                tx.cached_arena_tail =
                    d.arena_tail.load(std::memory_order_acquire);
            }
            if (tx.head - tx.cached_tail < capacity_ &&
                tx.arena_head + need - tx.cached_arena_tail <= arena_bytes_) {
                tx.arena_head += skip;
                pos_out =
                    static_cast<std::size_t>(tx.arena_head % arena_bytes_);
                return kSpaceOk;
            }
            const SpaceResult w = wait_tx_space_locked(tx, band);
            if (w != kSpaceOk) return w;
        }
    }

    /// One bounded wait for the consumer to free space, holding only this
    /// band's mutex. Never completes a bye or peer-death transition here —
    /// those take send_mu_ then every band mutex, the wrong order from
    /// under a band mutex — it just reports the condition and the caller
    /// finishes it after unlocking. Transitions wake the space futexes
    /// before taking band mutexes, so a parked waiter re-checks promptly.
    SpaceResult wait_tx_space_locked(TxBand& tx, std::size_t band) {
        if (tx_interrupted()) return kSpaceDown;
        if (!peer_alive()) return kSpacePeerDead;
        SegDir& d = tx_dir(band);
        const std::uint32_t seen_tail = tx.cached_tail;
        const std::uint64_t seen_arena_tail = tx.cached_arena_tail;
        tx.stalls.fetch_add(1, std::memory_order_relaxed);
        // SPSC per band dir: producers serialize on tx.mu, so at most one
        // registrar; the retirer claims with exchange(0).
        d.space_waiters.store(1, std::memory_order_seq_cst);
        const std::uint32_t seq = d.space_seq.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const bool progressed =
            d.tail.load(std::memory_order_acquire) != seen_tail ||
            d.arena_tail.load(std::memory_order_acquire) != seen_arena_tail ||
            tx_interrupted();
        if (!progressed) {
            futex_wait_us(d.space_seq, seq, opts_.wait_cycle_us);
            futex_waits_.fetch_add(1, std::memory_order_relaxed);
        }
        d.space_waiters.store(0, std::memory_order_release);
        if (tx_interrupted()) return kSpaceDown;
        return kSpaceOk;
    }

    /// Non-blocking pop of our inbound rings, band 0 (most urgent) first.
    /// Exactly one of: frame; closed (rings down AND drained); idle.
    RingRecv try_pop() {
        std::lock_guard lk(recv_mu_);
        if (rx_frozen_.load(std::memory_order_acquire) ||
            closed_.load(std::memory_order_acquire)) {
            return RingRecv::ended();
        }
        bool all_closed = true;
        for (std::size_t b = 0; b < bands_; ++b) {
            SegDir& d = rx_dir(b);
            const std::uint32_t next =
                rx_[b].next.load(std::memory_order_relaxed);
            if (d.head.load(std::memory_order_acquire) != next) {
                return pop_band_locked(b, next);
            }
            if (d.closed.load(std::memory_order_acquire) == 0) {
                all_closed = false;
            }
        }
        const bool done = rx_peer_done_.load(std::memory_order_acquire) ||
                          all_closed ||
                          peer_dead_.load(std::memory_order_acquire);
        return done ? RingRecv::ended() : RingRecv{};
    }

    /// Deliver the frame at `next` in band `b`. Zero-copy when borrowing
    /// is on and the pin budget allows: the frame is a view of the arena
    /// slot, the release hook retires it when the frame dies, and the
    /// keepalive pins this session (and the mapping) underneath it.
    /// Otherwise copy out into a pooled buffer and retire immediately.
    RingRecv pop_band_locked(std::size_t b, std::uint32_t next) {
        RxBand& rx = rx_[b];
        const std::uint32_t idx = next & mask_;
        const SegSlot slot = rx.slots[idx];
        std::uint8_t* src = rx.arena + slot.offset;
        // Delivered-but-unretired slots. Capping below capacity keeps
        // bitmap indices collision-free (at pinned == capacity the next
        // pop would reuse a still-pinned slot's bit).
        const std::uint32_t pinned =
            next - rx.retired.load(std::memory_order_acquire);
        FrameBuffer out;
        bool copied = false;
        if (borrowed_ && pinned < max_pinned_) {
            out = FrameBuffer::borrow(
                src, slot.len, &ShmSession::release_hook, this,
                (static_cast<std::uint32_t>(b) << 24) | idx,
                shared_from_this());
            rx.borrowed.fetch_add(1, std::memory_order_relaxed);
            pool().note_borrowed();
        } else {
            if (borrowed_) {
                rx.pin_stalls.fetch_add(1, std::memory_order_relaxed);
            }
            out = pool().acquire(slot.len);
            std::memcpy(out.data(), src, slot.len);
            rx.copies.fetch_add(1, std::memory_order_relaxed);
            copied = true;
        }
        rx.next.store(next + 1, std::memory_order_release);
        rx.head_hint = next + 1;
        rx.received.fetch_add(1, std::memory_order_relaxed);
        shm_recv_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kFrameRecv, slot.len,
                                  static_cast<std::uint32_t>(b));
        if (copied) release_slot(b, idx);
        return RingRecv{.frame = std::move(out)};
    }

    static void release_hook(void* ctx, std::uint32_t token) noexcept {
        static_cast<ShmSession*>(ctx)->release_slot(token >> 24,
                                                    token & 0xffffffu);
    }

    /// Borrowed-frame death (any thread): mark the slot released, then
    /// advance the published tail over the maximal released prefix. The
    /// tail never moves while the rx side is frozen or closed — a
    /// failover's replay window is pinned to the frozen tail (see
    /// abandon_locked), and a closed segment is no longer producing.
    void release_slot(std::size_t band, std::uint32_t idx) noexcept {
        RxBand& rx = rx_[band];
        std::lock_guard lk(retire_mu_);
        rx.released[idx].store(1, std::memory_order_relaxed);
        if (rx_frozen_.load(std::memory_order_acquire) ||
            closed_.load(std::memory_order_acquire)) {
            return; // bookkeeping only; the tail stays frozen
        }
        retire_band_locked(band);
    }

    /// Advance retired/tail over every contiguously released slot,
    /// mirroring the producer's wrap skip on the arena position, then
    /// wake a space-starved producer if one is parked.
    void retire_band_locked(std::size_t band) noexcept {
        RxBand& rx = rx_[band];
        SegDir& d = rx_dir(band);
        std::uint32_t r = rx.retired.load(std::memory_order_relaxed);
        const std::uint32_t limit = rx.next.load(std::memory_order_acquire);
        bool advanced = false;
        while (r != limit &&
               rx.released[r & mask_].load(std::memory_order_relaxed) != 0) {
            rx.released[r & mask_].store(0, std::memory_order_relaxed);
            const SegSlot slot = rx.slots[r & mask_];
            // A slot that does not start at our retire position means the
            // producer jumped to the arena boundary.
            if (rx.arena_retired % arena_bytes_ != slot.offset) {
                rx.arena_retired +=
                    arena_bytes_ - (rx.arena_retired % arena_bytes_);
            }
            rx.arena_retired += align8(slot.len);
            ++r;
            advanced = true;
        }
        if (!advanced) return;
        d.arena_tail.store(rx.arena_retired, std::memory_order_release);
        rx.retired.store(r, std::memory_order_release);
        d.tail.store(r, std::memory_order_release);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (d.space_waiters.exchange(0, std::memory_order_seq_cst) != 0) {
            d.space_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d.space_seq);
            wakeups_.fetch_add(1, std::memory_order_relaxed);
            obs::FlightRecorder::emit(obs::EventType::kShmWakeup, 0, 1);
        }
    }

    /// Read one TCP frame (blocking) and classify: shm control is handled
    /// here, data frames are delivered to the caller.
    RingRecv pump_tcp() {
        std::optional<FrameBuffer> f;
        try {
            f = tcp_->recv_frame();
        } catch (const TransportError&) {
            f.reset();
        }
        if (!f.has_value()) {
            tcp_up_.store(false, std::memory_order_release);
            // Peer's graceful close: its ring-closed flag (or death) ends
            // the segment side; retry lets the ring report it.
            return RingRecv{};
        }
        if (is_control_bye(*f)) {
            handle_peer_bye();
            return RingRecv{};
        }
        // After we froze our rx side with delivered-but-unretired slots
        // outstanding, the peer's replay re-sends those frames (it can
        // only see the frozen tail). Drop exactly the per-band skip
        // counts recorded at the freeze; everything past them is new.
        if (rx_frozen_.load(std::memory_order_acquire)) {
            const std::size_t band = band_of(f->data(), f->size());
            auto& skip = rx_[band].skip_replay;
            const std::uint32_t left = skip.load(std::memory_order_acquire);
            if (left > 0) {
                skip.store(left - 1, std::memory_order_release);
                replay_skipped_.fetch_add(1, std::memory_order_relaxed);
                return RingRecv{};
            }
        }
        tcp_recv_.fetch_add(1, std::memory_order_relaxed);
        return RingRecv{.frame = std::move(*f)};
    }

    static bool is_control_bye(const FrameBuffer& f) noexcept {
        try {
            if (f.size() < cdr::GiopHeader::kSize) return false;
            const cdr::GiopHeader h = cdr::decode_header(f.data(), f.size());
            if (h.msg_type != cdr::GiopMsgType::kRequest) return false;
            const cdr::DecodedRequestView v =
                cdr::decode_request_view(f.data(), f.size());
            return v.header.object_key == kControlKey &&
                   v.header.operation == "bye";
        } catch (...) {
            return false;
        }
    }

    /// Inbound bye (recv thread). Flag it, wake any sender blocked inside
    /// a space wait (it aborts and falls through to the completion — see
    /// wait_tx_space_locked), then complete under send_mu_.
    void handle_peer_bye() {
        bye_pending_.store(true, std::memory_order_release);
        wake_space_waiters();
        std::lock_guard lk(send_mu_);
        complete_peer_bye_locked();
    }

    /// The peer froze its rx tails and switched to TCP. Take every band
    /// mutex (stopping the producers), replay exactly our unconsumed
    /// [tail, head) outbound frames over TCP — band 0 first, and ahead of
    /// any newer sends, which serialize behind send_mu_ — then treat the
    /// peer's production side as finished. The replay batch-reserves
    /// pooled buffers and stages frames through the coalescing TCP
    /// writer, so a 400-frame resend costs a handful of pool-lock
    /// acquisitions and a few large writev flushes instead of one lock
    /// and one syscall per frame.
    void complete_peer_bye_locked() {
        if (!bye_pending_.exchange(false, std::memory_order_acq_rel)) return;
        std::array<std::unique_lock<std::mutex>, shm_detail::kMaxShmBands>
            band_locks;
        for (std::size_t b = 0; b < bands_; ++b) {
            band_locks[b] = std::unique_lock(tx_[b].mu);
        }
        tx_up_.store(false, std::memory_order_release);
        const bool coalesce = tcp_up_.load(std::memory_order_relaxed);
        if (coalesce) tcp_->set_coalescing(true);
        for (std::size_t b = 0; b < bands_; ++b) {
            replay_band_locked(tx_[b], tx_dir(b));
        }
        if (coalesce) {
            try {
                tcp_->set_coalescing(false); // flush the staged replay
            } catch (const TransportError&) {
                tcp_up_.store(false, std::memory_order_release);
            }
        }
        rx_peer_done_.store(true, std::memory_order_release);
        wake_local_waiters();
        failovers_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kShmFailover, 0, 0);
    }

    void replay_band_locked(TxBand& tx, SegDir& d) {
        std::uint32_t t = d.tail.load(std::memory_order_acquire);
        std::uint64_t at = d.arena_tail.load(std::memory_order_acquire);
        constexpr std::size_t kReplayBatch = 32;
        FrameBuffer bufs[kReplayBatch];
        while (t != tx.head) {
            // Window of up to kReplayBatch pending slots, sized by the
            // largest frame among them so one batch-acquire covers all of
            // them (the per-frame resize down never reallocates).
            std::size_t n = 0;
            std::size_t max_len = 0;
            for (std::uint32_t w = t; w != tx.head && n < kReplayBatch;
                 ++w, ++n) {
                const std::size_t len = tx.slots[w & mask_].len;
                if (len > max_len) max_len = len;
            }
            if (tcp_up_.load(std::memory_order_relaxed)) {
                pool().acquire_batch(max_len, bufs, n);
            }
            for (std::size_t i = 0; i < n; ++i) {
                const SegSlot slot = tx.slots[t & mask_];
                if (at % arena_bytes_ != slot.offset) {
                    at += arena_bytes_ - (at % arena_bytes_);
                }
                at += align8(slot.len);
                ++t;
                if (!tcp_up_.load(std::memory_order_relaxed)) {
                    dropped_.fetch_add(1, std::memory_order_relaxed);
                    bufs[i].release();
                    continue;
                }
                bufs[i].resize(slot.len);
                std::memcpy(bufs[i].data(), tx.arena + slot.offset, slot.len);
                try {
                    tcp_->send_frame(std::move(bufs[i]));
                    resent_.fetch_add(1, std::memory_order_relaxed);
                } catch (const TransportError&) {
                    tcp_up_.store(false, std::memory_order_release);
                    dropped_.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
    }

    /// Orderly reroute-to-TCP. Stops our producers (all bands), freezes
    /// our rx tails recording how many delivered-but-unretired slots each
    /// band holds — the peer's replay will re-send those, and pump_tcp
    /// skips exactly that many — then tells the peer. Pinned borrowed
    /// frames stay valid across the switch: the frozen tails keep the
    /// peer's producer from ever reclaiming their arena bytes, and it
    /// stops producing once the bye lands anyway.
    void abandon_locked(const char* reason) {
        if (bye_sent_.exchange(true, std::memory_order_acq_rel)) return;
        (void)reason;
        // Senders parked in a space wait hold their band mutex; they
        // re-check bye_sent_ on wake and bail, letting us take it.
        wake_space_waiters();
        {
            std::array<std::unique_lock<std::mutex>, shm_detail::kMaxShmBands>
                band_locks;
            for (std::size_t b = 0; b < bands_; ++b) {
                band_locks[b] = std::unique_lock(tx_[b].mu);
            }
            tx_up_.store(false, std::memory_order_release);
        } // no ring publish of ours can land past this point
        {
            std::lock_guard rlk(recv_mu_);
            std::lock_guard tlk(retire_mu_);
            rx_frozen_.store(true, std::memory_order_release);
            for (std::size_t b = 0; b < bands_; ++b) {
                rx_[b].skip_replay.store(
                    rx_[b].next.load(std::memory_order_relaxed) -
                        rx_[b].retired.load(std::memory_order_relaxed),
                    std::memory_order_release);
            }
        }
        wake_local_waiters();
        if (tcp_up_.load(std::memory_order_relaxed)) {
            try {
                send_control_locked("bye");
            } catch (const TransportError&) {
                tcp_up_.store(false, std::memory_order_release);
            }
        }
        failovers_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kShmFailover, 1, 0);
    }

    void note_peer_dead() {
        std::lock_guard lk(send_mu_);
        note_peer_dead_locked();
    }

    /// Peer died without a bye. Our unconsumed outbound frames are moot
    /// (their consumer is gone — counted, not resent); the peer's already
    /// published inbound frames stay deliverable until the rings drain,
    /// and already-pinned slots stay valid forever (a dead producer can
    /// never reclaim them).
    void note_peer_dead_locked() {
        if (peer_dead_.exchange(true, std::memory_order_acq_rel)) return;
        wake_space_waiters();
        {
            std::array<std::unique_lock<std::mutex>, shm_detail::kMaxShmBands>
                band_locks;
            for (std::size_t b = 0; b < bands_; ++b) {
                band_locks[b] = std::unique_lock(tx_[b].mu);
            }
            tx_up_.store(false, std::memory_order_release);
            for (std::size_t b = 0; b < bands_; ++b) {
                dropped_.fetch_add(
                    tx_[b].head -
                        tx_dir(b).tail.load(std::memory_order_acquire),
                    std::memory_order_relaxed);
            }
        }
        rx_peer_done_.store(true, std::memory_order_release);
        wake_local_waiters();
        failovers_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kShmFailover, 2, 0);
    }

    bool peer_alive() noexcept {
        const SegHeader& h = seg_->header();
        const int peer = 1 - side_;
        if (h.attached[peer].load(std::memory_order_acquire) == 0) {
            // Graceful detach (or not yet attached): not death. The ring
            // closed flag / TCP EOF covers the graceful path.
            return true;
        }
        return pid_alive(static_cast<pid_t>(
            h.pid[peer].load(std::memory_order_acquire)));
    }

    /// Wake our own receiver (sleeping on the peer side's band-0 data
    /// futex) and our own senders (sleeping on our per-band space
    /// futexes) so they re-check state.
    void wake_local_waiters() {
        SegDir& rd = rx_dir(0);
        rd.data_seq.fetch_add(1, std::memory_order_release);
        futex_wake_all(rd.data_seq);
        wake_space_waiters();
    }

    void send_control_locked(const char* op) {
        cdr::RequestHeader req;
        req.request_id = 0;
        req.response_expected = false;
        req.object_key = kControlKey;
        req.operation = op;
        tcp_->send_frame(cdr::encode_request(req, nullptr, 0));
    }

    std::shared_ptr<ShmSegment> seg_;
    std::unique_ptr<Transport> tcp_;
    const ShmOptions opts_;
    const int side_;
    std::uint32_t capacity_ = 0;
    std::uint32_t mask_ = 0;
    std::uint64_t arena_bytes_ = 0;
    std::size_t max_frame_ = 0;
    std::size_t bands_ = 1;
    std::uint32_t max_pinned_ = 1;
    const bool borrowed_ = opts_.borrowed_frames;
    int tcp_fd_ = -1;

    std::mutex send_mu_;   ///< failover state machine + TCP send ordering
    std::mutex recv_mu_;   ///< pop vs rx-freeze (never held across a wait)
    std::mutex retire_mu_; ///< released bitmaps + published tails

    std::array<TxBand, shm_detail::kMaxShmBands> tx_;
    std::array<RxBand, shm_detail::kMaxShmBands> rx_;

    std::uint64_t liveness_tick_ = 0; ///< recv-thread-only

    std::atomic<bool> tx_up_{true};
    std::atomic<bool> rx_frozen_{false};
    std::atomic<bool> rx_peer_done_{false};
    std::atomic<bool> bye_pending_{false};
    std::atomic<bool> bye_sent_{false};
    std::atomic<bool> peer_dead_{false};
    std::atomic<bool> closed_{false};
    std::atomic<bool> close_done_{false};
    std::atomic<bool> tcp_up_{true};

    std::atomic<std::uint64_t> shm_sent_{0};
    std::atomic<std::uint64_t> shm_recv_{0};
    std::atomic<std::uint64_t> tcp_sent_{0};
    std::atomic<std::uint64_t> tcp_recv_{0};
    std::atomic<std::uint64_t> wakeups_{0};
    std::atomic<std::uint64_t> futex_waits_{0};
    std::atomic<std::uint64_t> spins_{0};
    std::atomic<std::uint64_t> failovers_{0};
    std::atomic<std::uint64_t> resent_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> replay_skipped_{0};
};

// ---- ShmRingPair ----------------------------------------------------------

bool ShmRingPair::send(FrameBuffer& frame) { return session->ring_send(frame); }
RingRecv ShmRingPair::recv() { return session->ring_recv(); }
void ShmRingPair::close() { session->close_all(); }
std::size_t ShmRingPair::tx_depth() const { return session->tx_depth(); }
std::size_t ShmRingPair::rx_depth() const { return session->rx_depth(); }

// ---- ShmTransport ---------------------------------------------------------

ShmTransport::ShmTransport(std::shared_ptr<ShmSession> session,
                           std::string label)
    : RingPairTransport(ShmRingPair{std::move(session)}, std::move(label)) {}

ShmTransport::~ShmTransport() { close(); }

ShmCounters ShmTransport::counters() const { return rings_.session->counters(); }
bool ShmTransport::shm_active() const { return rings_.session->shm_active(); }
std::size_t ShmTransport::bands() const { return rings_.session->bands(); }
const std::string& ShmTransport::segment_name() const {
    return rings_.session->segment_name();
}
std::uint64_t ShmTransport::generation() const {
    return rings_.session->generation();
}
void ShmTransport::abandon_shm(const char* reason) {
    rings_.session->abandon(reason);
}
FrameBufferPool& ShmTransport::frame_pool() noexcept {
    return rings_.session->pool();
}
void ShmTransport::on_send_down(FrameBuffer&& frame) {
    rings_.session->fallback_send(std::move(frame));
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
}
RingRecv ShmTransport::on_ring_closed() {
    return rings_.session->tcp_recv_blocking();
}
RingRecv ShmTransport::on_recv_idle() { return rings_.session->idle_poll(); }
void ShmTransport::on_close() {}

// ---- handshake ------------------------------------------------------------

namespace {

constexpr std::uint32_t kHelloRequestId = 1;

std::vector<std::uint8_t> encode_hello(const std::string& segment_name,
                                       std::uint64_t generation) {
    cdr::OutputStream payload;
    payload.write_string(segment_name);
    payload.write_ulonglong(generation);
    payload.write_ulong(shm_detail::kVersion);
    cdr::RequestHeader req;
    req.request_id = kHelloRequestId;
    req.response_expected = true;
    req.object_key = kControlKey;
    req.operation = "hello";
    const std::vector<std::uint8_t> body = payload.take_buffer();
    return cdr::encode_request(req, body.data(), body.size());
}

std::vector<std::uint8_t> encode_hello_reply(bool ok,
                                             const std::string& detail) {
    cdr::OutputStream payload;
    payload.write_ulong(ok ? 1 : 0);
    payload.write_string(detail);
    cdr::ReplyHeader rep;
    rep.request_id = kHelloRequestId;
    rep.status = cdr::ReplyStatus::kNoException;
    const std::vector<std::uint8_t> body = payload.take_buffer();
    return cdr::encode_reply(rep, body.data(), body.size());
}

/// Plain transport wrapper that yields one already-read frame before
/// delegating — used when a ShmAcceptor's first inbound frame turns out
/// not to be a hello (a protocol-unaware client), so nothing is lost.
class StashedFrameTransport final : public Transport {
public:
    StashedFrameTransport(std::unique_ptr<Transport> inner, FrameBuffer first)
        : inner_(std::move(inner)), stash_(std::move(first)), have_(true) {}

    void send_frame(FrameBuffer frame) override {
        inner_->send_frame(std::move(frame));
    }
    std::optional<FrameBuffer> recv_frame() override {
        if (have_) {
            have_ = false;
            return std::move(stash_);
        }
        return inner_->recv_frame();
    }
    void close() override { inner_->close(); }
    std::string peer_description() const override {
        return inner_->peer_description();
    }
    TransportStats stats() const override { return inner_->stats(); }
    void prepare_close() override { inner_->prepare_close(); }
    FrameBufferPool& frame_pool() noexcept override {
        return inner_->frame_pool();
    }

private:
    std::unique_ptr<Transport> inner_;
    FrameBuffer stash_;
    bool have_;
};

} // namespace

ShmConnectResult shm_upgrade_connect(const std::string& host,
                                     std::uint16_t port,
                                     const ShmOptions& shm_options,
                                     const TcpOptions& tcp_options) {
    sweep_once_at_startup();
    std::unique_ptr<Transport> tcp = tcp_connect(host, port, tcp_options);

    std::shared_ptr<ShmSegment> seg;
    std::string create_fail;
    try {
        seg = ShmSegment::create(shm_options);
    } catch (const TransportError& e) {
        create_fail = e.what();
    }

    tcp->send_frame(encode_hello(seg ? seg->name() : std::string(),
                                 seg ? seg->generation() : 0));
    std::optional<FrameBuffer> reply = tcp->recv_frame();
    if (!reply.has_value()) {
        throw TransportError("shm handshake: peer closed before replying");
    }
    bool ok = false;
    std::string detail;
    try {
        const cdr::DecodedReply rep =
            cdr::decode_reply(reply->data(), reply->size());
        cdr::InputStream in(rep.payload, rep.payload_len,
                            cdr::decode_header(reply->data(), reply->size())
                                .byte_order);
        ok = in.read_ulong() != 0;
        detail = in.read_string();
    } catch (const std::exception& e) {
        throw TransportError(std::string("shm handshake: malformed reply: ") +
                             e.what());
    }

    if (ok && seg) {
        const std::string name = seg->name();
        auto session = std::make_shared<ShmSession>(seg, std::move(tcp),
                                                    shm_options);
        return ShmConnectResult{
            std::make_unique<ShmTransport>(std::move(session),
                                           "shm-client:" + name),
            true, "segment " + name};
    }
    seg.reset(); // creator dtor unlinks the unused segment
    if (!create_fail.empty() && detail.empty()) detail = create_fail;
    return ShmConnectResult{std::move(tcp), false, detail};
}

ShmAcceptor::ShmAcceptor(std::uint16_t port, const ShmOptions& shm_options,
                         const TcpOptions& tcp_options)
    : tcp_(port, tcp_options), shm_options_(shm_options) {
    sweep_once_at_startup();
}

ShmConnectResult ShmAcceptor::accept() {
    std::unique_ptr<Transport> tcp = tcp_.accept();
    if (!tcp) return ShmConnectResult{nullptr, false, "acceptor closed"};

    std::optional<FrameBuffer> first;
    try {
        first = tcp->recv_frame();
    } catch (const TransportError& e) {
        return ShmConnectResult{nullptr, false,
                                std::string("handshake read failed: ") +
                                    e.what()};
    }
    if (!first.has_value()) {
        return ShmConnectResult{nullptr, false,
                                "peer closed during handshake"};
    }

    std::string seg_name;
    std::uint64_t generation = 0;
    std::uint32_t version = 0;
    bool is_hello = false;
    try {
        const cdr::GiopHeader gh =
            cdr::decode_header(first->data(), first->size());
        if (gh.msg_type == cdr::GiopMsgType::kRequest) {
            const cdr::DecodedRequestView v =
                cdr::decode_request_view(first->data(), first->size());
            if (v.header.object_key == kControlKey &&
                v.header.operation == "hello") {
                is_hello = true;
                cdr::InputStream in(v.payload, v.payload_len, v.byte_order);
                seg_name = in.read_string();
                generation = in.read_ulonglong();
                version = in.read_ulong();
            }
        }
    } catch (...) {
        is_hello = false;
    }
    if (!is_hello) {
        // Protocol-unaware client: hand back plain TCP with the frame
        // re-queued so nothing is lost.
        return ShmConnectResult{std::make_unique<StashedFrameTransport>(
                                    std::move(tcp), std::move(*first)),
                                false, "peer sent no shm hello"};
    }

    std::string nack;
    std::shared_ptr<ShmSegment> seg;
    if (seg_name.empty()) {
        nack = "client could not create a segment";
    } else if (version != shm_detail::kVersion) {
        nack = "version mismatch: hello v" + std::to_string(version) +
               ", expected v" + std::to_string(shm_detail::kVersion);
    } else {
        try {
            seg = ShmSegment::attach(seg_name, generation);
        } catch (const TransportError& e) {
            nack = e.what();
        }
    }

    try {
        tcp->send_frame(encode_hello_reply(seg != nullptr, nack));
    } catch (const TransportError& e) {
        return ShmConnectResult{nullptr, false,
                                std::string("handshake reply failed: ") +
                                    e.what()};
    }
    if (!seg) return ShmConnectResult{std::move(tcp), false, nack};

    ShmOptions opts = shm_options_;
    // Geometry lives in the segment header; only the local knobs (spin
    // budget, wait cadence, pool) come from the acceptor's options.
    const std::string name = seg->name();
    auto session = std::make_shared<ShmSession>(seg, std::move(tcp), opts);
    return ShmConnectResult{
        std::make_unique<ShmTransport>(std::move(session),
                                       "shm-server:" + name),
        true, "segment " + name};
}

// ---- orphan sweep ---------------------------------------------------------

std::size_t sweep_orphan_segments() noexcept {
    std::size_t removed = 0;
    DIR* dir = opendir("/dev/shm");
    if (dir == nullptr) return 0;
    constexpr const char* kPrefix = "compadres."; // kNamePrefix sans '/'
    const std::size_t prefix_len = std::strlen(kPrefix);
    while (dirent* e = readdir(dir)) {
        if (std::strncmp(e->d_name, kPrefix, prefix_len) != 0) continue;
        // The name embeds the creator pid; a live creator means a segment
        // mid-handshake whose header may not be written yet — never sweep
        // those out from under it.
        const long name_pid = std::strtol(e->d_name + prefix_len, nullptr, 10);
        if (pid_alive(static_cast<pid_t>(name_pid))) continue;

        const std::string shm_name = std::string("/") + e->d_name;
        int fd = shm_open(shm_name.c_str(), O_RDONLY, 0);
        if (fd < 0) continue;
        bool drop = false;
        struct stat st{};
        if (fstat(fd, &st) != 0 ||
            static_cast<std::size_t>(st.st_size) < sizeof(SegHeader)) {
            drop = true;
        } else {
            void* p = mmap(nullptr, sizeof(SegHeader), PROT_READ, MAP_SHARED,
                           fd, 0);
            if (p != MAP_FAILED) {
                const auto* h = static_cast<const SegHeader*>(p);
                if (std::memcmp(h->magic, shm_detail::kMagic,
                                sizeof h->magic) != 0) {
                    drop = true;
                } else {
                    bool alive = false;
                    for (int s = 0; s < 2; ++s) {
                        if (h->attached[s].load(std::memory_order_acquire) !=
                                0 &&
                            pid_alive(static_cast<pid_t>(h->pid[s].load(
                                std::memory_order_acquire)))) {
                            alive = true;
                        }
                    }
                    drop = !alive;
                }
                munmap(p, sizeof(SegHeader));
            }
        }
        ::close(fd);
        if (drop && shm_unlink(shm_name.c_str()) == 0) ++removed;
    }
    closedir(dir);
    return removed;
}

} // namespace compadres::net
