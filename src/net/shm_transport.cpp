#include "net/shm_transport.hpp"

#include "cdr/giop.hpp"
#include "obs/flight_recorder.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <linux/futex.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace compadres::net {

using shm_detail::SegDir;
using shm_detail::SegHeader;
using shm_detail::SegSlot;
using shm_detail::align8;

namespace {

// ---- futex plumbing -------------------------------------------------------
// Non-private futexes: the wait/wake address lives in a MAP_SHARED segment,
// so the kernel keys on the backing page and the two processes' different
// virtual addresses still name the same futex.

void futex_wait_us(std::atomic<std::uint32_t>& word, std::uint32_t expected,
                   std::size_t timeout_us) {
    timespec ts;
    ts.tv_sec = static_cast<time_t>(timeout_us / 1000000);
    ts.tv_nsec = static_cast<long>((timeout_us % 1000000) * 1000);
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAIT,
            expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>& word) {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    asm volatile("" ::: "memory");
#endif
}

std::uint64_t mint_generation() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (static_cast<std::uint64_t>(ts.tv_sec) << 32) ^
           static_cast<std::uint64_t>(ts.tv_nsec) ^
           (static_cast<std::uint64_t>(getpid()) << 16) ^
           counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Clamp options into a self-consistent geometry (pow2 ring, arena big
/// enough that the largest frame plus a wrap skip always fits).
ShmOptions normalize(ShmOptions o) {
    o.ring_capacity = round_up_pow2(o.ring_capacity ? o.ring_capacity : 2);
    if (o.ring_capacity < 2) o.ring_capacity = 2;
    if (o.arena_bytes < 4096) o.arena_bytes = 4096;
    o.arena_bytes = align8(o.arena_bytes);
    if (o.max_frame_bytes > o.arena_bytes / 2) {
        o.max_frame_bytes = o.arena_bytes / 2;
    }
    if (o.max_frame_bytes < 64) o.max_frame_bytes = 64;
    return o;
}

bool pid_alive(pid_t pid) noexcept {
    return pid > 0 && (kill(pid, 0) == 0 || errno == EPERM);
}

void sweep_once_at_startup() {
    static std::once_flag flag;
    std::call_once(flag, [] { sweep_orphan_segments(); });
}

constexpr const char* kControlKey = "compadres.shm";

} // namespace

// ---- ShmSegment -----------------------------------------------------------

std::shared_ptr<ShmSegment> ShmSegment::create(const ShmOptions& options) {
    sweep_once_at_startup();
    const ShmOptions o = normalize(options);
    static std::atomic<std::uint32_t> seq{0};

    auto seg = std::shared_ptr<ShmSegment>(new ShmSegment());
    int fd = -1;
    for (int attempt = 0; attempt < 4 && fd < 0; ++attempt) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s%u.%u.%llx", shm_detail::kNamePrefix,
                      static_cast<unsigned>(getpid()),
                      seq.fetch_add(1, std::memory_order_relaxed),
                      static_cast<unsigned long long>(mint_generation() & 0xffffff));
        fd = shm_open(buf, O_CREAT | O_EXCL | O_RDWR, 0600);
        if (fd >= 0) seg->name_ = buf;
    }
    if (fd < 0) {
        throw TransportError(std::string("shm_open failed: ") +
                             std::strerror(errno));
    }
    const std::size_t total =
        shm_detail::segment_bytes(o.ring_capacity, o.arena_bytes);
    if (ftruncate(fd, static_cast<off_t>(total)) != 0) {
        const int err = errno;
        ::close(fd);
        shm_unlink(seg->name_.c_str());
        throw TransportError(std::string("shm ftruncate failed: ") +
                             std::strerror(err));
    }
    void* base =
        mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        shm_unlink(seg->name_.c_str());
        throw TransportError(std::string("shm mmap failed: ") +
                             std::strerror(errno));
    }
    seg->base_ = static_cast<std::uint8_t*>(base);
    seg->map_bytes_ = total;
    seg->side_ = 0;

    auto* h = new (base) SegHeader{};
    std::memcpy(h->magic, shm_detail::kMagic, sizeof h->magic);
    h->version = shm_detail::kVersion;
    h->ring_capacity = static_cast<std::uint32_t>(o.ring_capacity);
    h->arena_bytes = static_cast<std::uint32_t>(o.arena_bytes);
    h->max_frame_bytes = static_cast<std::uint32_t>(o.max_frame_bytes);
    h->generation = mint_generation();
    h->pid[0].store(static_cast<std::uint32_t>(getpid()),
                    std::memory_order_relaxed);
    h->attached[0].store(1, std::memory_order_release);
    return seg;
}

std::shared_ptr<ShmSegment> ShmSegment::attach(const std::string& name,
                                               std::uint64_t generation) {
    sweep_once_at_startup();
    int fd = shm_open(name.c_str(), O_RDWR, 0);
    if (fd < 0) {
        throw TransportError("shm segment unavailable (cross-host peer or "
                             "cleaned segment): " +
                             name);
    }
    struct stat st{};
    if (fstat(fd, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < sizeof(SegHeader)) {
        ::close(fd);
        throw TransportError("shm segment truncated: " + name);
    }
    const std::size_t total = static_cast<std::size_t>(st.st_size);
    void* base =
        mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        throw TransportError(std::string("shm mmap failed: ") +
                             std::strerror(errno));
    }
    auto seg = std::shared_ptr<ShmSegment>(new ShmSegment());
    seg->base_ = static_cast<std::uint8_t*>(base);
    seg->map_bytes_ = total;
    seg->side_ = 1;
    seg->name_ = name;

    SegHeader& h = seg->header();
    if (std::memcmp(h.magic, shm_detail::kMagic, sizeof h.magic) != 0) {
        throw TransportError("shm segment bad magic: " + name);
    }
    if (h.version != shm_detail::kVersion) {
        throw TransportError("shm version mismatch: segment v" +
                             std::to_string(h.version) + ", expected v" +
                             std::to_string(shm_detail::kVersion));
    }
    if (shm_detail::segment_bytes(h.ring_capacity, h.arena_bytes) != total ||
        (h.ring_capacity & (h.ring_capacity - 1)) != 0 ||
        h.ring_capacity < 2) {
        throw TransportError("shm segment geometry corrupt: " + name);
    }
    if (h.generation != generation) {
        throw TransportError("shm stale generation: segment holds " +
                             std::to_string(h.generation) + ", hello claims " +
                             std::to_string(generation));
    }
    std::uint32_t expect = 0;
    if (!h.attached[1].compare_exchange_strong(expect, 1,
                                               std::memory_order_acq_rel)) {
        throw TransportError("shm segment already attached: " + name);
    }
    h.pid[1].store(static_cast<std::uint32_t>(getpid()),
                   std::memory_order_release);
    return seg;
}

ShmSegment::~ShmSegment() {
    detach();
    if (side_ == 0) unlink();
    if (base_ != nullptr) munmap(base_, map_bytes_);
}

SegSlot* ShmSegment::slots(int side) const noexcept {
    auto* first = reinterpret_cast<SegSlot*>(base_ + shm_detail::slots_offset());
    return first + static_cast<std::size_t>(side) * header().ring_capacity;
}

std::uint8_t* ShmSegment::arena(int side) const noexcept {
    return base_ + shm_detail::arena_offset(header().ring_capacity) +
           static_cast<std::size_t>(side) * header().arena_bytes;
}

void ShmSegment::detach() noexcept {
    if (base_ != nullptr) {
        header().attached[side_].store(0, std::memory_order_release);
    }
}

void ShmSegment::unlink() noexcept {
    if (!unlinked_ && !name_.empty()) {
        unlinked_ = true;
        shm_unlink(name_.c_str());
    }
}

// ---- ShmSession -----------------------------------------------------------

/// The engine behind ShmTransport: SPSC ring producer/consumer over the
/// segment, plus the TCP control/fallback channel and the failover state
/// machine. Lock order: send_mu_ before recv_mu_, never the reverse.
/// recv_mu_ is held only for the duration of a pop — never across a futex
/// wait — so an abandoner freezing the rx tail cannot deadlock against a
/// sleeping receiver. recv_frame is single-consumer (one bridge reader
/// thread), like every transport in this repo; send_frame is any-thread.
class ShmSession {
public:
    ShmSession(std::shared_ptr<ShmSegment> seg, std::unique_ptr<Transport> tcp,
               const ShmOptions& opts)
        : seg_(std::move(seg)), tcp_(std::move(tcp)), opts_(normalize(opts)),
          side_(seg_->side()) {
        SegHeader& h = seg_->header();
        capacity_ = h.ring_capacity;
        mask_ = capacity_ - 1;
        arena_bytes_ = h.arena_bytes;
        max_frame_ = h.max_frame_bytes;
        tx_slots_ = seg_->slots(side_);
        rx_slots_ = seg_->slots(1 - side_);
        tx_arena_ = seg_->arena(side_);
        rx_arena_ = seg_->arena(1 - side_);
        if (ReactorHook* hook = tcp_->reactor_hook()) {
            tcp_fd_ = hook->descriptor();
        }
    }

    ~ShmSession() { close_all(); }

    // -- ring-pair surface --------------------------------------------------

    /// Push one frame into our produced ring. False (frame untouched) when
    /// the shm path cannot take it — oversize (triggers orderly failover),
    /// peer gone, bye exchanged, or closed — and the caller reroutes to TCP.
    bool ring_send(FrameBuffer& frame) {
        std::lock_guard lk(send_mu_);
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
        }
        if (!tx_up_.load(std::memory_order_relaxed)) return false;
        const std::size_t len = frame.size();
        if (len > max_frame_) {
            // One route's frames must stay ordered, so an oversize frame
            // cannot simply take the other path: abandon shm first, then
            // everything (this frame included) rides TCP.
            abandon_locked("oversize frame");
            return false;
        }
        std::size_t pos = 0;
        if (!acquire_tx_space_locked(len, pos)) return false;
        std::memcpy(tx_arena_ + pos, frame.data(), len);
        tx_slots_[tx_head_ & mask_] =
            SegSlot{static_cast<std::uint32_t>(pos),
                    static_cast<std::uint32_t>(len)};
        arena_head_ += align8(len);
        ++tx_head_;
        SegDir& d = tx_dir();
        d.head.store(tx_head_, std::memory_order_release);
        // Only-if-waiters wake (Dekker with the consumer's registration:
        // the seq_cst fence orders our head publish before the waiters
        // exchange; the consumer's seq_cst registration orders before its
        // head re-check, so one of us always sees the other). The exchange
        // CLAIMS the registration: a woken-but-not-yet-scheduled consumer
        // costs one wake per waiting episode, not one per push — on a
        // single core the consumer can stay registered across a whole
        // batch of sends.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (d.data_waiters.exchange(0, std::memory_order_seq_cst) != 0) {
            d.data_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d.data_seq);
            wakeups_.fetch_add(1, std::memory_order_relaxed);
            obs::FlightRecorder::emit(obs::EventType::kShmWakeup, len, 0);
        }
        shm_sent_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kFrameSend, len, 0);
        return true;
    }

    /// One bounded receive attempt: spin, then at most one futex sleep
    /// cycle, then report idle so the transport can poll the control
    /// channel and peer liveness between cycles.
    RingRecv ring_recv() {
        RingRecv r = try_pop();
        if (r.frame.has_value() || r.closed) return r;
        SegDir& d = rx_dir();
        for (std::size_t i = 0; i < opts_.spin_budget; ++i) {
            if (d.head.load(std::memory_order_acquire) != rx_tail_hint_) {
                return try_pop();
            }
            cpu_relax();
            spins_.fetch_add(1, std::memory_order_relaxed);
        }
        // SPSC: we are the only registrar, the producer claims with
        // exchange(0), so plain stores keep the flag in {0, 1}.
        d.data_waiters.store(1, std::memory_order_seq_cst);
        const std::uint32_t seq = d.data_seq.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const bool wake_worthy =
            d.head.load(std::memory_order_acquire) != rx_tail_hint_ ||
            d.closed.load(std::memory_order_acquire) != 0 ||
            rx_peer_done_.load(std::memory_order_acquire) ||
            rx_frozen_.load(std::memory_order_acquire) ||
            closed_.load(std::memory_order_acquire);
        if (!wake_worthy) {
            futex_wait_us(d.data_seq, seq, opts_.wait_cycle_us);
            futex_waits_.fetch_add(1, std::memory_order_relaxed);
        }
        d.data_waiters.store(0, std::memory_order_release);
        return try_pop();
    }

    std::size_t tx_depth() const {
        const SegDir& d = seg_->header().dir[side_];
        return d.head.load(std::memory_order_relaxed) -
               d.tail.load(std::memory_order_relaxed);
    }
    std::size_t rx_depth() const {
        const SegDir& d = seg_->header().dir[1 - side_];
        return d.head.load(std::memory_order_relaxed) -
               d.tail.load(std::memory_order_relaxed);
    }

    // -- transport hooks ----------------------------------------------------

    /// on_send_down: the ring refused the frame; carry it over TCP (after
    /// finishing any failover handshake that refusal was part of).
    void fallback_send(FrameBuffer frame) {
        std::lock_guard lk(send_mu_);
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
        }
        if (closed_.load(std::memory_order_relaxed) ||
            !tcp_up_.load(std::memory_order_relaxed)) {
            throw TransportError(label() + ": peer closed");
        }
        tcp_->send_frame(std::move(frame));
        tcp_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    /// on_recv_idle: the ring waited one cycle with no data. Poll the TCP
    /// channel for control/fallback traffic, and periodically check that
    /// the peer process still exists.
    RingRecv idle_poll() {
        if (closed_.load(std::memory_order_acquire)) {
            return RingRecv::ended();
        }
        if (tcp_fd_ >= 0 && tcp_up_.load(std::memory_order_relaxed)) {
            pollfd p{tcp_fd_, POLLIN | POLLRDHUP, 0};
            if (poll(&p, 1, 0) > 0) return pump_tcp();
        }
        if (++liveness_tick_ % 8 == 0 && !peer_alive()) {
            note_peer_dead();
        }
        return RingRecv{};
    }

    /// on_ring_closed: the segment is drained and done (graceful close,
    /// failover, or peer death); keep receiving from the TCP wire.
    RingRecv tcp_recv_blocking() {
        if (!tcp_up_.load(std::memory_order_relaxed) ||
            closed_.load(std::memory_order_relaxed)) {
            return RingRecv::ended();
        }
        return pump_tcp();
    }

    /// Orderly reroute-to-TCP. Freezes our rx tail, stops our tx, tells
    /// the peer (which replays our unconsumed inbound frames over TCP).
    void abandon(const char* reason) {
        std::lock_guard lk(send_mu_);
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
        }
        abandon_locked(reason);
    }

    void close_all() {
        if (close_done_.exchange(true)) return;
        {
            std::lock_guard lk(send_mu_);
            if (bye_pending_.load(std::memory_order_acquire)) {
                complete_peer_bye_locked();
            }
            closed_.store(true, std::memory_order_release);
            tx_up_.store(false, std::memory_order_release);
            SegDir& d = tx_dir();
            d.closed.store(1, std::memory_order_release);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            d.data_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d.data_seq); // peer's receiver
        }
        { std::lock_guard rlk(recv_mu_); } // no pop in flight past here
        wake_local_waiters();
        seg_->detach();
        if (side_ == 0) seg_->unlink();
        tcp_->close();
    }

    // -- introspection ------------------------------------------------------

    ShmCounters counters() const {
        ShmCounters c;
        c.shm_frames_sent = shm_sent_.load(std::memory_order_relaxed);
        c.shm_frames_received = shm_recv_.load(std::memory_order_relaxed);
        c.tcp_frames_sent = tcp_sent_.load(std::memory_order_relaxed);
        c.tcp_frames_received = tcp_recv_.load(std::memory_order_relaxed);
        c.wakeups = wakeups_.load(std::memory_order_relaxed);
        c.futex_waits = futex_waits_.load(std::memory_order_relaxed);
        c.spins = spins_.load(std::memory_order_relaxed);
        c.failovers = failovers_.load(std::memory_order_relaxed);
        c.resent_frames = resent_.load(std::memory_order_relaxed);
        c.dropped_on_failover = dropped_.load(std::memory_order_relaxed);
        c.tx_depth = tx_depth();
        c.rx_depth = rx_depth();
        c.shm_active = shm_active();
        return c;
    }

    bool shm_active() const {
        return tx_up_.load(std::memory_order_relaxed) &&
               !rx_frozen_.load(std::memory_order_relaxed) &&
               !closed_.load(std::memory_order_relaxed);
    }

    const std::string& segment_name() const { return seg_->name(); }
    std::uint64_t generation() const { return seg_->generation(); }
    std::string label() const { return "shm:" + seg_->name(); }

    FrameBufferPool& pool() noexcept {
        return opts_.pool != nullptr ? *opts_.pool : FrameBufferPool::global();
    }

private:
    SegDir& tx_dir() noexcept { return seg_->header().dir[side_]; }
    SegDir& rx_dir() noexcept { return seg_->header().dir[1 - side_]; }

    /// Reserve a slot + `len` arena bytes, applying the wrap skip. Blocks
    /// (bounded futex cycles with liveness/bye checks) under backpressure.
    /// False when the shm path went down while waiting.
    bool acquire_tx_space_locked(std::size_t len, std::size_t& pos_out) {
        SegDir& d = tx_dir();
        for (;;) {
            if (tx_head_ - cached_tx_tail_ >= capacity_) {
                cached_tx_tail_ = d.tail.load(std::memory_order_acquire);
            }
            const std::uint64_t pos = arena_head_ % arena_bytes_;
            const std::uint64_t skip =
                (arena_bytes_ - pos < len) ? (arena_bytes_ - pos) : 0;
            const std::uint64_t need = skip + align8(len);
            if (arena_head_ + need - cached_arena_tail_ > arena_bytes_) {
                cached_arena_tail_ =
                    d.arena_tail.load(std::memory_order_acquire);
            }
            if (tx_head_ - cached_tx_tail_ < capacity_ &&
                arena_head_ + need - cached_arena_tail_ <= arena_bytes_) {
                arena_head_ += skip;
                pos_out = static_cast<std::size_t>(arena_head_ % arena_bytes_);
                return true;
            }
            if (!wait_tx_space_locked(cached_tx_tail_, cached_arena_tail_)) {
                return false;
            }
        }
    }

    /// One bounded wait for the consumer to free space. Aborts (false)
    /// when the shm path goes down — an inbound bye is completed here so
    /// the blocked sender cannot deadlock the recv thread on send_mu_.
    bool wait_tx_space_locked(std::uint32_t seen_tail,
                              std::uint64_t seen_arena_tail) {
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
            return false;
        }
        if (!tx_up_.load(std::memory_order_relaxed)) return false;
        if (!peer_alive()) {
            note_peer_dead_locked();
            return false;
        }
        SegDir& d = tx_dir();
        d.space_waiters.store(1, std::memory_order_seq_cst);
        const std::uint32_t seq = d.space_seq.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const bool progressed =
            d.tail.load(std::memory_order_acquire) != seen_tail ||
            d.arena_tail.load(std::memory_order_acquire) != seen_arena_tail ||
            bye_pending_.load(std::memory_order_acquire) ||
            !tx_up_.load(std::memory_order_relaxed);
        if (!progressed) {
            futex_wait_us(d.space_seq, seq, opts_.wait_cycle_us);
            futex_waits_.fetch_add(1, std::memory_order_relaxed);
        }
        d.space_waiters.store(0, std::memory_order_release);
        if (bye_pending_.load(std::memory_order_acquire)) {
            complete_peer_bye_locked();
            return false;
        }
        return tx_up_.load(std::memory_order_relaxed);
    }

    /// Non-blocking pop of our inbound ring. Exactly one of: frame;
    /// closed (ring down AND drained); idle.
    RingRecv try_pop() {
        std::lock_guard lk(recv_mu_);
        if (rx_frozen_.load(std::memory_order_acquire) ||
            closed_.load(std::memory_order_acquire)) {
            return RingRecv::ended();
        }
        SegDir& d = rx_dir();
        const std::uint32_t head = d.head.load(std::memory_order_acquire);
        if (head == rx_tail_) {
            const bool done = rx_peer_done_.load(std::memory_order_acquire) ||
                              d.closed.load(std::memory_order_acquire) != 0 ||
                              peer_dead_.load(std::memory_order_acquire);
            return done ? RingRecv::ended() : RingRecv{};
        }
        const SegSlot slot = rx_slots_[rx_tail_ & mask_];
        // Mirror the producer's wrap skip: a slot that does not start at
        // our retire position means the producer jumped to the boundary.
        if (rx_arena_tail_ % arena_bytes_ != slot.offset) {
            rx_arena_tail_ += arena_bytes_ - (rx_arena_tail_ % arena_bytes_);
        }
        FrameBuffer buf = pool().acquire(slot.len);
        std::memcpy(buf.data(), rx_arena_ + slot.offset, slot.len);
        rx_arena_tail_ += align8(slot.len);
        d.arena_tail.store(rx_arena_tail_, std::memory_order_release);
        ++rx_tail_;
        rx_tail_hint_ = rx_tail_;
        d.tail.store(rx_tail_, std::memory_order_release);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (d.space_waiters.exchange(0, std::memory_order_seq_cst) != 0) {
            d.space_seq.fetch_add(1, std::memory_order_release);
            futex_wake_all(d.space_seq);
            wakeups_.fetch_add(1, std::memory_order_relaxed);
            obs::FlightRecorder::emit(obs::EventType::kShmWakeup, slot.len, 1);
        }
        shm_recv_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kFrameRecv, slot.len, 0);
        return RingRecv{.frame = std::move(buf)};
    }

    /// Read one TCP frame (blocking) and classify: shm control is handled
    /// here, data frames are delivered to the caller.
    RingRecv pump_tcp() {
        std::optional<FrameBuffer> f;
        try {
            f = tcp_->recv_frame();
        } catch (const TransportError&) {
            f.reset();
        }
        if (!f.has_value()) {
            tcp_up_.store(false, std::memory_order_release);
            // Peer's graceful close: its ring-closed flag (or death) ends
            // the segment side; retry lets the ring report it.
            return RingRecv{};
        }
        if (is_control_bye(*f)) {
            handle_peer_bye();
            return RingRecv{};
        }
        tcp_recv_.fetch_add(1, std::memory_order_relaxed);
        return RingRecv{.frame = std::move(*f)};
    }

    static bool is_control_bye(const FrameBuffer& f) noexcept {
        try {
            if (f.size() < cdr::GiopHeader::kSize) return false;
            const cdr::GiopHeader h = cdr::decode_header(f.data(), f.size());
            if (h.msg_type != cdr::GiopMsgType::kRequest) return false;
            const cdr::DecodedRequestView v =
                cdr::decode_request_view(f.data(), f.size());
            return v.header.object_key == kControlKey &&
                   v.header.operation == "bye";
        } catch (...) {
            return false;
        }
    }

    /// Inbound bye (recv thread). Flag it, wake any sender blocked inside
    /// a space wait (it completes the bye itself — see
    /// wait_tx_space_locked), then complete under send_mu_.
    void handle_peer_bye() {
        bye_pending_.store(true, std::memory_order_release);
        SegDir& d = tx_dir();
        d.space_seq.fetch_add(1, std::memory_order_release);
        futex_wake_all(d.space_seq);
        std::lock_guard lk(send_mu_);
        complete_peer_bye_locked();
    }

    /// The peer froze its rx tail and switched to TCP. Replay exactly our
    /// unconsumed [tail, head) outbound frames over TCP — ahead of any
    /// newer sends, which serialize behind send_mu_ — then treat the
    /// peer's production side as finished.
    void complete_peer_bye_locked() {
        if (!bye_pending_.exchange(false, std::memory_order_acq_rel)) return;
        tx_up_.store(false, std::memory_order_release);
        SegDir& d = tx_dir();
        std::uint32_t t = d.tail.load(std::memory_order_acquire);
        std::uint64_t at = d.arena_tail.load(std::memory_order_acquire);
        while (t != tx_head_) {
            const SegSlot slot = tx_slots_[t & mask_];
            if (at % arena_bytes_ != slot.offset) {
                at += arena_bytes_ - (at % arena_bytes_);
            }
            at += align8(slot.len);
            ++t;
            if (!tcp_up_.load(std::memory_order_relaxed)) {
                dropped_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            FrameBuffer f = pool().acquire(slot.len);
            std::memcpy(f.data(), tx_arena_ + slot.offset, slot.len);
            try {
                tcp_->send_frame(std::move(f));
                resent_.fetch_add(1, std::memory_order_relaxed);
            } catch (const TransportError&) {
                tcp_up_.store(false, std::memory_order_release);
                dropped_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        rx_peer_done_.store(true, std::memory_order_release);
        wake_local_waiters();
        failovers_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kShmFailover, 0, 0);
    }

    void abandon_locked(const char* reason) {
        if (bye_sent_.exchange(true, std::memory_order_acq_rel)) return;
        (void)reason;
        tx_up_.store(false, std::memory_order_release);
        {
            std::lock_guard rlk(recv_mu_);
            rx_frozen_.store(true, std::memory_order_release);
        }
        wake_local_waiters();
        if (tcp_up_.load(std::memory_order_relaxed)) {
            try {
                send_control_locked("bye");
            } catch (const TransportError&) {
                tcp_up_.store(false, std::memory_order_release);
            }
        }
        failovers_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kShmFailover, 1, 0);
    }

    void note_peer_dead() {
        std::lock_guard lk(send_mu_);
        note_peer_dead_locked();
    }

    /// Peer died without a bye. Our unconsumed outbound frames are moot
    /// (their consumer is gone — counted, not resent); the peer's already
    /// published inbound frames stay deliverable until the ring drains.
    void note_peer_dead_locked() {
        if (peer_dead_.exchange(true, std::memory_order_acq_rel)) return;
        tx_up_.store(false, std::memory_order_release);
        const SegDir& d = seg_->header().dir[side_];
        dropped_.fetch_add(tx_head_ - d.tail.load(std::memory_order_acquire),
                           std::memory_order_relaxed);
        rx_peer_done_.store(true, std::memory_order_release);
        wake_local_waiters();
        failovers_.fetch_add(1, std::memory_order_relaxed);
        obs::FlightRecorder::emit(obs::EventType::kShmFailover, 2, 0);
    }

    bool peer_alive() noexcept {
        const SegHeader& h = seg_->header();
        const int peer = 1 - side_;
        if (h.attached[peer].load(std::memory_order_acquire) == 0) {
            // Graceful detach (or not yet attached): not death. The ring
            // closed flag / TCP EOF covers the graceful path.
            return true;
        }
        return pid_alive(static_cast<pid_t>(
            h.pid[peer].load(std::memory_order_acquire)));
    }

    /// Wake our own receiver (sleeping on the peer's data futex) and our
    /// own senders (sleeping on our space futex) so they re-check state.
    void wake_local_waiters() {
        SegDir& rd = rx_dir();
        rd.data_seq.fetch_add(1, std::memory_order_release);
        futex_wake_all(rd.data_seq);
        SegDir& td = tx_dir();
        td.space_seq.fetch_add(1, std::memory_order_release);
        futex_wake_all(td.space_seq);
    }

    void send_control_locked(const char* op) {
        cdr::RequestHeader req;
        req.request_id = 0;
        req.response_expected = false;
        req.object_key = kControlKey;
        req.operation = op;
        tcp_->send_frame(cdr::encode_request(req, nullptr, 0));
    }

    std::shared_ptr<ShmSegment> seg_;
    std::unique_ptr<Transport> tcp_;
    const ShmOptions opts_;
    const int side_;
    std::uint32_t capacity_ = 0;
    std::uint32_t mask_ = 0;
    std::uint64_t arena_bytes_ = 0;
    std::size_t max_frame_ = 0;
    SegSlot* tx_slots_ = nullptr;
    SegSlot* rx_slots_ = nullptr;
    std::uint8_t* tx_arena_ = nullptr;
    std::uint8_t* rx_arena_ = nullptr;
    int tcp_fd_ = -1;

    std::mutex send_mu_; ///< producer serialization + failover atomicity
    std::mutex recv_mu_; ///< pop vs rx-freeze (never held across a wait)

    // Producer-local mirrors (under send_mu_). Cached consumer positions
    // avoid re-reading the shared line until the ring looks full.
    std::uint32_t tx_head_ = 0;
    std::uint32_t cached_tx_tail_ = 0;
    std::uint64_t arena_head_ = 0;
    std::uint64_t cached_arena_tail_ = 0;

    // Consumer-local (under recv_mu_; the hint is read lock-free by the
    // single recv thread's spin loop).
    std::uint32_t rx_tail_ = 0;
    std::uint32_t rx_tail_hint_ = 0;
    std::uint64_t rx_arena_tail_ = 0;
    std::uint64_t liveness_tick_ = 0;

    std::atomic<bool> tx_up_{true};
    std::atomic<bool> rx_frozen_{false};
    std::atomic<bool> rx_peer_done_{false};
    std::atomic<bool> bye_pending_{false};
    std::atomic<bool> bye_sent_{false};
    std::atomic<bool> peer_dead_{false};
    std::atomic<bool> closed_{false};
    std::atomic<bool> close_done_{false};
    std::atomic<bool> tcp_up_{true};

    std::atomic<std::uint64_t> shm_sent_{0};
    std::atomic<std::uint64_t> shm_recv_{0};
    std::atomic<std::uint64_t> tcp_sent_{0};
    std::atomic<std::uint64_t> tcp_recv_{0};
    std::atomic<std::uint64_t> wakeups_{0};
    std::atomic<std::uint64_t> futex_waits_{0};
    std::atomic<std::uint64_t> spins_{0};
    std::atomic<std::uint64_t> failovers_{0};
    std::atomic<std::uint64_t> resent_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

// ---- ShmRingPair ----------------------------------------------------------

bool ShmRingPair::send(FrameBuffer& frame) { return session->ring_send(frame); }
RingRecv ShmRingPair::recv() { return session->ring_recv(); }
void ShmRingPair::close() { session->close_all(); }
std::size_t ShmRingPair::tx_depth() const { return session->tx_depth(); }
std::size_t ShmRingPair::rx_depth() const { return session->rx_depth(); }

// ---- ShmTransport ---------------------------------------------------------

ShmTransport::ShmTransport(std::shared_ptr<ShmSession> session,
                           std::string label)
    : RingPairTransport(ShmRingPair{std::move(session)}, std::move(label)) {}

ShmTransport::~ShmTransport() { close(); }

ShmCounters ShmTransport::counters() const { return rings_.session->counters(); }
bool ShmTransport::shm_active() const { return rings_.session->shm_active(); }
const std::string& ShmTransport::segment_name() const {
    return rings_.session->segment_name();
}
std::uint64_t ShmTransport::generation() const {
    return rings_.session->generation();
}
void ShmTransport::abandon_shm(const char* reason) {
    rings_.session->abandon(reason);
}
FrameBufferPool& ShmTransport::frame_pool() noexcept {
    return rings_.session->pool();
}
void ShmTransport::on_send_down(FrameBuffer&& frame) {
    rings_.session->fallback_send(std::move(frame));
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
}
RingRecv ShmTransport::on_ring_closed() {
    return rings_.session->tcp_recv_blocking();
}
RingRecv ShmTransport::on_recv_idle() { return rings_.session->idle_poll(); }
void ShmTransport::on_close() {}

// ---- handshake ------------------------------------------------------------

namespace {

constexpr std::uint32_t kHelloRequestId = 1;

std::vector<std::uint8_t> encode_hello(const std::string& segment_name,
                                       std::uint64_t generation) {
    cdr::OutputStream payload;
    payload.write_string(segment_name);
    payload.write_ulonglong(generation);
    payload.write_ulong(shm_detail::kVersion);
    cdr::RequestHeader req;
    req.request_id = kHelloRequestId;
    req.response_expected = true;
    req.object_key = kControlKey;
    req.operation = "hello";
    const std::vector<std::uint8_t> body = payload.take_buffer();
    return cdr::encode_request(req, body.data(), body.size());
}

std::vector<std::uint8_t> encode_hello_reply(bool ok,
                                             const std::string& detail) {
    cdr::OutputStream payload;
    payload.write_ulong(ok ? 1 : 0);
    payload.write_string(detail);
    cdr::ReplyHeader rep;
    rep.request_id = kHelloRequestId;
    rep.status = cdr::ReplyStatus::kNoException;
    const std::vector<std::uint8_t> body = payload.take_buffer();
    return cdr::encode_reply(rep, body.data(), body.size());
}

/// Plain transport wrapper that yields one already-read frame before
/// delegating — used when a ShmAcceptor's first inbound frame turns out
/// not to be a hello (a protocol-unaware client), so nothing is lost.
class StashedFrameTransport final : public Transport {
public:
    StashedFrameTransport(std::unique_ptr<Transport> inner, FrameBuffer first)
        : inner_(std::move(inner)), stash_(std::move(first)), have_(true) {}

    void send_frame(FrameBuffer frame) override {
        inner_->send_frame(std::move(frame));
    }
    std::optional<FrameBuffer> recv_frame() override {
        if (have_) {
            have_ = false;
            return std::move(stash_);
        }
        return inner_->recv_frame();
    }
    void close() override { inner_->close(); }
    std::string peer_description() const override {
        return inner_->peer_description();
    }
    TransportStats stats() const override { return inner_->stats(); }
    void prepare_close() override { inner_->prepare_close(); }
    FrameBufferPool& frame_pool() noexcept override {
        return inner_->frame_pool();
    }

private:
    std::unique_ptr<Transport> inner_;
    FrameBuffer stash_;
    bool have_;
};

} // namespace

ShmConnectResult shm_upgrade_connect(const std::string& host,
                                     std::uint16_t port,
                                     const ShmOptions& shm_options,
                                     const TcpOptions& tcp_options) {
    sweep_once_at_startup();
    std::unique_ptr<Transport> tcp = tcp_connect(host, port, tcp_options);

    std::shared_ptr<ShmSegment> seg;
    std::string create_fail;
    try {
        seg = ShmSegment::create(shm_options);
    } catch (const TransportError& e) {
        create_fail = e.what();
    }

    tcp->send_frame(encode_hello(seg ? seg->name() : std::string(),
                                 seg ? seg->generation() : 0));
    std::optional<FrameBuffer> reply = tcp->recv_frame();
    if (!reply.has_value()) {
        throw TransportError("shm handshake: peer closed before replying");
    }
    bool ok = false;
    std::string detail;
    try {
        const cdr::DecodedReply rep =
            cdr::decode_reply(reply->data(), reply->size());
        cdr::InputStream in(rep.payload, rep.payload_len,
                            cdr::decode_header(reply->data(), reply->size())
                                .byte_order);
        ok = in.read_ulong() != 0;
        detail = in.read_string();
    } catch (const std::exception& e) {
        throw TransportError(std::string("shm handshake: malformed reply: ") +
                             e.what());
    }

    if (ok && seg) {
        const std::string name = seg->name();
        auto session = std::make_shared<ShmSession>(seg, std::move(tcp),
                                                    shm_options);
        return ShmConnectResult{
            std::make_unique<ShmTransport>(std::move(session),
                                           "shm-client:" + name),
            true, "segment " + name};
    }
    seg.reset(); // creator dtor unlinks the unused segment
    if (!create_fail.empty() && detail.empty()) detail = create_fail;
    return ShmConnectResult{std::move(tcp), false, detail};
}

ShmAcceptor::ShmAcceptor(std::uint16_t port, const ShmOptions& shm_options,
                         const TcpOptions& tcp_options)
    : tcp_(port, tcp_options), shm_options_(shm_options) {
    sweep_once_at_startup();
}

ShmConnectResult ShmAcceptor::accept() {
    std::unique_ptr<Transport> tcp = tcp_.accept();
    if (!tcp) return ShmConnectResult{nullptr, false, "acceptor closed"};

    std::optional<FrameBuffer> first;
    try {
        first = tcp->recv_frame();
    } catch (const TransportError& e) {
        return ShmConnectResult{nullptr, false,
                                std::string("handshake read failed: ") +
                                    e.what()};
    }
    if (!first.has_value()) {
        return ShmConnectResult{nullptr, false,
                                "peer closed during handshake"};
    }

    std::string seg_name;
    std::uint64_t generation = 0;
    std::uint32_t version = 0;
    bool is_hello = false;
    try {
        const cdr::GiopHeader gh =
            cdr::decode_header(first->data(), first->size());
        if (gh.msg_type == cdr::GiopMsgType::kRequest) {
            const cdr::DecodedRequestView v =
                cdr::decode_request_view(first->data(), first->size());
            if (v.header.object_key == kControlKey &&
                v.header.operation == "hello") {
                is_hello = true;
                cdr::InputStream in(v.payload, v.payload_len, v.byte_order);
                seg_name = in.read_string();
                generation = in.read_ulonglong();
                version = in.read_ulong();
            }
        }
    } catch (...) {
        is_hello = false;
    }
    if (!is_hello) {
        // Protocol-unaware client: hand back plain TCP with the frame
        // re-queued so nothing is lost.
        return ShmConnectResult{std::make_unique<StashedFrameTransport>(
                                    std::move(tcp), std::move(*first)),
                                false, "peer sent no shm hello"};
    }

    std::string nack;
    std::shared_ptr<ShmSegment> seg;
    if (seg_name.empty()) {
        nack = "client could not create a segment";
    } else if (version != shm_detail::kVersion) {
        nack = "version mismatch: hello v" + std::to_string(version) +
               ", expected v" + std::to_string(shm_detail::kVersion);
    } else {
        try {
            seg = ShmSegment::attach(seg_name, generation);
        } catch (const TransportError& e) {
            nack = e.what();
        }
    }

    try {
        tcp->send_frame(encode_hello_reply(seg != nullptr, nack));
    } catch (const TransportError& e) {
        return ShmConnectResult{nullptr, false,
                                std::string("handshake reply failed: ") +
                                    e.what()};
    }
    if (!seg) return ShmConnectResult{std::move(tcp), false, nack};

    ShmOptions opts = shm_options_;
    // Geometry lives in the segment header; only the local knobs (spin
    // budget, wait cadence, pool) come from the acceptor's options.
    const std::string name = seg->name();
    auto session = std::make_shared<ShmSession>(seg, std::move(tcp), opts);
    return ShmConnectResult{
        std::make_unique<ShmTransport>(std::move(session),
                                       "shm-server:" + name),
        true, "segment " + name};
}

// ---- orphan sweep ---------------------------------------------------------

std::size_t sweep_orphan_segments() noexcept {
    std::size_t removed = 0;
    DIR* dir = opendir("/dev/shm");
    if (dir == nullptr) return 0;
    constexpr const char* kPrefix = "compadres."; // kNamePrefix sans '/'
    const std::size_t prefix_len = std::strlen(kPrefix);
    while (dirent* e = readdir(dir)) {
        if (std::strncmp(e->d_name, kPrefix, prefix_len) != 0) continue;
        // The name embeds the creator pid; a live creator means a segment
        // mid-handshake whose header may not be written yet — never sweep
        // those out from under it.
        const long name_pid = std::strtol(e->d_name + prefix_len, nullptr, 10);
        if (pid_alive(static_cast<pid_t>(name_pid))) continue;

        const std::string shm_name = std::string("/") + e->d_name;
        int fd = shm_open(shm_name.c_str(), O_RDONLY, 0);
        if (fd < 0) continue;
        bool drop = false;
        struct stat st{};
        if (fstat(fd, &st) != 0 ||
            static_cast<std::size_t>(st.st_size) < sizeof(SegHeader)) {
            drop = true;
        } else {
            void* p = mmap(nullptr, sizeof(SegHeader), PROT_READ, MAP_SHARED,
                           fd, 0);
            if (p != MAP_FAILED) {
                const auto* h = static_cast<const SegHeader*>(p);
                if (std::memcmp(h->magic, shm_detail::kMagic,
                                sizeof h->magic) != 0) {
                    drop = true;
                } else {
                    bool alive = false;
                    for (int s = 0; s < 2; ++s) {
                        if (h->attached[s].load(std::memory_order_acquire) !=
                                0 &&
                            pid_alive(static_cast<pid_t>(h->pid[s].load(
                                std::memory_order_acquire)))) {
                            alive = true;
                        }
                    }
                    drop = !alive;
                }
                munmap(p, sizeof(SegHeader));
            }
        }
        ::close(fd);
        if (drop && shm_unlink(shm_name.c_str()) == 0) ++removed;
    }
    closedir(dir);
    return removed;
}

} // namespace compadres::net
