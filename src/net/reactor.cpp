#include "net/reactor.hpp"

#include "cdr/giop.hpp"
#include "net/uring.hpp"
#include "rt/thread.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

namespace compadres::net {

namespace {

std::size_t resolve_threads(std::size_t requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("COMPADRES_REACTOR_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t cap = hw == 0 ? 1 : hw;
    return cap < 4 ? cap : 4;
}

ReactorBackend resolve_backend(ReactorBackend requested) {
    if (requested != ReactorBackend::kDefault) return requested;
    if (const char* env = std::getenv("COMPADRES_REACTOR_BACKEND")) {
        if (std::strcmp(env, "uring") == 0) return ReactorBackend::kUring;
        if (std::strcmp(env, "epoll") == 0) return ReactorBackend::kEpoll;
    }
#ifdef COMPADRES_URING_DEFAULT
    return ReactorBackend::kUring;
#else
    return ReactorBackend::kEpoll;
#endif
}

/// One registered descriptor plus its incremental inbound-frame state.
/// Owned by exactly one loop; touched only on that loop's thread.
struct Wire {
    std::uint64_t id = 0;
    ReactorHook* hook = nullptr;
    Reactor::FrameHandler on_frame;
    Reactor::ClosedHandler on_closed;

    // Frame assembly: header bytes accumulate in `header`; once complete
    // the pooled frame is sized from message_size and body bytes stream
    // straight into it. frame_total == 0 means "still reading the header".
    std::uint8_t header[cdr::GiopHeader::kSize] = {};
    std::size_t header_got = 0;
    FrameBuffer frame;
    std::size_t frame_got = 0;   ///< bytes of `frame` filled (incl. header)
    std::size_t frame_total = 0; ///< header + body target size

    // Epoll read staging: each refill pulls up to a scratch-full in one
    // read() and the state machine consumes it in memory, so small frames
    // cost one syscall instead of header-read + body-read + EAGAIN-read.
    // Sized by EpollBackend::add; stays empty on the uring backend (its
    // staging is the loop's provided-buffer chunks).
    std::vector<std::uint8_t> scratch;

    bool want_writable = false; ///< write-ready armed and not yet delivered

    // Uring-only state, loop-thread owned.
    msghdr send_mh{};            ///< stable msghdr a gather-send SQE points at
    bool recv_armed = false;     ///< multishot recv SQE in flight
    bool send_inflight = false;  ///< gather-send SQE in flight
    bool pollout_inflight = false; ///< POLL_ADD(POLLOUT) SQE in flight
    bool cork_marked = false;    ///< corked for the current CQE cycle
};

/// Per-wire epoll read staging capacity. Big enough to swallow a typical
/// wakeup's worth of small frames in one syscall, small enough that a
/// 64-wire fan-in stages ~1 MiB total.
constexpr std::size_t kScratchBytes = 16 * 1024;

/// Uring provided-buffer chunk size: exactly the frame pool's 4 KiB size
/// class, so the loop's receive staging recycles through one pool ring.
constexpr std::size_t kUringChunkBytes = 4096;
constexpr unsigned kDefaultUringBuffers = 64;
constexpr unsigned kDefaultUringEntries = 256;

/// Read-side interest. EPOLLRDHUP rides along so an event that coalesced
/// data with the peer's FIN is distinguishable: the short-read fast exit
/// in pump_reads must not be taken then, or the already-queued EOF would
/// never produce another edge.
constexpr std::uint32_t kReadInterest = EPOLLIN | EPOLLRDHUP | EPOLLET;

/// Blocking handshake for cross-thread deregistration. The waiter owns
/// the storage (stack frame) and frees it the moment wait() returns, so
/// signal() must notify *under* the mutex: notifying after unlock races
/// the waiter's destruction of the condvar it is notifying.
struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    void signal() {
        std::lock_guard lk(mu);
        done = true;
        cv.notify_all();
    }
    void wait() {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return done; });
    }
};

struct Command {
    enum class Kind : std::uint8_t { kAdd, kRemove, kArmWrite, kPoke, kStop };
    Kind kind = Kind::kStop;
    std::uint64_t id = 0;
    std::unique_ptr<Wire> wire;       ///< kAdd payload
    Completion* completion = nullptr; ///< kRemove handshake
};

/// The epoll-vs-uring split. One backend per loop, owned by the loop,
/// driven only on the loop's thread (run() IS the loop thread). The
/// backend owns descriptor-level readiness/completion plumbing; the Loop
/// keeps everything backend-neutral: the command queue and its eventfd
/// doorbell, the wire table, GIOP frame assembly, corking semantics, and
/// stats. The contract per method:
///
///   add        — attach the wire's descriptor; false = unusable
///                descriptor (the loop accounts a wire_add_failure and
///                fires on_closed).
///   remove     — flush-or-park the transport's pending output and fully
///                detach the descriptor; after return the backend holds
///                no reference to the wire (io_uring must cancel and
///                drain in-flight SQEs here, or the kernel's file refs
///                outlive the transport).
///   arm_write  — deliver exactly one write-ready notification once the
///                descriptor accepts bytes again (edge semantics).
///   poke       — manufacture a write-ready delivery without marking the
///                wire as wanting one (the spurious-wakeup test seam).
class LoopBackend {
public:
    virtual ~LoopBackend() = default;
    virtual const char* name() const noexcept = 0;
    virtual void run() = 0;
    virtual bool add(Wire& w) = 0;
    virtual void remove(Wire& w) = 0;
    virtual void arm_write(Wire& w) = 0;
    virtual void poke(Wire& w) = 0;
};

} // namespace

/// One event loop: the command ring (eventfd doorbell + queue), the wires
/// assigned to this thread, frame assembly, and a pluggable LoopBackend
/// that waits for readiness/completions. All descriptor mutations happen
/// on the loop thread itself (commands are posted, not applied in place),
/// so backend bookkeeping never races its wait call.
class Reactor::Loop {
public:
    enum class PumpResult { kIdle, kClosed };

    /// Throws TransportError when the eventfd/backend plumbing cannot be
    /// set up: a loop whose wait would fail on the first cycle silently
    /// accepts wires and never delivers a frame, so the failure must
    /// surface at construction, not as a dead pool. A kUring request
    /// whose io_uring setup fails is not fatal — it falls back to epoll,
    /// recorded in uring_fallbacks.
    Loop(std::size_t index, const ReactorOptions& options,
         ReactorBackend kind);
    ~Loop();

    void add_wire(std::unique_ptr<Wire> wire) {
        Command c;
        c.kind = Command::Kind::kAdd;
        c.wire = std::move(wire);
        post(std::move(c));
    }

    void remove_wire(std::uint64_t id) {
        if (t_current_loop == this) {
            // Called from this loop's own callback: apply inline; posting
            // and waiting would deadlock against ourselves.
            do_remove(id);
            return;
        }
        Completion done;
        Command c;
        c.kind = Command::Kind::kRemove;
        c.id = id;
        c.completion = &done;
        post(std::move(c));
        done.wait();
    }

    void arm_write(std::uint64_t id) {
        if (t_current_loop == this) {
            do_arm(id);
            return;
        }
        Command c;
        c.kind = Command::Kind::kArmWrite;
        c.id = id;
        post(std::move(c));
    }

    /// Test seam (Reactor::poke_writable): manufacture the spurious
    /// write-ready delivery the handler must tolerate.
    void poke(std::uint64_t id) {
        Command c;
        c.kind = Command::Kind::kPoke;
        c.id = id;
        post(std::move(c));
    }

    void request_stop() {
        Command c;
        c.kind = Command::Kind::kStop;
        post(std::move(c));
    }

    void join() {
        if (thread_->joinable()) thread_->join();
    }

    void accumulate(ReactorStats& out) const {
        out.frames_assembled += frames_assembled_.load(std::memory_order_relaxed);
        out.writable_events += writable_events_.load(std::memory_order_relaxed);
        out.spurious_writables +=
            spurious_writables_.load(std::memory_order_relaxed);
        out.command_wakeups += command_wakeups_.load(std::memory_order_relaxed);
        out.wires_closed += wires_closed_.load(std::memory_order_relaxed);
        out.wire_add_failures +=
            wire_add_failures_.load(std::memory_order_relaxed);
        out.wait_syscalls += wait_syscalls_.load(std::memory_order_relaxed);
        out.read_syscalls += read_syscalls_.load(std::memory_order_relaxed);
        out.send_sqes += send_sqes_.load(std::memory_order_relaxed);
        out.recv_enobufs += recv_enobufs_.load(std::memory_order_relaxed);
        if (uring_fallback_) ++out.uring_fallbacks;
        if (is_uring_) ++out.uring_loops;
    }

    bool is_uring() const noexcept { return is_uring_; }

    // ---- services the backends call (loop thread only) ----

    static Loop* current() noexcept { return t_current_loop; }

    int event_fd() const noexcept { return evfd_; }

    Wire* find_wire(std::uint64_t id) {
        auto it = wires_.find(id);
        return it == wires_.end() ? nullptr : it->second.get();
    }

    void drain_eventfd() {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(evfd_, &counter, sizeof(counter));
    }

    /// Returns true when a stop command was seen.
    bool process_commands() {
        {
            std::lock_guard lk(cmd_mu_);
            scratch_.swap(commands_);
        }
        bool saw_stop = false;
        for (Command& c : scratch_) {
            switch (c.kind) {
            case Command::Kind::kAdd:
                do_add(std::move(c.wire));
                break;
            case Command::Kind::kRemove:
                do_remove(c.id);
                if (c.completion != nullptr) c.completion->signal();
                break;
            case Command::Kind::kArmWrite:
                do_arm(c.id);
                break;
            case Command::Kind::kPoke: {
                auto it = wires_.find(c.id);
                if (it != wires_.end()) backend_->poke(*it->second);
                break;
            }
            case Command::Kind::kStop:
                saw_stop = true;
                break;
            }
        }
        scratch_.clear();
        if (saw_stop) {
            // Deterministic teardown: flush-or-drop every wire's intake
            // before its descriptor leaves the backend.
            while (!wires_.empty()) do_remove(wires_.begin()->first);
        }
        return saw_stop;
    }

    /// Account and hand off a completed frame; kClosed if the handler
    /// throws.
    PumpResult deliver_frame(Wire& w) {
        w.hook->note_frame_received();
        frames_assembled_.fetch_add(1, std::memory_order_relaxed);
        FrameBuffer complete = std::move(w.frame);
        w.frame_total = 0;
        w.frame_got = 0;
        w.header_got = 0;
        if (w.on_frame) {
            try {
                w.on_frame(std::move(complete));
            } catch (...) {
                return PumpResult::kClosed;
            }
        }
        return PumpResult::kIdle;
    }

    /// Run `len` inbound bytes through the header/body state machine,
    /// delivering every frame completed along the way. Backend-neutral:
    /// the epoll pump feeds it scratch refills, the uring backend feeds
    /// it provided-buffer chunks. kClosed on a corrupt/oversize header or
    /// a throwing frame handler.
    PumpResult consume(Wire& w, const std::uint8_t* data, std::size_t len) {
        std::size_t pos = 0;
        while (pos < len) {
            const std::size_t avail = len - pos;
            if (w.frame_total == 0) {
                const std::size_t take =
                    std::min(cdr::GiopHeader::kSize - w.header_got, avail);
                std::memcpy(w.header + w.header_got, data + pos, take);
                w.header_got += take;
                pos += take;
                if (w.header_got < cdr::GiopHeader::kSize) continue;
                std::size_t total = 0;
                try {
                    const cdr::GiopHeader header = cdr::decode_header(
                        w.header, cdr::GiopHeader::kSize);
                    total = cdr::GiopHeader::kSize +
                            static_cast<std::size_t>(header.message_size);
                } catch (...) {
                    return PumpResult::kClosed; // corrupt header
                }
                if (total > w.hook->max_frame_bytes()) {
                    return PumpResult::kClosed;
                }
                // Draw from the wire's own pool (per-lane for lane
                // groups) so bands never share a pool ring.
                w.frame = w.hook->frame_pool().acquire(total);
                std::memcpy(w.frame.data(), w.header, cdr::GiopHeader::kSize);
                w.frame_total = total;
                w.frame_got = cdr::GiopHeader::kSize;
            } else {
                const std::size_t take =
                    std::min(w.frame_total - w.frame_got, avail);
                std::memcpy(w.frame.data() + w.frame_got, data + pos, take);
                w.frame_got += take;
                pos += take;
                if (w.frame_got == w.frame_total &&
                    deliver_frame(w) == PumpResult::kClosed) {
                    return PumpResult::kClosed;
                }
            }
        }
        return PumpResult::kIdle;
    }

    /// Edge-triggered read pump (epoll backend): drain the socket,
    /// handing each completed frame to on_frame. kClosed on EOF
    /// (including EOF mid-frame), read error, oversize/corrupt header, or
    /// a throwing frame handler.
    ///
    /// Reads are staged: each refill pulls up to a scratch-full in one
    /// syscall and consume() eats it in memory. A short read on a stream
    /// socket means the kernel buffer is drained (epoll(7)), which
    /// satisfies the edge-triggered contract without a final EAGAIN read
    /// — the common case, a few small frames per wakeup, costs one
    /// syscall total instead of three per frame. Bodies with more than a
    /// scratch-full outstanding bypass the stage and read straight into
    /// the pooled frame (no copy).
    ///
    /// `peer_closed` (event carried EPOLLRDHUP/ERR/HUP) disables the
    /// short-read exit: a FIN queued behind the data produces no further
    /// edge, so this pump must read through to the EOF itself.
    PumpResult pump_reads(Wire& w, bool peer_closed) {
        const int fd = w.hook->descriptor();
        for (;;) {
            const bool direct =
                w.frame_total != 0 &&
                w.frame_total - w.frame_got >= w.scratch.size();
            std::uint8_t* dst =
                direct ? w.frame.data() + w.frame_got : w.scratch.data();
            const std::size_t want =
                direct ? w.frame_total - w.frame_got : w.scratch.size();
            const ssize_t r = ::read(fd, dst, want);
            if (r == 0) return PumpResult::kClosed; // EOF (incl. mid-frame)
            if (r < 0) {
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    return PumpResult::kIdle;
                }
                return PumpResult::kClosed;
            }
            read_syscalls_.fetch_add(1, std::memory_order_relaxed);
            const bool drained =
                static_cast<std::size_t>(r) < want && !peer_closed;
            if (direct) {
                w.frame_got += static_cast<std::size_t>(r);
                if (w.frame_got == w.frame_total &&
                    deliver_frame(w) == PumpResult::kClosed) {
                    return PumpResult::kClosed;
                }
            } else if (consume(w, w.scratch.data(),
                               static_cast<std::size_t>(r)) ==
                       PumpResult::kClosed) {
                return PumpResult::kClosed;
            }
            if (drained) return PumpResult::kIdle;
        }
    }

    /// EOF/error-driven close: detach from the backend, hand any final
    /// accounting to the transport via its own close later, then notify
    /// the owner.
    void close_wire(Wire& w) {
        backend_->remove(w);
        wires_closed_.fetch_add(1, std::memory_order_relaxed);
        Reactor::ClosedHandler on_closed = std::move(w.on_closed);
        wires_.erase(w.id); // frees `w`
        if (on_closed) on_closed();
    }

    void note_wakeup() {
        command_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
    void note_wait_syscall() {
        wait_syscalls_.fetch_add(1, std::memory_order_relaxed);
    }
    void note_send_sqe() {
        send_sqes_.fetch_add(1, std::memory_order_relaxed);
    }
    void note_recv_enobufs() {
        recv_enobufs_.fetch_add(1, std::memory_order_relaxed);
    }
    void note_writable(bool spurious) {
        writable_events_.fetch_add(1, std::memory_order_relaxed);
        if (spurious) {
            spurious_writables_.fetch_add(1, std::memory_order_relaxed);
        }
    }

private:
    void post(Command c) {
        bool enqueued = false;
        {
            std::lock_guard lk(cmd_mu_);
            if (!exited_) {
                commands_.push_back(std::move(c));
                enqueued = true;
            }
        }
        if (enqueued) {
            const std::uint64_t one = 1;
            [[maybe_unused]] const ssize_t w =
                ::write(evfd_, &one, sizeof(one));
            return;
        }
        // Loop already gone: every wire was removed during stop, so a
        // removal is trivially complete; other commands are moot.
        if (c.completion != nullptr) c.completion->signal();
    }

    void run() {
        t_current_loop = this;
        // Transports must see sends from this thread's callbacks as
        // loop-thread sends (never block on intake backpressure that only
        // this thread's write-ready handling could relieve).
        mark_reactor_loop_thread();
        // Batch-hint the loop thread: an event loop that wakeup-preempts
        // the very producers that feed it sees one frame per edge and
        // never gets to coalesce (EEVDF preempts on wake far more eagerly
        // than CFS did). SCHED_BATCH keeps the loop runnable but lets a
        // bursting sender finish its burst first, so a single cycle pumps
        // the whole burst and the corked writer folds the replies into
        // one flush. Unprivileged (it only ever lowers priority);
        // best-effort on kernels without it.
        if (sched_batch_hint_) {
            struct sched_param sp {};
            (void)::sched_setscheduler(0, SCHED_BATCH, &sp);
        }
        backend_->run();
        // Final drain under the same lock hold that publishes exited_:
        // a racing post() either lands before (drained here) or observes
        // exited_ and self-completes.
        std::lock_guard lk(cmd_mu_);
        scratch_.swap(commands_);
        for (Command& c : scratch_) {
            if (c.completion != nullptr) c.completion->signal();
        }
        scratch_.clear();
        exited_ = true;
        t_current_loop = nullptr;
    }

    void do_add(std::unique_ptr<Wire> wire) {
        Wire& w = *wire;
        auto [it, inserted] = wires_.emplace(w.id, std::move(wire));
        if (!backend_->add(w)) {
            // Unusable descriptor: surface as an immediate close.
            wire_add_failures_.fetch_add(1, std::memory_order_relaxed);
            wires_closed_.fetch_add(1, std::memory_order_relaxed);
            Reactor::ClosedHandler on_closed = std::move(w.on_closed);
            wires_.erase(it);
            if (on_closed) on_closed();
            return;
        }
        // The transport entered reactor mode before this command was
        // posted, so a concurrent send may already have parked on EAGAIN
        // and requested writability while the wire was unknown here —
        // that arm silently no-op'd. Re-flush now that the wire is
        // registered: a batch still parked re-requests from its own
        // EAGAIN, and this time do_arm (inline, same thread) sticks.
        w.hook->flush_pending_writes();
    }

    /// Deliberate removal (deregister/stop): the backend flushes the
    /// coalescing intake — EAGAIN'd output is dropped-and-counted by the
    /// transport's own close later — and detaches the descriptor; then
    /// the wire is freed (returning any half-assembled inbound frame to
    /// the pool). on_closed is NOT invoked: that callback means "the
    /// peer went away".
    void do_remove(std::uint64_t id) {
        auto it = wires_.find(id);
        if (it == wires_.end()) return;
        backend_->remove(*it->second);
        wires_.erase(it);
    }

    void do_arm(std::uint64_t id) {
        auto it = wires_.find(id);
        if (it == wires_.end()) return;
        backend_->arm_write(*it->second);
    }

    static thread_local Loop* t_current_loop;

    int evfd_ = -1;
    std::unordered_map<std::uint64_t, std::unique_ptr<Wire>> wires_;

    std::mutex cmd_mu_;
    std::vector<Command> commands_;
    std::vector<Command> scratch_; ///< swap target: drains without realloc
    bool exited_ = false;

    std::atomic<std::uint64_t> frames_assembled_{0};
    std::atomic<std::uint64_t> writable_events_{0};
    std::atomic<std::uint64_t> spurious_writables_{0};
    std::atomic<std::uint64_t> command_wakeups_{0};
    std::atomic<std::uint64_t> wires_closed_{0};
    std::atomic<std::uint64_t> wire_add_failures_{0};
    std::atomic<std::uint64_t> wait_syscalls_{0};
    std::atomic<std::uint64_t> read_syscalls_{0};
    std::atomic<std::uint64_t> send_sqes_{0};
    std::atomic<std::uint64_t> recv_enobufs_{0};

    bool sched_batch_hint_ = true;
    bool is_uring_ = false;
    bool uring_fallback_ = false;

    std::unique_ptr<LoopBackend> backend_;
    std::unique_ptr<rt::RtThread> thread_; ///< started last in the ctor
};

thread_local Reactor::Loop* Reactor::Loop::t_current_loop = nullptr;

namespace {

// ---------------------------------------------------------------------
// Epoll backend: the portable default. Readiness-driven — edge-triggered
// read pumps, EPOLLOUT parked-writer resumption, the eventfd registered
// as interest id 0.
// ---------------------------------------------------------------------
class EpollBackend final : public LoopBackend {
public:
    explicit EpollBackend(Reactor::Loop& loop) : loop_(loop) {
        epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (epfd_ < 0) {
            throw TransportError(std::string("epoll_create1: ") +
                                 std::strerror(errno));
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = 0; // id 0 is reserved for the eventfd
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, loop_.event_fd(), &ev) != 0) {
            const int err = errno;
            ::close(epfd_);
            epfd_ = -1;
            throw TransportError(std::string("epoll_ctl(eventfd): ") +
                                 std::strerror(err));
        }
        events_.resize(64);
    }

    ~EpollBackend() override {
        if (epfd_ >= 0) ::close(epfd_);
    }

    const char* name() const noexcept override { return "epoll"; }

    void run() override {
        using PumpResult = Reactor::Loop::PumpResult;
        bool stop = false;
        while (!stop) {
            const int n = ::epoll_wait(epfd_, events_.data(),
                                       static_cast<int>(events_.size()), -1);
            if (n < 0) {
                if (errno == EINTR) continue;
                break;
            }
            loop_.note_wait_syscall();
            for (int i = 0; i < n; ++i) {
                const epoll_event& ev = events_[i];
                if (ev.data.u64 == 0) {
                    loop_.note_wakeup();
                    loop_.drain_eventfd();
                    stop = loop_.process_commands() || stop;
                    continue;
                }
                // Look up by id, never by cached pointer: a command
                // processed earlier in this same batch may have removed
                // (and freed) the wire this event refers to.
                Wire* w = loop_.find_wire(ev.data.u64);
                if (w == nullptr) continue;
                if (ev.events & EPOLLOUT) {
                    loop_.note_writable(!w->want_writable);
                    w->want_writable = false;
                    // Disarm before flushing: if the flush parks again the
                    // transport re-requests, and EPOLL_CTL_MOD re-edges a
                    // still-writable socket, so the wakeup cannot be lost.
                    mod_interest(*w, kReadInterest);
                    w->hook->flush_pending_writes();
                }
                if (ev.events &
                    (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) {
                    const bool peer_closed =
                        (ev.events & (EPOLLRDHUP | EPOLLERR | EPOLLHUP)) != 0;
                    // Cork the writer for the pump's duration: replies the
                    // frame callbacks send coalesce into one flush at
                    // uncork instead of a sendmsg per frame.
                    w->hook->set_corked(true);
                    const PumpResult pr = loop_.pump_reads(*w, peer_closed);
                    w->hook->set_corked(false);
                    if (pr == PumpResult::kClosed) loop_.close_wire(*w);
                }
            }
        }
    }

    bool add(Wire& w) override {
        // Size the read stage here, not at registration: only this
        // backend stages reads in the wire (one-time setup cost, off the
        // message path).
        w.scratch.resize(std::min(kScratchBytes, w.hook->max_frame_bytes()));
        epoll_event ev{};
        ev.events = kReadInterest;
        ev.data.u64 = w.id;
        return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, w.hook->descriptor(), &ev) ==
               0;
    }

    void remove(Wire& w) override {
        w.hook->flush_pending_writes(); // best effort; drops if peer is gone
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, w.hook->descriptor(), nullptr);
    }

    void arm_write(Wire& w) override {
        w.want_writable = true;
        mod_interest(w, kReadInterest | EPOLLOUT);
    }

    void poke(Wire& w) override {
        mod_interest(w, kReadInterest | EPOLLOUT);
    }

private:
    void mod_interest(Wire& w, std::uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = w.id;
        ::epoll_ctl(epfd_, EPOLL_CTL_MOD, w.hook->descriptor(), &ev);
    }

    Reactor::Loop& loop_;
    int epfd_ = -1;
    std::vector<epoll_event> events_; ///< preallocated epoll_wait batch
};

// ---------------------------------------------------------------------
// io_uring backend: completion-driven. Multishot recv per wire completes
// straight into pool-backed provided buffers (zero read syscalls);
// loop-thread sends are gather-sendmsg SQEs completed in-ring (zero
// sendmsg); the eventfd command ring is bridged as a re-posted in-ring
// read chain; non-loop-thread parks arm a one-shot POLL_ADD(POLLOUT).
// One io_uring_enter per cycle submits the whole cycle's SQE batch and
// waits — a corked pump's reply burst is one ring doorbell, zero under
// SQPOLL.
// ---------------------------------------------------------------------
class UringBackend final : public LoopBackend, public ReactorLoopSender {
public:
    UringBackend(Reactor::Loop& loop, const ReactorOptions& options)
        : loop_(loop), ring_(ring_options(options)) {
        unsigned want = options.uring_buffers ? options.uring_buffers
                                              : kDefaultUringBuffers;
        unsigned count = 1;
        while (count < want && count < 32768) count <<= 1;
        if (!ring_.register_buf_ring(count)) {
            throw TransportError(
                "io_uring: provided-buffer ring unsupported (needs kernel "
                ">= 5.19)");
        }
        // Receive staging: `count` chunks of the frame pool's 4 KiB size
        // class, held for the loop's lifetime and recycled through the
        // kernel's buffer ring. The global pool on purpose — this staging
        // is shared across every wire on the loop; per-wire/per-lane
        // pools still own the assembled-frame storage (consume() draws
        // from hook->frame_pool()).
        buf_count_ = count;
        chunks_.reserve(count);
        chunk_ptrs_.resize(count);
        FrameBufferPool& pool = FrameBufferPool::global();
        for (unsigned bid = 0; bid < count; ++bid) {
            FrameBuffer chunk = pool.acquire(kUringChunkBytes);
            chunk_ptrs_[bid] = chunk.data();
            ring_.buf_ring_push(chunk.data(), kUringChunkBytes,
                                static_cast<std::uint16_t>(bid));
            chunks_.push_back(std::move(chunk));
        }
        ring_.buf_ring_commit();
        deferred_.reserve(64);
        corked_.reserve(64);
    }

    const char* name() const noexcept override { return "uring"; }

    void run() override {
        post_cmd_read();
        bool stop = false;
        while (!stop) {
            bool entered = false;
            ring_.submit_and_wait(1, &entered);
            if (entered) loop_.note_wait_syscall();
            io_uring_cqe cqe;
            while (ring_.pop_cqe(&cqe)) {
                dispatch(cqe, stop);
                // A nested remove-drain (wire teardown inside a command)
                // stashes other wires' completions; replay them before
                // popping newer ones so per-wire byte order holds.
                flush_deferred(stop);
            }
            // End of cycle: uncork every wire this batch touched, so all
            // the replies its pumps produced leave as gather-send SQEs
            // submitted by the next cycle's single enter.
            uncork_all();
        }
        uncork_all();
    }

    bool add(Wire& w) override {
        // io_uring reports a bad descriptor asynchronously (first CQE);
        // registration wants the epoll-parity synchronous failure, so
        // probe the fd directly.
        if (::fcntl(w.hook->descriptor(), F_GETFL, 0) < 0) return false;
        w.hook->set_loop_sender(this, w.id);
        arm_recv(w);
        return true;
    }

    void remove(Wire& w) override {
        if (w.cork_marked) {
            w.cork_marked = false;
            w.hook->set_corked(false);
        }
        // Uninstall the sender first: any flush from here on (including
        // the transport's own completion continuation) takes the sendmsg
        // path instead of queueing new SQEs behind the cancels.
        w.hook->set_loop_sender(nullptr, 0);
        // Cancel in-flight SQEs and drain their terminal CQEs
        // synchronously. io_uring holds a file reference per in-flight
        // op; leaving one behind keeps the socket alive past the
        // transport's close (and a multishot recv would keep completing
        // into a freed wire).
        unsigned cancels = 0;
        if (w.recv_armed) {
            post_cancel(ud(w.id, kOpRecv));
            ++cancels;
        }
        if (w.send_inflight) {
            post_cancel(ud(w.id, kOpSend));
            ++cancels;
        }
        if (w.pollout_inflight) {
            post_cancel(ud(w.id, kOpPollOut));
            ++cancels;
        }
        while (w.recv_armed || w.send_inflight || w.pollout_inflight ||
               cancels > 0) {
            io_uring_cqe cqe;
            if (!ring_.pop_cqe(&cqe)) {
                bool entered = false;
                const int r = ring_.submit_and_wait(1, &entered);
                if (entered) loop_.note_wait_syscall();
                if (r < 0 && r != -EBUSY && r != -EAGAIN) break; // ring dead
                continue;
            }
            if ((cqe.user_data >> 3) != w.id) {
                // Someone else's completion: replay it after the removal
                // (flush_deferred) so its wire sees bytes in order.
                deferred_.push_back(cqe);
                continue;
            }
            switch (cqe.user_data & 7) {
            case kOpCancel:
                --cancels;
                break;
            case kOpRecv:
                // Data racing the teardown is abandoned (epoll drops it
                // the same way); the staging chunk goes straight back.
                recycle_cqe_buffer(cqe);
                if (!(cqe.flags & IORING_CQE_F_MORE)) w.recv_armed = false;
                break;
            case kOpSend:
                w.send_inflight = false;
                w.hook->complete_send(cqe.res);
                break;
            case kOpPollOut:
                w.pollout_inflight = false;
                break;
            default:
                break;
            }
        }
        w.hook->flush_pending_writes(); // best effort; sendmsg path now
    }

    void arm_write(Wire& w) override {
        w.want_writable = true;
        if (!w.pollout_inflight) post_pollout(w);
    }

    void poke(Wire& w) override {
        if (!w.pollout_inflight) post_pollout(w);
    }

    // ---- ReactorLoopSender ----

    bool on_loop_thread() const noexcept override {
        return Reactor::Loop::current() == &loop_;
    }

    bool submit_send(std::uint64_t wire_id, const iovec* iov,
                     std::size_t iovcnt) override {
        Wire* w = loop_.find_wire(wire_id);
        if (w == nullptr || w->send_inflight || iovcnt == 0) return false;
        io_uring_sqe* sqe = take_sqe();
        if (sqe == nullptr) return false; // SQ wedged: sendmsg fallback
        w->send_mh = msghdr{};
        w->send_mh.msg_iov = const_cast<iovec*>(iov);
        w->send_mh.msg_iovlen = iovcnt;
        sqe->opcode = IORING_OP_SENDMSG;
        sqe->fd = w->hook->descriptor();
        sqe->addr = reinterpret_cast<std::uint64_t>(&w->send_mh);
        sqe->msg_flags = MSG_NOSIGNAL;
        sqe->user_data = ud(wire_id, kOpSend);
        w->send_inflight = true;
        loop_.note_send_sqe();
        return true;
    }

private:
    // user_data = (wire id << 3) | op. Wire ids are monotonic and never
    // reused, so a stale completion can only miss the lookup, never hit
    // the wrong wire.
    enum : std::uint64_t {
        kOpCmd = 0,
        kOpRecv = 1,
        kOpSend = 2,
        kOpPollOut = 3,
        kOpCancel = 4,
    };

    static std::uint64_t ud(std::uint64_t id, std::uint64_t op) noexcept {
        return (id << 3) | op;
    }

    static Uring::Options ring_options(const ReactorOptions& options) {
        Uring::Options o;
        o.entries = options.uring_entries ? options.uring_entries
                                          : kDefaultUringEntries;
        o.sqpoll = options.sqpoll;
        return o;
    }

    /// Next SQE, flushing the SQ to the kernel once if it is full.
    io_uring_sqe* take_sqe() {
        io_uring_sqe* sqe = ring_.get_sqe();
        if (sqe != nullptr) return sqe;
        bool entered = false;
        ring_.submit(&entered);
        if (entered) loop_.note_wait_syscall();
        return ring_.get_sqe();
    }

    void post_cmd_read() {
        io_uring_sqe* sqe = take_sqe();
        if (sqe == nullptr) return; // ring dead; loop will stop via join
        sqe->opcode = IORING_OP_READ;
        sqe->fd = loop_.event_fd();
        sqe->addr = reinterpret_cast<std::uint64_t>(&cmd_buf_);
        sqe->len = sizeof(cmd_buf_);
        sqe->user_data = ud(0, kOpCmd);
    }

    void post_cancel(std::uint64_t target_ud) {
        io_uring_sqe* sqe = take_sqe();
        if (sqe == nullptr) return;
        sqe->opcode = IORING_OP_ASYNC_CANCEL;
        sqe->addr = target_ud;
        sqe->user_data = ud(target_ud >> 3, kOpCancel);
    }

    void post_pollout(Wire& w) {
        io_uring_sqe* sqe = take_sqe();
        if (sqe == nullptr) return;
        sqe->opcode = IORING_OP_POLL_ADD;
        sqe->fd = w.hook->descriptor();
        sqe->poll32_events = POLLOUT;
        sqe->user_data = ud(w.id, kOpPollOut);
        w.pollout_inflight = true;
    }

    void arm_recv(Wire& w) {
        io_uring_sqe* sqe = take_sqe();
        if (sqe == nullptr) {
            loop_.close_wire(w); // cannot receive again: surface as close
            return;
        }
        sqe->opcode = IORING_OP_RECV;
        sqe->fd = w.hook->descriptor();
        sqe->ioprio = IORING_RECV_MULTISHOT;
        sqe->flags = IOSQE_BUFFER_SELECT;
        sqe->buf_group = ring_.buf_group();
        sqe->user_data = ud(w.id, kOpRecv);
        w.recv_armed = true;
    }

    void recycle_cqe_buffer(const io_uring_cqe& cqe) {
        if (!(cqe.flags & IORING_CQE_F_BUFFER)) return;
        const std::uint16_t bid =
            static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
        if (bid >= buf_count_) return;
        ring_.buf_ring_push(chunk_ptrs_[bid], kUringChunkBytes, bid);
        ring_.buf_ring_commit();
    }

    void cork(Wire& w) {
        if (w.cork_marked) return;
        w.cork_marked = true;
        corked_.push_back(w.id);
        w.hook->set_corked(true);
    }

    void uncork_all() {
        for (std::uint64_t id : corked_) {
            Wire* w = loop_.find_wire(id);
            if (w == nullptr || !w->cork_marked) continue; // closed mid-cycle
            w->cork_marked = false;
            w->hook->set_corked(false);
        }
        corked_.clear();
    }

    void flush_deferred(bool& stop) {
        // Index loop: a replayed completion can close a wire, whose
        // removal defers more completions onto the back of this queue.
        for (std::size_t i = 0; i < deferred_.size(); ++i) {
            io_uring_cqe cqe = deferred_[i];
            dispatch(cqe, stop);
        }
        deferred_.clear();
    }

    void dispatch(const io_uring_cqe& cqe, bool& stop) {
        using PumpResult = Reactor::Loop::PumpResult;
        const std::uint64_t id = cqe.user_data >> 3;
        static const bool debug = std::getenv("COMPADRES_URING_DEBUG") != nullptr;
        if (debug) {
            std::fprintf(stderr, "[uring] cqe op=%llu id=%llu res=%d flags=%x\n",
                         (unsigned long long)(cqe.user_data & 7),
                         (unsigned long long)id, cqe.res, cqe.flags);
        }
        switch (cqe.user_data & 7) {
        case kOpCmd: {
            loop_.note_wakeup();
            stop = loop_.process_commands() || stop;
            if (!stop) post_cmd_read();
            break;
        }
        case kOpRecv: {
            Wire* w = loop_.find_wire(id);
            if (w != nullptr && !(cqe.flags & IORING_CQE_F_MORE)) {
                w->recv_armed = false;
            }
            if (cqe.res > 0) {
                if (w == nullptr) {
                    recycle_cqe_buffer(cqe); // stale data for a gone wire
                    break;
                }
                const std::uint16_t bid = static_cast<std::uint16_t>(
                    cqe.flags >> IORING_CQE_BUFFER_SHIFT);
                cork(*w);
                const PumpResult pr =
                    (cqe.flags & IORING_CQE_F_BUFFER) && bid < buf_count_
                        ? loop_.consume(*w, chunk_ptrs_[bid],
                                        static_cast<std::size_t>(cqe.res))
                        : PumpResult::kClosed;
                recycle_cqe_buffer(cqe);
                if (pr == PumpResult::kClosed) {
                    loop_.close_wire(*w);
                    break;
                }
            } else {
                recycle_cqe_buffer(cqe); // defensive: error CQEs carry none
                if (w == nullptr) break;
                if (cqe.res == -ENOBUFS) {
                    // The provided-buffer ring ran dry mid-burst; the
                    // chunks consumed earlier in this batch are already
                    // recycled, so re-arming below succeeds.
                    loop_.note_recv_enobufs();
                } else if (cqe.res == -ECANCELED) {
                    break; // teardown in progress; remove() owns the wire
                } else if (cqe.res == 0 || (cqe.res != -EAGAIN &&
                                            cqe.res != -EINTR)) {
                    loop_.close_wire(*w); // EOF or hard receive error
                    break;
                }
            }
            if (w != nullptr && !w->recv_armed) arm_recv(*w);
            break;
        }
        case kOpSend: {
            Wire* w = loop_.find_wire(id);
            if (w == nullptr) break; // removal already completed it
            w->send_inflight = false;
            w->hook->complete_send(cqe.res);
            break;
        }
        case kOpPollOut: {
            Wire* w = loop_.find_wire(id);
            if (w == nullptr) break;
            w->pollout_inflight = false;
            loop_.note_writable(!w->want_writable);
            w->want_writable = false;
            w->hook->flush_pending_writes();
            break;
        }
        default:
            break; // kOpCancel acks from a close that already finished
        }
    }

    Reactor::Loop& loop_;
    Uring ring_;
    unsigned buf_count_ = 0;
    std::vector<FrameBuffer> chunks_;     ///< pool-owned staging storage
    std::vector<std::uint8_t*> chunk_ptrs_; ///< bid -> chunk data
    std::vector<io_uring_cqe> deferred_;  ///< replay queue (see remove())
    std::vector<std::uint64_t> corked_;   ///< wires corked this cycle
    std::uint64_t cmd_buf_ = 0;           ///< eventfd read-chain landing pad
};

} // namespace

Reactor::Loop::Loop(std::size_t index, const ReactorOptions& options,
                    ReactorBackend kind)
    : sched_batch_hint_(options.sched_batch_hint) {
    evfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (evfd_ < 0) {
        throw TransportError(std::string("eventfd: ") + std::strerror(errno));
    }
    try {
        if (kind == ReactorBackend::kUring) {
            try {
                backend_ = std::make_unique<UringBackend>(*this, options);
                is_uring_ = true;
            } catch (const TransportError&) {
                // Kernel or sandbox denied io_uring (ENOSYS/EPERM), or the
                // requested geometry was rejected: run this loop on epoll
                // instead and record the fallback.
                uring_fallback_ = true;
            }
        }
        if (backend_ == nullptr) {
            backend_ = std::make_unique<EpollBackend>(*this);
        }
        commands_.reserve(64);
        scratch_.reserve(64);
        thread_ = std::make_unique<rt::RtThread>(
            "reactor-" + std::to_string(index), rt::Priority{},
            [this] { run(); });
    } catch (...) {
        // A throwing constructor skips the destructor: release what we
        // acquired or it leaks.
        backend_.reset();
        ::close(evfd_);
        throw;
    }
}

Reactor::Loop::~Loop() {
    if (thread_->joinable()) {
        request_stop();
        thread_->join();
    }
    // The uring backend's in-flight eventfd read references both the ring
    // and the eventfd: destroy the backend (closing the ring reaps the
    // SQE) before the eventfd goes away.
    backend_.reset();
    if (evfd_ >= 0) ::close(evfd_);
}

struct Reactor::State {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Loop*> wire_loops;
    std::uint64_t next_id = 1; // 0 is the command-ring sentinel
    std::size_t next_loop = 0;
    bool stopped = false;
    std::atomic<std::uint64_t> wires_registered{0};
};

Reactor::Reactor(ReactorOptions options) : state_(std::make_unique<State>()) {
    const std::size_t n = resolve_threads(options.threads);
    const ReactorBackend kind = resolve_backend(options.backend);
    loops_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        loops_.push_back(std::make_unique<Loop>(i, options, kind));
    }
}

Reactor::~Reactor() { stop(); }

std::uint64_t Reactor::register_wire(Transport& transport,
                                     FrameHandler on_frame,
                                     ClosedHandler on_closed, int band) {
    ReactorHook* hook = transport.reactor_hook();
    if (hook == nullptr) {
        throw TransportError(
            "transport is not reactor-capable (no pollable descriptor)");
    }
    Loop* loop = nullptr;
    std::uint64_t id = 0;
    {
        std::lock_guard lk(state_->mu);
        if (state_->stopped) throw TransportError("reactor stopped");
        id = state_->next_id++;
        const std::size_t idx =
            band >= 0 ? static_cast<std::size_t>(band) % loops_.size()
                      : state_->next_loop++ % loops_.size();
        loop = loops_[idx].get();
        state_->wire_loops.emplace(id, loop);
    }
    state_->wires_registered.fetch_add(1, std::memory_order_relaxed);
    auto wire = std::make_unique<Wire>();
    wire->id = id;
    wire->hook = hook;
    wire->on_frame = std::move(on_frame);
    wire->on_closed = std::move(on_closed);
    // Non-blocking mode must be on before the descriptor joins the loop,
    // so the first read pump cannot block.
    hook->enter_reactor_mode([loop, id] { loop->arm_write(id); });
    loop->add_wire(std::move(wire));
    return id;
}

void Reactor::deregister_wire(std::uint64_t wire_id) {
    Loop* loop = nullptr;
    {
        std::lock_guard lk(state_->mu);
        auto it = state_->wire_loops.find(wire_id);
        if (it == state_->wire_loops.end()) return; // unknown or repeated
        loop = it->second;
        state_->wire_loops.erase(it);
        if (state_->stopped) return; // loops already drained every wire
    }
    loop->remove_wire(wire_id);
}

void Reactor::stop() {
    {
        std::lock_guard lk(state_->mu);
        if (state_->stopped) return;
        state_->stopped = true;
        state_->wire_loops.clear();
    }
    for (auto& loop : loops_) loop->request_stop();
    for (auto& loop : loops_) loop->join();
}

std::size_t Reactor::thread_count() const noexcept { return loops_.size(); }

ReactorStats Reactor::stats() const {
    ReactorStats out;
    out.wires_registered =
        state_->wires_registered.load(std::memory_order_relaxed);
    for (const auto& loop : loops_) loop->accumulate(out);
    return out;
}

const char* Reactor::backend_name() const noexcept {
    std::size_t uring = 0;
    for (const auto& loop : loops_) {
        if (loop->is_uring()) ++uring;
    }
    if (uring == 0) return "epoll";
    return uring == loops_.size() ? "uring" : "mixed";
}

void Reactor::poke_writable(std::uint64_t wire_id) {
    Loop* loop = nullptr;
    {
        std::lock_guard lk(state_->mu);
        auto it = state_->wire_loops.find(wire_id);
        if (it == state_->wire_loops.end() || state_->stopped) return;
        loop = it->second;
    }
    loop->poke(wire_id);
}

Reactor& Reactor::shared() {
    // Leaked on purpose (see header): loops outlive every static whose
    // destructor might otherwise race them at exit.
    static Reactor* instance = new Reactor();
    return *instance;
}

} // namespace compadres::net
