#include "net/reactor.hpp"

#include "cdr/giop.hpp"
#include "rt/thread.hpp"

#include <sched.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

namespace compadres::net {

namespace {

std::size_t resolve_threads(std::size_t requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("COMPADRES_REACTOR_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t cap = hw == 0 ? 1 : hw;
    return cap < 4 ? cap : 4;
}

/// One registered descriptor plus its incremental inbound-frame state.
/// Owned by exactly one loop; touched only on that loop's thread.
struct Wire {
    std::uint64_t id = 0;
    ReactorHook* hook = nullptr;
    Reactor::FrameHandler on_frame;
    Reactor::ClosedHandler on_closed;

    // Frame assembly: header bytes accumulate in `header`; once complete
    // the pooled frame is sized from message_size and body bytes stream
    // straight into it. frame_total == 0 means "still reading the header".
    std::uint8_t header[cdr::GiopHeader::kSize] = {};
    std::size_t header_got = 0;
    FrameBuffer frame;
    std::size_t frame_got = 0;   ///< bytes of `frame` filled (incl. header)
    std::size_t frame_total = 0; ///< header + body target size

    // Read staging: each refill pulls up to a scratch-full in one read()
    // and the state machine consumes it in memory, so small frames cost
    // one syscall instead of header-read + body-read + EAGAIN-read.
    // Sized at registration; never grows.
    std::vector<std::uint8_t> scratch;
    std::size_t scratch_pos = 0;
    std::size_t scratch_len = 0;

    bool want_writable = false; ///< EPOLLOUT armed and not yet delivered
};

/// Per-wire read staging capacity. Big enough to swallow a typical
/// wakeup's worth of small frames in one syscall, small enough that a
/// 64-wire fan-in stages ~1 MiB total.
constexpr std::size_t kScratchBytes = 16 * 1024;

/// Read-side interest. EPOLLRDHUP rides along so an event that coalesced
/// data with the peer's FIN is distinguishable: the short-read fast exit
/// in pump_reads must not be taken then, or the already-queued EOF would
/// never produce another edge.
constexpr std::uint32_t kReadInterest = EPOLLIN | EPOLLRDHUP | EPOLLET;

/// Blocking handshake for cross-thread deregistration. The waiter owns
/// the storage (stack frame) and frees it the moment wait() returns, so
/// signal() must notify *under* the mutex: notifying after unlock races
/// the waiter's destruction of the condvar it is notifying.
struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    void signal() {
        std::lock_guard lk(mu);
        done = true;
        cv.notify_all();
    }
    void wait() {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return done; });
    }
};

struct Command {
    enum class Kind : std::uint8_t { kAdd, kRemove, kArmWrite, kPoke, kStop };
    Kind kind = Kind::kStop;
    std::uint64_t id = 0;
    std::unique_ptr<Wire> wire;       ///< kAdd payload
    Completion* completion = nullptr; ///< kRemove handshake
};

} // namespace

/// One epoll event loop: an epoll fd, an eventfd for cross-thread
/// commands, and the wires assigned to this thread. All epoll mutations
/// happen on the loop thread itself (commands are posted, not applied
/// in place), so epoll_ctl never races epoll_wait.
class Reactor::Loop {
public:
    /// Throws TransportError when the epoll/eventfd plumbing cannot be
    /// set up: a loop whose epoll_wait would EBADF on the first cycle
    /// silently accepts wires and never delivers a frame, so the failure
    /// must surface at construction, not as a dead pool.
    explicit Loop(std::size_t index, bool sched_batch_hint)
        : sched_batch_hint_(sched_batch_hint) {
        epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (epfd_ < 0) {
            throw TransportError(std::string("epoll_create1: ") +
                                 std::strerror(errno));
        }
        evfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (evfd_ < 0) {
            const int err = errno;
            ::close(epfd_);
            throw TransportError(std::string("eventfd: ") +
                                 std::strerror(err));
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = 0; // id 0 is reserved for the eventfd
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, evfd_, &ev) != 0) {
            const int err = errno;
            ::close(evfd_);
            ::close(epfd_);
            throw TransportError(std::string("epoll_ctl(eventfd): ") +
                                 std::strerror(err));
        }
        events_.resize(64);
        commands_.reserve(64);
        scratch_.reserve(64);
        try {
            thread_ = std::make_unique<rt::RtThread>(
                "reactor-" + std::to_string(index), rt::Priority{},
                [this] { run(); });
        } catch (...) {
            // A throwing constructor skips the destructor: close the fds
            // ourselves or they leak.
            ::close(evfd_);
            ::close(epfd_);
            throw;
        }
    }

    ~Loop() {
        if (thread_->joinable()) {
            request_stop();
            thread_->join();
        }
        if (evfd_ >= 0) ::close(evfd_);
        if (epfd_ >= 0) ::close(epfd_);
    }

    void add_wire(std::unique_ptr<Wire> wire) {
        Command c;
        c.kind = Command::Kind::kAdd;
        c.wire = std::move(wire);
        post(std::move(c));
    }

    void remove_wire(std::uint64_t id) {
        if (t_current_loop == this) {
            // Called from this loop's own callback: apply inline; posting
            // and waiting would deadlock against ourselves.
            do_remove(id);
            return;
        }
        Completion done;
        Command c;
        c.kind = Command::Kind::kRemove;
        c.id = id;
        c.completion = &done;
        post(std::move(c));
        done.wait();
    }

    void arm_write(std::uint64_t id) {
        if (t_current_loop == this) {
            do_arm(id);
            return;
        }
        Command c;
        c.kind = Command::Kind::kArmWrite;
        c.id = id;
        post(std::move(c));
    }

    /// Test seam (Reactor::poke_writable): arm EPOLLOUT in the interest
    /// set without marking the wire as wanting it, manufacturing the
    /// spurious delivery the handler must tolerate.
    void poke(std::uint64_t id) {
        Command c;
        c.kind = Command::Kind::kPoke;
        c.id = id;
        post(std::move(c));
    }

    void request_stop() {
        Command c;
        c.kind = Command::Kind::kStop;
        post(std::move(c));
    }

    void join() {
        if (thread_->joinable()) thread_->join();
    }

    void accumulate(ReactorStats& out) const {
        out.frames_assembled += frames_assembled_.load(std::memory_order_relaxed);
        out.writable_events += writable_events_.load(std::memory_order_relaxed);
        out.spurious_writables +=
            spurious_writables_.load(std::memory_order_relaxed);
        out.wakeups += wakeups_.load(std::memory_order_relaxed);
        out.wires_closed += wires_closed_.load(std::memory_order_relaxed);
        out.register_failures +=
            register_failures_.load(std::memory_order_relaxed);
    }

private:
    enum class PumpResult { kIdle, kClosed };

    void post(Command c) {
        bool enqueued = false;
        {
            std::lock_guard lk(cmd_mu_);
            if (!exited_) {
                commands_.push_back(std::move(c));
                enqueued = true;
            }
        }
        if (enqueued) {
            const std::uint64_t one = 1;
            [[maybe_unused]] const ssize_t w =
                ::write(evfd_, &one, sizeof(one));
            return;
        }
        // Loop already gone: every wire was removed during stop, so a
        // removal is trivially complete; other commands are moot.
        if (c.completion != nullptr) c.completion->signal();
    }

    void run() {
        t_current_loop = this;
        // Transports must see sends from this thread's callbacks as
        // loop-thread sends (never block on intake backpressure that only
        // this thread's EPOLLOUT handling could relieve).
        mark_reactor_loop_thread();
        // Batch-hint the loop thread: an event loop that wakeup-preempts
        // the very producers that feed it sees one frame per edge and
        // never gets to coalesce (EEVDF preempts on wake far more eagerly
        // than CFS did). SCHED_BATCH keeps the loop runnable but lets a
        // bursting sender finish its burst first, so a single epoll cycle
        // pumps the whole burst and the corked writer folds the replies
        // into one sendmsg. Unprivileged (it only ever lowers priority);
        // best-effort on kernels without it.
        if (sched_batch_hint_) {
            struct sched_param sp {};
            (void)::sched_setscheduler(0, SCHED_BATCH, &sp);
        }
        bool stop = false;
        while (!stop) {
            const int n = ::epoll_wait(epfd_, events_.data(),
                                       static_cast<int>(events_.size()), -1);
            if (n < 0) {
                if (errno == EINTR) continue;
                break;
            }
            for (int i = 0; i < n; ++i) {
                const epoll_event& ev = events_[i];
                if (ev.data.u64 == 0) {
                    wakeups_.fetch_add(1, std::memory_order_relaxed);
                    drain_eventfd();
                    stop = process_commands() || stop;
                    continue;
                }
                // Look up by id, never by cached pointer: a command
                // processed earlier in this same batch may have removed
                // (and freed) the wire this event refers to.
                auto it = wires_.find(ev.data.u64);
                if (it == wires_.end()) continue;
                Wire& w = *it->second;
                if (ev.events & EPOLLOUT) {
                    writable_events_.fetch_add(1, std::memory_order_relaxed);
                    if (!w.want_writable) {
                        spurious_writables_.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    w.want_writable = false;
                    // Disarm before flushing: if the flush parks again the
                    // transport re-requests, and EPOLL_CTL_MOD re-edges a
                    // still-writable socket, so the wakeup cannot be lost.
                    mod_interest(w, kReadInterest);
                    w.hook->flush_pending_writes();
                }
                if (ev.events &
                    (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) {
                    const bool peer_closed =
                        (ev.events & (EPOLLRDHUP | EPOLLERR | EPOLLHUP)) != 0;
                    // Cork the writer for the pump's duration: replies the
                    // frame callbacks send coalesce into one flush at
                    // uncork instead of a sendmsg per frame.
                    w.hook->set_corked(true);
                    const PumpResult pr = pump_reads(w, peer_closed);
                    w.hook->set_corked(false);
                    if (pr == PumpResult::kClosed) close_wire(it);
                }
            }
        }
        // Final drain under the same lock hold that publishes exited_:
        // a racing post() either lands before (drained here) or observes
        // exited_ and self-completes.
        std::lock_guard lk(cmd_mu_);
        scratch_.swap(commands_);
        for (Command& c : scratch_) {
            if (c.completion != nullptr) c.completion->signal();
        }
        scratch_.clear();
        exited_ = true;
        t_current_loop = nullptr;
    }

    void drain_eventfd() {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(evfd_, &counter, sizeof(counter));
    }

    /// Returns true when a stop command was seen.
    bool process_commands() {
        {
            std::lock_guard lk(cmd_mu_);
            scratch_.swap(commands_);
        }
        bool saw_stop = false;
        for (Command& c : scratch_) {
            switch (c.kind) {
            case Command::Kind::kAdd:
                do_add(std::move(c.wire));
                break;
            case Command::Kind::kRemove:
                do_remove(c.id);
                if (c.completion != nullptr) c.completion->signal();
                break;
            case Command::Kind::kArmWrite:
                do_arm(c.id);
                break;
            case Command::Kind::kPoke: {
                auto it = wires_.find(c.id);
                if (it != wires_.end()) {
                    mod_interest(*it->second, kReadInterest | EPOLLOUT);
                }
                break;
            }
            case Command::Kind::kStop:
                saw_stop = true;
                break;
            }
        }
        scratch_.clear();
        if (saw_stop) {
            // Deterministic teardown: flush-or-drop every wire's intake
            // before its descriptor leaves the epoll set.
            while (!wires_.empty()) do_remove(wires_.begin()->first);
        }
        return saw_stop;
    }

    void do_add(std::unique_ptr<Wire> wire) {
        epoll_event ev{};
        ev.events = kReadInterest;
        ev.data.u64 = wire->id;
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wire->hook->descriptor(), &ev) !=
            0) {
            // Unusable descriptor: surface as an immediate close.
            register_failures_.fetch_add(1, std::memory_order_relaxed);
            wires_closed_.fetch_add(1, std::memory_order_relaxed);
            if (wire->on_closed) wire->on_closed();
            return;
        }
        ReactorHook* hook = wire->hook;
        wires_.emplace(wire->id, std::move(wire));
        // The transport entered reactor mode before this command was
        // posted, so a concurrent send may already have parked on EAGAIN
        // and requested writability while the wire was unknown here —
        // that arm silently no-op'd. Re-flush now that the wire is
        // registered: a batch still parked re-requests from its own
        // EAGAIN, and this time do_arm (inline, same thread) sticks.
        hook->flush_pending_writes();
    }

    /// Deliberate removal (deregister/stop): flush the coalescing intake
    /// first — EAGAIN'd output is dropped-and-counted by the transport's
    /// own close later — then deregister from epoll and free the wire
    /// (returning any half-assembled inbound frame to the pool).
    /// on_closed is NOT invoked: that callback means "the peer went away".
    void do_remove(std::uint64_t id) {
        auto it = wires_.find(id);
        if (it == wires_.end()) return;
        Wire& w = *it->second;
        w.hook->flush_pending_writes();
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, w.hook->descriptor(), nullptr);
        wires_.erase(it);
    }

    void do_arm(std::uint64_t id) {
        auto it = wires_.find(id);
        if (it == wires_.end()) return;
        it->second->want_writable = true;
        mod_interest(*it->second, kReadInterest | EPOLLOUT);
    }

    void mod_interest(Wire& w, std::uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = w.id;
        ::epoll_ctl(epfd_, EPOLL_CTL_MOD, w.hook->descriptor(), &ev);
    }

    /// EOF/error-driven close: deregister, hand any final accounting to
    /// the transport via its own close later, then notify the owner.
    void close_wire(std::unordered_map<std::uint64_t,
                                       std::unique_ptr<Wire>>::iterator it) {
        Wire& w = *it->second;
        w.hook->flush_pending_writes(); // best effort; drops if peer is gone
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, w.hook->descriptor(), nullptr);
        wires_closed_.fetch_add(1, std::memory_order_relaxed);
        Reactor::ClosedHandler on_closed = std::move(w.on_closed);
        wires_.erase(it);
        if (on_closed) on_closed();
    }

    /// Account and hand off a completed frame; kClosed if the handler
    /// throws.
    PumpResult deliver_frame(Wire& w) {
        w.hook->note_frame_received();
        frames_assembled_.fetch_add(1, std::memory_order_relaxed);
        FrameBuffer complete = std::move(w.frame);
        w.frame_total = 0;
        w.frame_got = 0;
        w.header_got = 0;
        if (w.on_frame) {
            try {
                w.on_frame(std::move(complete));
            } catch (...) {
                return PumpResult::kClosed;
            }
        }
        return PumpResult::kIdle;
    }

    /// Edge-triggered read pump: drain the socket, handing each completed
    /// frame to on_frame. kClosed on EOF (including EOF mid-frame), read
    /// error, oversize/corrupt header, or a throwing frame handler.
    ///
    /// Reads are staged: each refill pulls up to a scratch-full in one
    /// syscall and the header/body state machine consumes it in memory.
    /// A short read on a stream socket means the kernel buffer is drained
    /// (epoll(7)), which satisfies the edge-triggered contract without a
    /// final EAGAIN read — the common case, a few small frames per
    /// wakeup, costs one syscall total instead of three per frame. Bodies
    /// with more than a scratch-full outstanding bypass the stage and
    /// read straight into the pooled frame (no copy).
    ///
    /// `peer_closed` (event carried EPOLLRDHUP/ERR/HUP) disables the
    /// short-read exit: a FIN queued behind the data produces no further
    /// edge, so this pump must read through to the EOF itself.
    PumpResult pump_reads(Wire& w, bool peer_closed) {
        const int fd = w.hook->descriptor();
        for (;;) {
            bool drained = false;
            if (w.scratch_pos == w.scratch_len) {
                const bool direct =
                    w.frame_total != 0 &&
                    w.frame_total - w.frame_got >= w.scratch.size();
                std::uint8_t* dst = direct ? w.frame.data() + w.frame_got
                                           : w.scratch.data();
                const std::size_t want = direct ? w.frame_total - w.frame_got
                                                : w.scratch.size();
                const ssize_t r = ::read(fd, dst, want);
                if (r == 0) return PumpResult::kClosed; // EOF (incl. mid-frame)
                if (r < 0) {
                    if (errno == EINTR) continue;
                    if (errno == EAGAIN || errno == EWOULDBLOCK) {
                        return PumpResult::kIdle;
                    }
                    return PumpResult::kClosed;
                }
                drained = static_cast<std::size_t>(r) < want && !peer_closed;
                if (direct) {
                    w.frame_got += static_cast<std::size_t>(r);
                    if (w.frame_got == w.frame_total &&
                        deliver_frame(w) == PumpResult::kClosed) {
                        return PumpResult::kClosed;
                    }
                    if (drained) return PumpResult::kIdle;
                    continue;
                }
                w.scratch_pos = 0;
                w.scratch_len = static_cast<std::size_t>(r);
            }
            while (w.scratch_pos < w.scratch_len) {
                const std::size_t avail = w.scratch_len - w.scratch_pos;
                if (w.frame_total == 0) {
                    const std::size_t take =
                        std::min(cdr::GiopHeader::kSize - w.header_got, avail);
                    std::memcpy(w.header + w.header_got,
                                w.scratch.data() + w.scratch_pos, take);
                    w.header_got += take;
                    w.scratch_pos += take;
                    if (w.header_got < cdr::GiopHeader::kSize) continue;
                    std::size_t total = 0;
                    try {
                        const cdr::GiopHeader header = cdr::decode_header(
                            w.header, cdr::GiopHeader::kSize);
                        total = cdr::GiopHeader::kSize +
                                static_cast<std::size_t>(header.message_size);
                    } catch (...) {
                        return PumpResult::kClosed; // corrupt header
                    }
                    if (total > w.hook->max_frame_bytes()) {
                        return PumpResult::kClosed;
                    }
                    // Draw from the wire's own pool (per-lane for lane
                    // groups) so bands never share a pool ring.
                    w.frame = w.hook->frame_pool().acquire(total);
                    std::memcpy(w.frame.data(), w.header,
                                cdr::GiopHeader::kSize);
                    w.frame_total = total;
                    w.frame_got = cdr::GiopHeader::kSize;
                } else {
                    const std::size_t take =
                        std::min(w.frame_total - w.frame_got, avail);
                    std::memcpy(w.frame.data() + w.frame_got,
                                w.scratch.data() + w.scratch_pos, take);
                    w.frame_got += take;
                    w.scratch_pos += take;
                    if (w.frame_got == w.frame_total &&
                        deliver_frame(w) == PumpResult::kClosed) {
                        return PumpResult::kClosed;
                    }
                }
            }
            if (drained) return PumpResult::kIdle;
        }
    }

    static thread_local Loop* t_current_loop;

    int epfd_ = -1;
    int evfd_ = -1;
    std::vector<epoll_event> events_; ///< preallocated epoll_wait batch
    std::unordered_map<std::uint64_t, std::unique_ptr<Wire>> wires_;

    std::mutex cmd_mu_;
    std::vector<Command> commands_;
    std::vector<Command> scratch_; ///< swap target: drains without realloc
    bool exited_ = false;

    std::atomic<std::uint64_t> frames_assembled_{0};
    std::atomic<std::uint64_t> writable_events_{0};
    std::atomic<std::uint64_t> spurious_writables_{0};
    std::atomic<std::uint64_t> wakeups_{0};
    std::atomic<std::uint64_t> wires_closed_{0};
    std::atomic<std::uint64_t> register_failures_{0};

    bool sched_batch_hint_ = true;
    std::unique_ptr<rt::RtThread> thread_; ///< started last in the ctor
};

thread_local Reactor::Loop* Reactor::Loop::t_current_loop = nullptr;

struct Reactor::State {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Loop*> wire_loops;
    std::uint64_t next_id = 1; // 0 is the eventfd sentinel
    std::size_t next_loop = 0;
    bool stopped = false;
    std::atomic<std::uint64_t> wires_registered{0};
};

Reactor::Reactor(ReactorOptions options) : state_(std::make_unique<State>()) {
    const std::size_t n = resolve_threads(options.threads);
    loops_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        loops_.push_back(std::make_unique<Loop>(i, options.sched_batch_hint));
    }
}

Reactor::~Reactor() { stop(); }

std::uint64_t Reactor::register_wire(Transport& transport,
                                     FrameHandler on_frame,
                                     ClosedHandler on_closed, int band) {
    ReactorHook* hook = transport.reactor_hook();
    if (hook == nullptr) {
        throw TransportError(
            "transport is not reactor-capable (no pollable descriptor)");
    }
    Loop* loop = nullptr;
    std::uint64_t id = 0;
    {
        std::lock_guard lk(state_->mu);
        if (state_->stopped) throw TransportError("reactor stopped");
        id = state_->next_id++;
        const std::size_t idx =
            band >= 0 ? static_cast<std::size_t>(band) % loops_.size()
                      : state_->next_loop++ % loops_.size();
        loop = loops_[idx].get();
        state_->wire_loops.emplace(id, loop);
    }
    state_->wires_registered.fetch_add(1, std::memory_order_relaxed);
    auto wire = std::make_unique<Wire>();
    wire->id = id;
    wire->hook = hook;
    wire->on_frame = std::move(on_frame);
    wire->on_closed = std::move(on_closed);
    wire->scratch.resize(
        std::min(kScratchBytes, hook->max_frame_bytes()));
    // Non-blocking mode must be on before the descriptor joins epoll, so
    // the first edge-triggered pump cannot block in read().
    hook->enter_reactor_mode([loop, id] { loop->arm_write(id); });
    loop->add_wire(std::move(wire));
    return id;
}

void Reactor::deregister_wire(std::uint64_t wire_id) {
    Loop* loop = nullptr;
    {
        std::lock_guard lk(state_->mu);
        auto it = state_->wire_loops.find(wire_id);
        if (it == state_->wire_loops.end()) return; // unknown or repeated
        loop = it->second;
        state_->wire_loops.erase(it);
        if (state_->stopped) return; // loops already drained every wire
    }
    loop->remove_wire(wire_id);
}

void Reactor::stop() {
    {
        std::lock_guard lk(state_->mu);
        if (state_->stopped) return;
        state_->stopped = true;
        state_->wire_loops.clear();
    }
    for (auto& loop : loops_) loop->request_stop();
    for (auto& loop : loops_) loop->join();
}

std::size_t Reactor::thread_count() const noexcept { return loops_.size(); }

ReactorStats Reactor::stats() const {
    ReactorStats out;
    out.wires_registered =
        state_->wires_registered.load(std::memory_order_relaxed);
    for (const auto& loop : loops_) loop->accumulate(out);
    return out;
}

void Reactor::poke_writable(std::uint64_t wire_id) {
    Loop* loop = nullptr;
    {
        std::lock_guard lk(state_->mu);
        auto it = state_->wire_loops.find(wire_id);
        if (it == state_->wire_loops.end() || state_->stopped) return;
        loop = it->second;
    }
    loop->poke(wire_id);
}

Reactor& Reactor::shared() {
    // Leaked on purpose (see header): loops outlive every static whose
    // destructor might otherwise race them at exit.
    static Reactor* instance = new Reactor();
    return *instance;
}

} // namespace compadres::net
