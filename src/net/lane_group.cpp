#include "net/lane_group.hpp"

#include "cdr/giop.hpp"
#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <cstring>

namespace compadres::net {

namespace {

/// Object key of the lane-negotiation hello. Consumed by LaneAcceptor
/// before the wire reaches the bridge, so it can never collide with
/// "compadres.bridge" route traffic.
constexpr const char* kLaneObjectKey = "compadres.lane";
constexpr const char* kLaneHelloOp = "hello";

std::uint64_t next_group_id() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    // Process id in the high bits keeps ids from independent client
    // processes hitting one acceptor distinct; the counter keeps groups
    // within a process distinct.
    return (static_cast<std::uint64_t>(::getpid()) << 32) ^
           (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::vector<std::uint8_t> encode_hello(std::uint64_t group_id,
                                       std::uint32_t lane_index,
                                       std::uint32_t lane_count) {
    cdr::OutputStream payload;
    payload.write_ulonglong(group_id);
    payload.write_ulong(lane_index);
    payload.write_ulong(lane_count);
    cdr::RequestHeader req;
    req.request_id = 0;
    req.response_expected = false;
    req.object_key = kLaneObjectKey;
    req.operation = kLaneHelloOp;
    const std::vector<std::uint8_t> body = payload.take_buffer();
    return cdr::encode_request(req, body.data(), body.size());
}

struct LaneHello {
    std::uint64_t group_id = 0;
    std::uint32_t lane_index = 0;
    std::uint32_t lane_count = 0;
};

LaneHello decode_hello(const FrameBuffer& frame) {
    const cdr::DecodedRequestView view =
        cdr::decode_request_view(frame.data(), frame.size());
    if (view.header.object_key != kLaneObjectKey ||
        view.header.operation != kLaneHelloOp) {
        throw TransportError("lane handshake: first frame is not a hello");
    }
    cdr::InputStream in(view.payload, view.payload_len, view.byte_order);
    LaneHello hello;
    hello.group_id = in.read_ulonglong();
    hello.lane_index = in.read_ulong();
    hello.lane_count = in.read_ulong();
    if (hello.lane_count == 0 || hello.lane_count > kMaxLanes ||
        hello.lane_index >= hello.lane_count) {
        throw TransportError("lane handshake: bad lane geometry (" +
                             std::to_string(hello.lane_index) + "/" +
                             std::to_string(hello.lane_count) + ")");
    }
    return hello;
}

std::vector<std::unique_ptr<FrameBufferPool>>
make_lane_pools(const LaneGroupOptions& options, std::size_t lanes) {
    std::vector<std::unique_ptr<FrameBufferPool>> pools(lanes);
    if (!options.per_lane_pools) return pools; // all-null: global pool
    FramePoolOptions po;
    po.thread_cache = true;
    for (std::size_t c = 0; c < 4; ++c) po.tls_depth[c] = options.tls_depth[c];
    for (auto& p : pools) p = std::make_unique<FrameBufferPool>(po);
    return pools;
}

} // namespace

std::size_t LanePolicy::band_for_frame(const std::uint8_t* frame,
                                       std::size_t lanes) noexcept {
    const std::size_t band = cdr::frame_band(frame);
    return band < lanes ? band : (lanes ? lanes - 1 : 0);
}

LaneGroup::LaneGroup(std::vector<std::unique_ptr<Transport>> lanes,
                     std::vector<std::unique_ptr<FrameBufferPool>> pools,
                     std::uint64_t group_id)
    : lanes_(std::move(lanes)), pools_(std::move(pools)), group_id_(group_id),
      route_(lanes_.size()), alive_(lanes_.size()) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        route_[i].store(i, std::memory_order_relaxed);
        alive_[i].store(true, std::memory_order_relaxed);
    }
}

LaneGroup::~LaneGroup() { close(); }

FrameBufferPool& LaneGroup::pool_for_band(std::size_t i) noexcept {
    if (i >= lanes_.size()) i = lanes_.empty() ? 0 : lanes_.size() - 1;
    if (i < pools_.size() && pools_[i]) return *pools_[i];
    return FrameBufferPool::global();
}

void LaneGroup::send_frame(FrameBuffer frame) {
    const std::size_t band =
        LanePolicy::band_for_frame(frame.data(), lanes_.size());
    const std::size_t idx = route_[band].load(std::memory_order_acquire);
    if (idx == kNoLane) throw TransportError("lane group: all lanes failed");
    try {
        lanes_[idx]->send_frame(std::move(frame));
    } catch (const TransportError&) {
        // The frame was consumed (ownership passed into the lane, which
        // counted it dropped). Deliberate close keeps throwing; a lane
        // dying underneath live traffic degrades the group instead:
        // reroute the band and let callers keep sending on the survivors.
        {
            std::lock_guard lk(mu_);
            if (closed_) throw;
        }
        note_lane_failure(idx);
        if (route_[band].load(std::memory_order_acquire) == kNoLane) throw;
    }
}

void LaneGroup::note_lane_failure(std::size_t idx) noexcept {
    std::lock_guard lk(mu_);
    if (!alive_[idx].load(std::memory_order_relaxed)) return; // already seen
    alive_[idx].store(false, std::memory_order_release);
    failovers_.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::emit(obs::EventType::kLaneFailover, idx,
                              static_cast<std::uint32_t>(lanes_.size()));
    // Reroute every band currently mapped to the dead lane onto the
    // nearest surviving lane (ties break toward the more urgent side).
    for (std::size_t band = 0; band < route_.size(); ++band) {
        const std::size_t cur = route_[band].load(std::memory_order_relaxed);
        if (cur != idx && cur != kNoLane &&
            alive_[cur].load(std::memory_order_relaxed)) {
            continue;
        }
        std::size_t best = kNoLane;
        std::size_t best_dist = lanes_.size() + 1;
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            if (!alive_[i].load(std::memory_order_relaxed)) continue;
            const std::size_t dist = i > band ? i - band : band - i;
            if (dist < best_dist) {
                best = i;
                best_dist = dist;
            }
        }
        route_[band].store(best, std::memory_order_release);
    }
}

std::optional<FrameBuffer> LaneGroup::recv_frame() {
    {
        std::lock_guard lk(mu_);
        if (!closed_ && !readers_started_) start_readers_locked();
    }
    return recv_ring_.pop();
}

void LaneGroup::start_readers_locked() {
    readers_started_ = true;
    readers_live_.store(lanes_.size(), std::memory_order_relaxed);
    readers_.reserve(lanes_.size());
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        readers_.emplace_back([this, i] {
            try {
                while (auto frame = lanes_[i]->recv_frame()) {
                    if (!recv_ring_.push(std::move(*frame))) break;
                }
            } catch (const TransportError&) {
                // Lane died mid-read: degrade the group; surviving lanes
                // keep feeding the ring.
                note_lane_failure(i);
            }
            if (readers_live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                recv_ring_.close(); // last lane done: drain, then EOF
            }
        });
    }
}

void LaneGroup::prepare_close() {
    for (auto& lane : lanes_) {
        try {
            lane->prepare_close();
        } catch (const TransportError&) {
            // A dead lane has nothing left to flush.
        }
    }
}

void LaneGroup::close() {
    std::vector<std::thread> readers;
    {
        std::lock_guard lk(mu_);
        if (closed_) return;
        closed_ = true;
        readers.swap(readers_);
    }
    // Two-phase: every lane flushes its queue before any lane sends FIN,
    // so the peer never sees one lane end while another still holds
    // undelivered frames of the same logical route.
    prepare_close();
    for (auto& lane : lanes_) lane->close();
    recv_ring_.close();
    for (auto& r : readers) r.join();
}

std::string LaneGroup::peer_description() const {
    std::string desc = "lanes[" + std::to_string(lanes_.size()) + "]";
    if (!lanes_.empty()) desc += "@" + lanes_.front()->peer_description();
    return desc;
}

TransportStats LaneGroup::stats() const {
    TransportStats sum;
    for (const auto& lane : lanes_) {
        const TransportStats s = lane->stats();
        sum.frames_sent += s.frames_sent;
        sum.frames_received += s.frames_received;
        sum.frames_dropped += s.frames_dropped;
        sum.send_syscalls += s.send_syscalls;
        sum.send_batches += s.send_batches;
        sum.send_stalls += s.send_stalls;
        if (s.max_batch_frames > sum.max_batch_frames) {
            sum.max_batch_frames = s.max_batch_frames;
        }
        if (s.intake_depth_hwm > sum.intake_depth_hwm) {
            sum.intake_depth_hwm = s.intake_depth_hwm;
        }
    }
    return sum;
}

std::unique_ptr<LaneGroup> lane_connect(const std::string& host,
                                        std::uint16_t port,
                                        const LaneGroupOptions& options) {
    const std::size_t bands =
        options.bands == 0 ? 1 : (options.bands > kMaxLanes ? kMaxLanes
                                                            : options.bands);
    const std::uint64_t group_id = next_group_id();
    auto pools = make_lane_pools(options, bands);
    std::vector<std::unique_ptr<Transport>> lanes;
    lanes.reserve(bands);
    for (std::size_t i = 0; i < bands; ++i) {
        TcpOptions tcp = options.tcp;
        tcp.pool = pools[i] ? pools[i].get() : nullptr;
        auto lane = tcp_connect(host, port, tcp);
        lane->send_frame(encode_hello(group_id, static_cast<std::uint32_t>(i),
                                      static_cast<std::uint32_t>(bands)));
        lanes.push_back(std::move(lane));
    }
    return std::make_unique<LaneGroup>(std::move(lanes), std::move(pools),
                                       group_id);
}

LaneAcceptor::LaneAcceptor(std::uint16_t port, const LaneGroupOptions& options)
    : acceptor_(port, options.tcp), options_(options) {}

std::unique_ptr<LaneGroup> LaneAcceptor::accept() {
    for (;;) {
        std::unique_ptr<Transport> conn = acceptor_.accept();
        if (!conn) return nullptr;
        LaneHello hello;
        try {
            auto frame = conn->recv_frame();
            if (!frame) continue; // peer vanished before its hello
            hello = decode_hello(*frame);
        } catch (const std::exception&) {
            continue; // not a lane client; drop the connection
        }
        PendingGroup& group = pending_[hello.group_id];
        if (group.lanes.empty()) group.lanes.resize(hello.lane_count);
        if (hello.lane_count != group.lanes.size() ||
            group.lanes[hello.lane_index] != nullptr) {
            pending_.erase(hello.group_id); // inconsistent peer: start over
            continue;
        }
        group.lanes[hello.lane_index] = std::move(conn);
        if (++group.present < group.lanes.size()) continue;

        std::vector<std::unique_ptr<Transport>> lanes =
            std::move(group.lanes);
        pending_.erase(hello.group_id);
        auto pools = make_lane_pools(options_, lanes.size());
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            // Injected before the wire is registered with any reactor or
            // reader, which is the documented window for set_frame_pool.
            if (pools[i]) lanes[i]->set_frame_pool(pools[i].get());
        }
        return std::make_unique<LaneGroup>(std::move(lanes), std::move(pools),
                                           hello.group_id);
    }
}

} // namespace compadres::net
