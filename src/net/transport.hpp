// Frame transports.
//
// Both ORBs exchange self-contained GIOP frames. The evaluation (paper
// §3.3) ran client and server "on a single machine connected via loopback
// network"; we provide an in-process loopback transport for the benches
// and a real TCP transport (with GIOP-aware framing) for distributed use.
//
// Frames travel as pooled FrameBuffers (net/frame_pool.hpp): a steady-state
// send or receive recycles storage instead of allocating it. The
// std::vector overload of send_frame is a compatibility shim that copies
// through the pool, for callers that still build frames as vectors.
#pragma once

#include "net/frame_pool.hpp"

#include <sys/uio.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace compadres::net {

class TransportError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Wire counters; all zero for transports that do not track them.
struct TransportStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    /// Frames accepted by send_frame but dropped unsent — the coalescing
    /// writer's queue at close(), or a batch that failed mid-write.
    std::uint64_t frames_dropped = 0;
    std::uint64_t send_syscalls = 0;  ///< sendmsg/writev calls issued
    std::uint64_t send_batches = 0;   ///< coalesced flushes
    std::uint64_t max_batch_frames = 0; ///< largest single-flush batch
    /// Times a sender blocked waiting for intake space (the coalescing
    /// writer's queue was full) — per-lane stall visibility for the trace
    /// report; a non-reactor sender stalls, a reactor-thread sender drops.
    std::uint64_t send_stalls = 0;
    /// High-water mark of the coalescing intake depth — how close the
    /// lane came to stalling even when it never did.
    std::uint64_t intake_depth_hwm = 0;
};

/// Completion-based send seam a reactor loop backend (io_uring) installs
/// on its wires' transports: instead of paying a sendmsg per coalesced
/// batch, a flush running on the owning loop's thread hands the staged
/// iovec array to submit_send and the backend ships it as one gather-send
/// SQE, completed in-ring. The submission queue is single-producer, so
/// submit_send is only legal when on_loop_thread() is true — callers on
/// any other thread keep the sendmsg path.
class ReactorLoopSender {
public:
    virtual ~ReactorLoopSender() = default;

    /// True only on the thread of the loop that owns this wire.
    virtual bool on_loop_thread() const noexcept = 0;

    /// Post an async gather-send of iov[0..iovcnt). The iovec array and
    /// the frame storage behind it must stay untouched until the backend
    /// calls ReactorHook::complete_send. False when the backend cannot
    /// take the batch right now (ring full, wire mid-teardown) — the
    /// caller falls back to sendmsg.
    virtual bool submit_send(std::uint64_t wire_id, const iovec* iov,
                             std::size_t iovcnt) = 0;
};

/// Hooks an epoll reactor (net/reactor.hpp) uses to drive a transport
/// without dedicating a blocking thread to it. Obtained via
/// Transport::reactor_hook(); transports that cannot be multiplexed (the
/// in-process loopback has no pollable descriptor) return nullptr and
/// callers fall back to a blocking reader thread.
class ReactorHook {
public:
    virtual ~ReactorHook() = default;

    /// The pollable descriptor the reactor registers with epoll.
    virtual int descriptor() const noexcept = 0;

    /// Switch the transport into non-blocking reactor mode. The descriptor
    /// is set O_NONBLOCK; recv_frame() becomes invalid (the reactor owns
    /// the read direction and assembles frames itself); send_frame keeps
    /// its blocking-backpressure contract but, instead of blocking in
    /// sendmsg when the socket backs up, parks the unwritten output and
    /// invokes `request_writable` (from any thread) so the reactor arms
    /// EPOLLOUT and resumes the flush when the socket drains.
    virtual void enter_reactor_mode(std::function<void()> request_writable) = 0;

    /// Reactor-thread call on EPOLLOUT (or before deregistration):
    /// continue the coalescing drain without blocking. Returns true when
    /// EPOLLOUT interest can be dropped — nothing is parked, or another
    /// thread owns the drain and will re-invoke request_writable on its
    /// own EAGAIN.
    virtual bool flush_pending_writes() = 0;

    /// Upper bound on header + body the reactor's frame assembly accepts
    /// (mirrors the transport's own receive bound).
    virtual std::size_t max_frame_bytes() const noexcept = 0;

    /// Account a reactor-assembled frame in the transport's stats().
    virtual void note_frame_received() noexcept = 0;

    /// Reactor-thread hint bracketing one read pump: while corked,
    /// send_frame enqueues without flushing (unless the intake fills, to
    /// preserve the backpressure contract), so every reply a pump's frame
    /// callbacks produce leaves in one scatter-gather flush at uncork.
    /// Default no-op for transports without a coalescing writer.
    virtual void set_corked(bool) {}

    /// Pool the reactor draws inbound frame storage from when assembling
    /// this wire's frames. Default: the process-global pool; lane wires
    /// return their per-lane pool so bands never share a pool ring.
    virtual FrameBufferPool& frame_pool() noexcept {
        return FrameBufferPool::global();
    }

    /// Install (or, with nullptr, uninstall) a completion-based loop
    /// sender for this wire. Called by the uring backend right after the
    /// wire joins its loop and again during removal; the epoll backend
    /// never calls it. Default no-op for transports without a coalescing
    /// writer (they cannot stage a batch for async completion).
    virtual void set_loop_sender(ReactorLoopSender*, std::uint64_t) {}

    /// Completion callback for a submit_send batch, invoked on the loop
    /// thread: `result` is bytes written or -errno (-ECANCELED during
    /// wire teardown). The transport advances its staged iovecs, resubmits
    /// a remainder, and continues draining its queue. Default no-op.
    virtual void complete_send(long) noexcept {}
};

/// Mark the calling thread as a reactor event-loop thread (one-way; the
/// reactor calls it once at loop start). Transports consult the mark to
/// keep backpressure from deadlocking the loop: under the reactor the
/// only thing that frees a full coalescer intake is the EPOLLOUT that
/// this very thread delivers, so a send_frame issued from a frame or
/// closed callback must never wait for intake space. A marked-thread
/// sender instead resumes a parked batch inline when it can and
/// otherwise drops the frame, counted in stats().frames_dropped.
void mark_reactor_loop_thread() noexcept;

/// Blocking, frame-oriented, bidirectional byte channel.
class Transport {
public:
    virtual ~Transport() = default;

    /// Ship one complete frame; ownership of the buffer passes to the
    /// transport (it returns to its pool once written). Throws
    /// TransportError if the peer is gone.
    virtual void send_frame(FrameBuffer frame) = 0;

    /// Block for the next frame; empty optional when the channel closed.
    /// The returned buffer is pooled — dropping it recycles the storage.
    virtual std::optional<FrameBuffer> recv_frame() = 0;

    /// Close both directions; unblocks any pending recv. Queued unsent
    /// frames are dropped deterministically and counted in
    /// stats().frames_dropped.
    virtual void close() = 0;

    virtual std::string peer_description() const = 0;

    virtual TransportStats stats() const { return {}; }

    /// Non-null when this transport can hand its descriptor to an epoll
    /// reactor (see ReactorHook). Default: not multiplexable.
    virtual ReactorHook* reactor_hook() noexcept { return nullptr; }

    /// Phase 1 of a two-phase close: stop accepting new frames and flush
    /// what is already queued, WITHOUT sending FIN. Lane groups call this
    /// on every lane before close() on any, so the peer never sees one
    /// lane's FIN while another lane still holds undelivered frames.
    /// Default no-op; close() alone keeps its full contract.
    virtual void prepare_close() {}

    /// Pool this transport draws inbound frame storage from. Mirrors
    /// ReactorHook::frame_pool for callers holding only a Transport.
    virtual FrameBufferPool& frame_pool() noexcept {
        return FrameBufferPool::global();
    }

    /// Re-point the transport at another pool. Only valid before any
    /// traffic flows (a lane group injects per-lane pools right after
    /// accept, before the wire is registered anywhere). Default no-op for
    /// transports without pooled receive storage.
    virtual void set_frame_pool(FrameBufferPool*) noexcept {}

    /// Switch the write side between coalescing (batch via the writer
    /// thread) and direct (write in the sender's context) at runtime,
    /// without reconnecting. Live recomposition uses this when a route's
    /// TransmissionPolicy flips its coalesce bit. Queued frames are never
    /// dropped by the switch; in reactor mode the coalescing writer is
    /// structural and the call is a no-op. Default no-op for transports
    /// without a coalescing writer.
    virtual void set_coalescing(bool) {}

    /// Number of underlying wires. 1 for plain transports; a LaneGroup
    /// reports its band count so callers (RemoteBridge) can register each
    /// lane with the reactor individually.
    virtual std::size_t lane_count() const noexcept { return 1; }

    /// The i-th underlying wire (i < lane_count()). Plain transports
    /// return themselves.
    virtual Transport& lane(std::size_t) noexcept { return *this; }

    /// Compat shim: copy a vector-built frame through the frame pool.
    void send_frame(const std::vector<std::uint8_t>& frame) {
        FrameBuffer buf = frame_pool().acquire(frame.size());
        if (!frame.empty()) std::memcpy(buf.data(), frame.data(), frame.size());
        send_frame(std::move(buf));
    }
};

/// In-process bidirectional pipe: two endpoints connected by bounded
/// queues. `queue_capacity` bounds in-flight frames per direction.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(std::size_t queue_capacity = 64);

} // namespace compadres::net
