// Frame transports.
//
// Both ORBs exchange self-contained GIOP frames. The evaluation (paper
// §3.3) ran client and server "on a single machine connected via loopback
// network"; we provide an in-process loopback transport for the benches
// and a real TCP transport (with GIOP-aware framing) for distributed use.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace compadres::net {

class TransportError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Blocking, frame-oriented, bidirectional byte channel.
class Transport {
public:
    virtual ~Transport() = default;

    /// Ship one complete frame. Throws TransportError if the peer is gone.
    virtual void send_frame(const std::vector<std::uint8_t>& frame) = 0;

    /// Block for the next frame; empty optional when the channel closed.
    virtual std::optional<std::vector<std::uint8_t>> recv_frame() = 0;

    /// Close both directions; unblocks any pending recv.
    virtual void close() = 0;

    virtual std::string peer_description() const = 0;
};

/// In-process bidirectional pipe: two endpoints connected by bounded
/// queues. `queue_capacity` bounds in-flight frames per direction.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(std::size_t queue_capacity = 64);

} // namespace compadres::net
