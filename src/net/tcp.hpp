// TCP transport with GIOP-aware framing.
//
// A frame on the wire is a GIOP message: the receiver reads the fixed
// 12-byte header, extracts message_size, and reads exactly that many more
// bytes. TCP_NODELAY is set — request/reply traffic at message sizes of
// 32-1024 B would otherwise serialize behind Nagle.
#pragma once

#include "net/transport.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace compadres::net {

/// Connect to a listening acceptor. Throws TransportError on failure.
std::unique_ptr<Transport> tcp_connect(const std::string& host, std::uint16_t port);

/// Listening socket; accept() yields one Transport per connection.
class TcpAcceptor {
public:
    /// Binds and listens on 127.0.0.1:`port`; port 0 picks a free port
    /// (see bound_port()).
    explicit TcpAcceptor(std::uint16_t port);
    ~TcpAcceptor();

    TcpAcceptor(const TcpAcceptor&) = delete;
    TcpAcceptor& operator=(const TcpAcceptor&) = delete;

    std::uint16_t bound_port() const noexcept { return port_; }

    /// Block for the next connection; nullptr after close().
    std::unique_ptr<Transport> accept();

    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace compadres::net
