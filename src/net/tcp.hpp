// TCP transport with GIOP-aware framing and a coalescing send path.
//
// A frame on the wire is a GIOP message: the receiver reads the fixed
// 12-byte header, extracts message_size, and reads exactly that many more
// bytes (bounded by TcpOptions::max_frame_bytes so a corrupt or hostile
// header cannot drive an unbounded allocation). TCP_NODELAY is set —
// request/reply traffic at message sizes of 32-1024 B would otherwise
// serialize behind Nagle.
//
// Sending is policy-selectable (the same Block/Ring-style seam the
// delivery fabric uses for overflow):
//   * kDirect   — every send_frame issues its own sendmsg: lowest code in
//                 the way, one syscall per frame.
//   * kCoalesce — senders enqueue into a bounded intake ring; whichever
//                 thread finds no writer active drains the ring with
//                 scatter-gather sendmsg calls (up to max_batch_frames
//                 iovecs per flush, so one busy sender cannot starve the
//                 wire of latency). Under bursts the drain combines frames
//                 from every sender: syscalls per message drop below one.
// Uncontended, kCoalesce degenerates to the direct path (enqueue + inline
// flush of a single frame) — same latency, same syscall count.
//
// All writes use sendmsg(MSG_NOSIGNAL): a vanished peer surfaces as a
// TransportError on the sending thread, never as a SIGPIPE process kill.
//
// Reactor mode (net/reactor.hpp): the transport exposes a ReactorHook, so
// an epoll loop can own the read direction (recv_frame then throws) and
// resume EAGAIN-parked coalescing batches on EPOLLOUT. Entering reactor
// mode sets O_NONBLOCK and forces kCoalesce — the parked batch lives in
// the coalescer's staging area, which kDirect doesn't have.
#pragma once

#include "net/transport.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace compadres::net {

enum class WritePolicy : std::uint8_t {
    kDirect,   ///< one sendmsg per frame
    kCoalesce, ///< batched scatter-gather drain (default)
};

struct TcpOptions {
    WritePolicy policy = WritePolicy::kCoalesce;
    /// Upper bound on GIOP header + body accepted by recv_frame.
    std::size_t max_frame_bytes = 16 * 1024 * 1024;
    /// Frames per scatter-gather flush (latency bound under sustained load).
    std::size_t max_batch_frames = 16;
    /// Coalescer intake bound; a full intake blocks senders (backpressure),
    /// exactly like the blocking write it replaced.
    std::size_t intake_capacity = 64;
    /// SO_SNDBUF / SO_RCVBUF in bytes; 0 keeps the kernel's autotuned
    /// default. Real-time deployments clamp these so the latency a frame
    /// can accumulate inside kernel buffers is bounded, not whatever the
    /// autotuner grew to. (On an acceptor the receive bound is applied to
    /// the listening socket so accepted connections inherit it before the
    /// window is negotiated.)
    std::size_t send_buffer_bytes = 0;
    std::size_t recv_buffer_bytes = 0;
    /// Frame pool inbound storage is drawn from; nullptr uses the
    /// process-global pool. Lane groups hand each wire its own pool so
    /// bands never share a pool ring. Must outlive the transport.
    FrameBufferPool* pool = nullptr;
};

/// Connect to a listening acceptor. Throws TransportError on failure.
std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                       std::uint16_t port,
                                       const TcpOptions& options = {});

/// Listening socket; accept() yields one Transport per connection.
class TcpAcceptor {
public:
    /// Binds and listens on 127.0.0.1:`port`; port 0 picks a free port
    /// (see bound_port()). `options` applies to every accepted transport.
    explicit TcpAcceptor(std::uint16_t port, const TcpOptions& options = {});
    ~TcpAcceptor();

    TcpAcceptor(const TcpAcceptor&) = delete;
    TcpAcceptor& operator=(const TcpAcceptor&) = delete;

    std::uint16_t bound_port() const noexcept { return port_; }

    /// Block for the next connection; nullptr after close().
    std::unique_ptr<Transport> accept();

    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
    TcpOptions options_;
};

} // namespace compadres::net
