// Reactor: multiplex many wires onto a bounded event-loop pool.
//
// The thread-per-wire reader model (one blocking recv_frame loop per
// transport) costs a stack, a kernel thread, and scheduler churn per
// connection — heavy fan-in hits those walls long before the
// allocation-free wire path is the bottleneck. The reactor inverts it:
// a small pool of event-loop threads (default min(4, hw_concurrency),
// override with COMPADRES_REACTOR_THREADS or ReactorOptions::threads)
// owns every registered descriptor and drives both readiness directions.
//
// Each loop runs one of two interchangeable backends behind the
// LoopBackend seam (reactor.cpp):
//
//   * epoll (portable default) — edge-triggered reads that pump until
//     EAGAIN, assembling GIOP frames incrementally into pooled
//     FrameBuffers; the transport's coalescing writer parks its batch on
//     EAGAIN and the loop arms EPOLLOUT to resume it.
//   * io_uring (ReactorBackend::kUring, or default under a
//     COMPADRES_URING=ON build) — multishot recv completes straight into
//     pool-backed provided buffers (no read() syscalls), loop-thread
//     sends are gather-send SQEs completed in-ring (no sendmsg), and a
//     whole CQE batch of pumps plus their corked replies costs one
//     io_uring_enter — zero under the opt-in SQPOLL knob. Setup failure
//     (ENOSYS/EPERM under seccomp, absurd queue depth) falls back to
//     epoll per loop, counted in ReactorStats::uring_fallbacks.
//
// Frame delivery, corking, command posting, and teardown semantics are
// identical across backends: on_frame on the loop thread, replies a pump
// produces coalesce into one flush at uncork, cross-thread operations
// post commands through an eventfd (bridged into the uring backend as a
// re-posted in-ring read chain), and deregistration flushes-or-drops
// deterministically. Wires are assigned round-robin or pinned by
// priority band (band % thread_count).
#pragma once

#include "net/transport.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace compadres::net {

/// Which event backend a reactor loop runs. kDefault resolves the
/// COMPADRES_REACTOR_BACKEND env var ("epoll"/"uring") if set, else the
/// compile-time default (epoll, unless built with -DCOMPADRES_URING=ON).
enum class ReactorBackend : std::uint8_t { kDefault = 0, kEpoll, kUring };

struct ReactorOptions {
    /// Event-loop threads. 0 = COMPADRES_REACTOR_THREADS env var if set,
    /// else min(4, hardware_concurrency).
    std::size_t threads = 0;
    /// Run loop threads under SCHED_BATCH (best-effort, unprivileged).
    /// A loop that wakeup-preempts the producers feeding it sees one
    /// frame per wakeup and can never coalesce; the batch hint lets a
    /// bursting sender finish before the loop runs, so one pump sees
    /// the whole burst and replies fold into one flush. Turn off when
    /// loop threads are given an explicit RT scheduling class instead.
    bool sched_batch_hint = true;
    /// Loop backend selection (see ReactorBackend). kUring still probes
    /// at runtime and falls back to epoll when the kernel denies io_uring.
    ReactorBackend backend = ReactorBackend::kDefault;
    /// io_uring submission-queue polling (IORING_SETUP_SQPOLL): a kernel
    /// thread drains the SQ so a busy loop publishes SQEs without any
    /// syscall. Opt-in — the poller burns a core while traffic is idle.
    bool sqpoll = false;
    /// io_uring SQ/CQ depth per loop (0 = 256). Values the kernel rejects
    /// (beyond IORING_MAX_ENTRIES, 32768) count as a setup failure and the
    /// loop falls back to epoll (the forced-failure test seam).
    unsigned uring_entries = 0;
    /// Provided receive buffers per loop (rounded up to a power of two;
    /// 0 = 64), each a 4 KiB chunk acquired from the loop's frame pool
    /// size classes. Exhaustion is safe — multishot recv re-arms after
    /// the loop recycles chunks, counted in recv_enobufs — but costs a
    /// rearm round trip, so size generously for many-wire loops.
    unsigned uring_buffers = 0;
};

/// Aggregated across all loops; monotonic over the reactor's lifetime.
struct ReactorStats {
    std::uint64_t frames_assembled = 0;   ///< complete frames handed out
    std::uint64_t writable_events = 0;    ///< write-ready deliveries handled
    std::uint64_t spurious_writables = 0; ///< write-ready with nothing armed
    std::uint64_t command_wakeups = 0;    ///< command-ring doorbell wakeups
    std::uint64_t wires_registered = 0;
    std::uint64_t wires_closed = 0;       ///< EOF/error-driven closes
    /// Registrations the backend could not accept (unusable descriptor);
    /// each also fired the wire's on_closed and counts in wires_closed.
    std::uint64_t wire_add_failures = 0;
    /// Loop blocking waits that entered the kernel: epoll_wait calls on
    /// the epoll backend, io_uring_enter calls on the uring backend
    /// (SQPOLL publishes without entering, so these can be ~0 under
    /// load). The numerator of the loop-side syscalls_per_frame metric.
    std::uint64_t wait_syscalls = 0;
    /// read() calls issued by the epoll read pump. Zero on the uring
    /// backend — receives complete in-ring into provided buffers.
    std::uint64_t read_syscalls = 0;
    /// Gather-send SQEs submitted on behalf of transports (uring). Each
    /// replaces what the epoll path would have paid as a sendmsg.
    std::uint64_t send_sqes = 0;
    /// Multishot recv terminated because the provided-buffer ring was
    /// empty; the loop recycles and re-arms (a latency blip, not a loss).
    std::uint64_t recv_enobufs = 0;
    /// Loops that requested the uring backend but fell back to epoll
    /// because io_uring setup failed (ENOSYS/EPERM/EINVAL).
    std::uint64_t uring_fallbacks = 0;
    /// Loops currently running the uring backend.
    std::uint64_t uring_loops = 0;

    /// Loop-side syscalls per assembled frame (waits + pump reads over
    /// frames). The write side lives in TransportStats::send_syscalls.
    double loop_syscalls_per_frame() const noexcept {
        if (frames_assembled == 0) return 0.0;
        return static_cast<double>(wait_syscalls + read_syscalls) /
               static_cast<double>(frames_assembled);
    }
};

class Reactor {
public:
    explicit Reactor(ReactorOptions options = {});
    ~Reactor(); ///< stop()s; pending wires are deregistered (flush/drop)

    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// Complete inbound frame, delivered on the owning loop thread. The
    /// handler must not block indefinitely: it stalls every wire on the
    /// same loop (that is the reactor bargain). send_frame from a handler
    /// is safe even under hard backpressure — a loop-thread sender never
    /// waits for intake space (it would be waiting on its own write-ready
    /// event); it resumes a parked batch inline when possible and
    /// otherwise drops the frame, counted in the transport's
    /// stats().frames_dropped.
    using FrameHandler = std::function<void(FrameBuffer)>;
    /// The wire hit EOF or a wire error and was removed from the loop.
    /// Runs once, on the loop thread, after backend deregistration.
    using ClosedHandler = std::function<void()>;

    /// Hand a transport's descriptor to the pool. The transport must
    /// expose a ReactorHook (Transport::reactor_hook() != nullptr) and is
    /// switched to non-blocking reactor mode here; recv_frame() on it
    /// becomes invalid. `band` < 0 assigns round-robin; `band` >= 0 pins
    /// to loop (band % thread_count) so callers can keep priority classes
    /// on separate threads. Returns a wire id for deregister/poke.
    std::uint64_t register_wire(Transport& transport, FrameHandler on_frame,
                                ClosedHandler on_closed = {}, int band = -1);

    /// Flush-then-remove (see shutdown ordering above). Blocks until the
    /// owning loop finished the removal; inline when called from that
    /// loop. Unknown/already-removed ids are a no-op.
    void deregister_wire(std::uint64_t wire_id);

    /// Stop every loop and join the threads. Registered wires are
    /// deregistered (flush/drop) first. Idempotent.
    void stop();

    std::size_t thread_count() const noexcept;

    ReactorStats stats() const;

    /// Backend actually running: "epoll", "uring", or "mixed" (some
    /// loops fell back). Stable for the reactor's lifetime.
    const char* backend_name() const noexcept;

    /// Test seam: deliver a write-ready event for a wire that parked
    /// nothing, producing the spurious wakeup the rearm path must
    /// tolerate (EPOLLOUT arm on epoll, POLL_ADD on uring).
    void poke_writable(std::uint64_t wire_id);

    /// Process-wide reactor for components that multiplex by default
    /// (RemoteBridge's kReactor reader model). Constructed on first use,
    /// intentionally never destroyed: wires are torn down by their owners,
    /// and leaking the loops sidesteps static-destruction-order races.
    static Reactor& shared();

    /// One event loop (implementation detail, defined in reactor.cpp).
    /// Public only so the LoopBackend implementations — internal-linkage
    /// classes in reactor.cpp — can name it in their signatures.
    class Loop;

private:
    std::vector<std::unique_ptr<Loop>> loops_;
    struct State;
    std::unique_ptr<State> state_;
};

} // namespace compadres::net
