// Epoll reactor: multiplex many wires onto a bounded event-loop pool.
//
// The thread-per-wire reader model (one blocking recv_frame loop per
// transport) costs a stack, a kernel thread, and scheduler churn per
// connection — heavy fan-in hits those walls long before the
// allocation-free wire path is the bottleneck. The reactor inverts it:
// a small pool of event-loop threads (default min(4, hw_concurrency),
// override with COMPADRES_REACTOR_THREADS or ReactorOptions::threads)
// owns every registered descriptor through epoll(7) and drives both
// readiness directions:
//
//   * reads   — edge-triggered (EPOLLET): on EPOLLIN the loop reads until
//               EAGAIN, assembling GIOP frames incrementally (12-byte
//               header, then exactly message_size more bytes) into a
//               resident pooled FrameBuffer, and hands each completed
//               frame to the wire's on_frame callback on the loop thread.
//   * writes  — the transport's coalescing writer parks its batch on
//               EAGAIN and calls the request-writable waker; the loop
//               arms EPOLLOUT (EPOLL_CTL_MOD re-edges, so a socket that
//               is already writable fires immediately — no lost wakeup)
//               and resumes the flush via ReactorHook::flush_pending_writes.
//
// Cross-thread operations (register, deregister, arm-write, stop) post
// commands through an eventfd so the owning loop applies every epoll
// mutation itself; no epoll_ctl races with epoll_wait consumers.
//
// Wires are assigned to loops round-robin, or pinned by priority band
// (band % thread_count) so an urgent route never shares a loop thread
// with bulk traffic when the caller separates them.
//
// Shutdown ordering is deterministic: deregistration first flushes the
// transport's coalescing intake on the loop thread (drop-and-count if the
// peer stopped draining), then removes the descriptor from epoll, then
// releases any partially-assembled inbound frame back to the pool.
// stop() and deregister_wire() are idempotent; deregister_wire is safe
// from the loop's own callbacks (executed inline) or any other thread
// (blocking handshake). stop() joins the loop threads, so call it from
// outside the loops.
#pragma once

#include "net/transport.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace compadres::net {

struct ReactorOptions {
    /// Event-loop threads. 0 = COMPADRES_REACTOR_THREADS env var if set,
    /// else min(4, hardware_concurrency).
    std::size_t threads = 0;
    /// Run loop threads under SCHED_BATCH (best-effort, unprivileged).
    /// A loop that wakeup-preempts the producers feeding it sees one
    /// frame per epoll edge and can never coalesce; the batch hint lets
    /// a bursting sender finish before the loop runs, so one pump sees
    /// the whole burst and replies fold into one sendmsg. Turn off when
    /// loop threads are given an explicit RT scheduling class instead.
    bool sched_batch_hint = true;
};

/// Aggregated across all loops; monotonic over the reactor's lifetime.
struct ReactorStats {
    std::uint64_t frames_assembled = 0;   ///< complete frames handed out
    std::uint64_t writable_events = 0;    ///< EPOLLOUT deliveries handled
    std::uint64_t spurious_writables = 0; ///< EPOLLOUT with nothing armed
    std::uint64_t wakeups = 0;            ///< eventfd command wakeups
    std::uint64_t wires_registered = 0;
    std::uint64_t wires_closed = 0;       ///< EOF/error-driven closes
    /// Registrations whose EPOLL_CTL_ADD failed (unusable descriptor);
    /// each also fired the wire's on_closed and counts in wires_closed.
    std::uint64_t register_failures = 0;
};

class Reactor {
public:
    explicit Reactor(ReactorOptions options = {});
    ~Reactor(); ///< stop()s; pending wires are deregistered (flush/drop)

    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// Complete inbound frame, delivered on the owning loop thread. The
    /// handler must not block indefinitely: it stalls every wire on the
    /// same loop (that is the reactor bargain). send_frame from a handler
    /// is safe even under hard backpressure — a loop-thread sender never
    /// waits for intake space (it would be waiting on its own EPOLLOUT);
    /// it resumes a parked batch inline when possible and otherwise drops
    /// the frame, counted in the transport's stats().frames_dropped.
    using FrameHandler = std::function<void(FrameBuffer)>;
    /// The wire hit EOF or a wire error and was removed from the loop.
    /// Runs once, on the loop thread, after epoll deregistration.
    using ClosedHandler = std::function<void()>;

    /// Hand a transport's descriptor to the pool. The transport must
    /// expose a ReactorHook (Transport::reactor_hook() != nullptr) and is
    /// switched to non-blocking reactor mode here; recv_frame() on it
    /// becomes invalid. `band` < 0 assigns round-robin; `band` >= 0 pins
    /// to loop (band % thread_count) so callers can keep priority classes
    /// on separate threads. Returns a wire id for deregister/poke.
    std::uint64_t register_wire(Transport& transport, FrameHandler on_frame,
                                ClosedHandler on_closed = {}, int band = -1);

    /// Flush-then-remove (see shutdown ordering above). Blocks until the
    /// owning loop finished the removal; inline when called from that
    /// loop. Unknown/already-removed ids are a no-op.
    void deregister_wire(std::uint64_t wire_id);

    /// Stop every loop and join the threads. Registered wires are
    /// deregistered (flush/drop) first. Idempotent.
    void stop();

    std::size_t thread_count() const noexcept;

    ReactorStats stats() const;

    /// Test seam: arm EPOLLOUT for a wire that parked nothing, producing
    /// the spurious-writable delivery the rearm path must tolerate.
    void poke_writable(std::uint64_t wire_id);

    /// Process-wide reactor for components that multiplex by default
    /// (RemoteBridge's kReactor reader model). Constructed on first use,
    /// intentionally never destroyed: wires are torn down by their owners,
    /// and leaking the loops sidesteps static-destruction-order races.
    static Reactor& shared();

private:
    class Loop;
    std::vector<std::unique_ptr<Loop>> loops_;
    struct State;
    std::unique_ptr<State> state_;
};

} // namespace compadres::net
