// Minimal io_uring shim — raw syscalls, no liburing.
//
// The reactor's UringBackend (net/reactor.cpp) needs exactly four things
// from io_uring: a submission queue it can batch SQEs into, a completion
// queue it can drain without syscalls, a provided-buffer ring so multishot
// recv completes straight into pool-backed staging chunks, and SQPOLL as
// an opt-in so a busy loop submits without entering the kernel at all.
// liburing is not a dependency of this repo, so this header carries a
// small self-contained wrapper over io_uring_setup(2)/io_uring_enter(2)/
// io_uring_register(2) and the mmap'd ring layout from
// <linux/io_uring.h>. Single-threaded by design: one Uring per reactor
// loop, touched only from that loop's thread (the SQ/CQ shadow indices
// are plain members, not atomics — the kernel-shared head/tail words get
// acquire/release accesses, nothing else is shared).
//
// Kernel-compat notes: IORING_SETUP_CLAMP keeps oversized queue-depth
// requests from failing setup; the provided-buffer ring
// (IORING_REGISTER_PBUF_RING) needs >= 5.19 and multishot recv >= 6.0 —
// on older kernels or seccomp'd containers where io_uring_setup itself
// returns ENOSYS/EPERM, setup throws and the reactor falls back to epoll
// (counted in ReactorStats::uring_fallbacks).
#pragma once

#include <linux/io_uring.h>

#include <cstddef>
#include <cstdint>

namespace compadres::net {

/// One-time (cached) probe: can this process set up an io_uring at all?
/// False under seccomp filters that deny the syscall (EPERM), kernels
/// without it (ENOSYS), or resource exhaustion at probe time.
bool uring_available() noexcept;

class Uring {
public:
    struct Options {
        /// SQ/CQ depth request (kernel-clamped, power-of-two rounded).
        unsigned entries = 256;
        /// IORING_SETUP_SQPOLL: a kernel thread drains the SQ, so
        /// publishing an SQE needs no syscall while the poller is awake.
        bool sqpoll = false;
        /// SQPOLL idle before the kernel thread naps (then one
        /// IORING_ENTER_SQ_WAKEUP enter re-arms it).
        unsigned sqpoll_idle_ms = 20;
    };

    /// Throws TransportError when the ring cannot be set up (ENOSYS,
    /// EPERM, EINVAL from an absurd depth, mmap failure). A throwing
    /// constructor leaks nothing.
    explicit Uring(const Options& opts);
    ~Uring();

    Uring(const Uring&) = delete;
    Uring& operator=(const Uring&) = delete;

    int ring_fd() const noexcept { return ring_fd_; }
    bool sqpoll() const noexcept { return sqpoll_; }
    unsigned sq_entries() const noexcept { return sq_entry_count_; }

    /// Next free SQE, zero-initialized with user_data/fd/addr ready to
    /// fill. nullptr when the SQ is full — submit() first, then retry.
    io_uring_sqe* get_sqe() noexcept;

    /// Publish prepared SQEs and optionally wait for completions.
    /// Returns the number of SQEs the kernel consumed (>= 0) or -errno.
    /// `*entered` reports whether an io_uring_enter syscall was actually
    /// made — under SQPOLL a publish is often free, and a wait can be
    /// satisfied from an already-populated CQ without entering.
    int submit_and_wait(unsigned wait_nr, bool* entered) noexcept;
    int submit(bool* entered) noexcept { return submit_and_wait(0, entered); }

    /// Copy out the oldest unseen CQE and advance the CQ head. False when
    /// the CQ is empty. Copying (16 bytes) lets callers process a
    /// completion while freely posting/draining more ring traffic —
    /// nothing dangles into ring storage mid-dispatch.
    bool pop_cqe(io_uring_cqe* out) noexcept;
    unsigned cq_ready() const noexcept;

    // -- Provided-buffer ring (one group per Uring, bgid 0) -------------
    //
    // Buffers themselves are caller-owned memory (the reactor hands in
    // FrameBufferPool-acquired chunks); this class owns only the ring of
    // descriptors the kernel picks from.

    /// Register a descriptor ring of `entries` (power-of-two) slots.
    /// False when the kernel lacks IORING_REGISTER_PBUF_RING.
    bool register_buf_ring(unsigned entries) noexcept;

    /// Hand one buffer (back) to the kernel. Must be followed by
    /// buf_ring_commit() before the kernel may see it.
    void buf_ring_push(void* addr, unsigned len, std::uint16_t bid) noexcept;

    /// Publish every pushed buffer (single release store of the tail).
    void buf_ring_commit() noexcept;

    /// Buffer-group id for IOSQE_BUFFER_SELECT SQEs.
    std::uint16_t buf_group() const noexcept { return 0; }

private:
    int enter(unsigned to_submit, unsigned min_complete,
              unsigned flags) noexcept;

    int ring_fd_ = -1;
    bool sqpoll_ = false;

    // SQ mapping.
    void* sq_map_ = nullptr;
    std::size_t sq_map_len_ = 0;
    io_uring_sqe* sqes_ = nullptr;
    std::size_t sqes_len_ = 0;
    unsigned* sq_khead_ = nullptr;
    unsigned* sq_ktail_ = nullptr;
    unsigned* sq_kflags_ = nullptr;
    unsigned sq_mask_ = 0;
    unsigned sq_entry_count_ = 0;
    unsigned sqe_tail_ = 0; ///< local shadow: SQEs handed out, maybe unseen
    unsigned sqe_head_ = 0; ///< local shadow: SQEs already published

    // CQ mapping (may alias sq_map_ under IORING_FEAT_SINGLE_MMAP).
    void* cq_map_ = nullptr;
    std::size_t cq_map_len_ = 0;
    unsigned* cq_khead_ = nullptr;
    unsigned* cq_ktail_ = nullptr;
    io_uring_cqe* cqes_ = nullptr;
    unsigned cq_mask_ = 0;

    // Provided-buffer descriptor ring.
    io_uring_buf_ring* buf_ring_ = nullptr;
    std::size_t buf_ring_len_ = 0;
    unsigned buf_ring_mask_ = 0;
    unsigned short buf_ring_tail_ = 0; ///< local shadow of the ring tail
};

} // namespace compadres::net
