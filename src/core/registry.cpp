#include "core/registry.hpp"

#include "core/messages.hpp"

namespace compadres::core {

ComponentRegistry& ComponentRegistry::global() {
    static ComponentRegistry instance;
    return instance;
}

void ComponentRegistry::register_factory(const std::string& class_name,
                                         Factory factory) {
    factories_[class_name] = std::move(factory);
}

bool ComponentRegistry::has(const std::string& class_name) const {
    return factories_.count(class_name) != 0;
}

Component* ComponentRegistry::create(const std::string& class_name,
                                     const ComponentContext& ctx) const {
    auto it = factories_.find(class_name);
    if (it == factories_.end()) {
        throw RegistryError("component class '" + class_name +
                            "' is not registered");
    }
    return it->second(ctx);
}

MessageTypeRegistry& MessageTypeRegistry::global() {
    static MessageTypeRegistry instance;
    return instance;
}

void MessageTypeRegistry::add(const MessageTypeInfo& info) {
    auto it = by_name_.find(info.name);
    if (it != by_name_.end()) {
        if (it->second.type != info.type) {
            throw RegistryError("message type name '" + info.name +
                                "' already registered for a different C++ type");
        }
        return; // idempotent re-registration
    }
    by_name_.emplace(info.name, info);
}

bool MessageTypeRegistry::has(const std::string& name) const {
    return by_name_.count(name) != 0;
}

const MessageTypeInfo& MessageTypeRegistry::find(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
        throw RegistryError("message type '" + name + "' is not registered");
    }
    return it->second;
}

const MessageTypeInfo* MessageTypeRegistry::find_by_type(
    std::type_index type) const noexcept {
    for (const auto& [name, info] : by_name_) {
        if (info.type == type) return &info;
    }
    return nullptr;
}

void register_builtin_message_types() {
    auto& reg = MessageTypeRegistry::global();
    reg.register_type<MyInteger>("MyInteger");
    reg.register_type<TextMessage>("String");
    reg.register_type<OctetSeq>("OctetSeq");
    reg.register_type<SensorSample>("SensorSample");
}

} // namespace compadres::core
