#include "core/recompose.hpp"

#include "core/component.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "rt/clock.hpp"

#include <sstream>

namespace compadres::core {

std::string describe(const RecomposePlan& plan) {
    std::ostringstream out;
    out << "recompose plan for '" << plan.application << "' ("
        << plan.operation_count() << " operations)\n";
    for (const RecomposeComponentSpec& s : plan.spawns) {
        out << "  + spawn " << s.instance << " : " << s.class_name << " ["
            << (s.type == ComponentType::kImmortal
                    ? std::string("immortal")
                    : "L" + std::to_string(s.level))
            << (s.parent.empty() ? "" : ", under " + s.parent) << "]\n";
    }
    for (const RecomposeRoute& r : plan.route_adds) {
        out << "  + route " << r.from_instance << "." << r.from_port << " -> "
            << r.to_instance << "." << r.to_port << "\n";
    }
    for (const RecomposeRepolicy& r : plan.repolicies) {
        if (r.remote) {
            out << "  ~ repolicy remote " << r.remote_name << " route '"
                << r.route << "'";
        } else {
            out << "  ~ repolicy " << r.instance << "." << r.port;
        }
        out << ": [" << to_string(r.from) << "] -> [" << to_string(r.to)
            << "]\n";
    }
    for (const RecomposeRoute& r : plan.route_removes) {
        out << "  - route " << r.from_instance << "." << r.from_port << " -> "
            << r.to_instance << "." << r.to_port << "\n";
    }
    for (const std::string& name : plan.retires) {
        out << "  - retire " << name << "\n";
    }
    if (plan.empty()) out << "  (no changes)\n";
    return out.str();
}

std::uint64_t quiesced_swap(InPortBase& in,
                            const std::function<void()>& swap) {
    rt::CreditGate& gate = in.credits();
    const std::int64_t t0 = rt::now_ns();
    gate.close_window();
    gate.wait_drained();
    try {
        swap();
    } catch (...) {
        gate.open_window();
        throw;
    }
    gate.open_window();
    return static_cast<std::uint64_t>(rt::now_ns() - t0);
}

namespace {

obs::Counter* counter(const RecomposeOptions& opts, const char* name,
                      const char* help) {
    return opts.metrics == nullptr ? nullptr : &opts.metrics->counter(name, help);
}

void bump(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr && n != 0) c->add(n);
}

} // namespace

RecomposeStats apply_recompose(Application& app, const RecomposePlan& plan,
                               const RecomposeOptions& options) {
    // Hold the recompose mutex for the whole plan: stop() serializes here,
    // so teardown never interleaves with a half-applied topology.
    std::lock_guard recompose(app.recompose_mutex());
    obs::FlightRecorder::emit(obs::EventType::kRecomposeBegin,
                              plan.operation_count(), 0);
    bump(counter(options, "recompose_begun_total",
                 "recompose plans started"));
    RecomposeStats stats;
    std::size_t applied = 0;
    obs::Histogram* pause_hist =
        options.metrics == nullptr
            ? nullptr
            : &options.metrics->histogram(
                  "recompose_pause_ns",
                  "per-route quiesce->resume pause (ns)");
    try {
        if (app.stopped()) {
            throw RecomposeError("application '" + app.name() +
                                 "' is stopped; nothing to recompose");
        }
        if (!plan.application.empty() && plan.application != app.name()) {
            throw RecomposeError("plan targets application '" +
                                 plan.application + "', not '" + app.name() +
                                 "'");
        }
        for (const RecomposeComponentSpec& s : plan.spawns) {
            Component* parent =
                s.parent.empty() ? nullptr : &app.component(s.parent);
            Component& comp =
                app.create_by_name(s.class_name, s.instance, parent, s.type,
                                   s.level, s.port_configs);
            if (app.started()) comp._start();
            ++stats.components_spawned;
            ++applied;
        }
        for (const RecomposeRoute& r : plan.route_adds) {
            OutPortBase& out =
                app.component(r.from_instance).out_port(r.from_port);
            InPortBase& in = app.component(r.to_instance).in_port(r.to_port);
            app.connect(out, in, r.pool_capacity);
            ++stats.routes_added;
            ++applied;
        }
        std::uint32_t route_index = 0;
        for (const RecomposeRepolicy& r : plan.repolicies) {
            std::uint64_t pause = 0;
            if (r.remote) {
                if (!options.remote_applier) {
                    throw RecomposeError(
                        "plan repolicies remote route '" + r.route +
                        "' but no remote applier is wired "
                        "(RecomposeOptions::remote_applier)");
                }
                pause = options.remote_applier(r);
            } else {
                InPortBase& in =
                    app.component(r.instance).in_port(r.port);
                pause = quiesced_swap(in, [&] { in.set_policy(r.to); });
            }
            obs::FlightRecorder::emit(obs::EventType::kRecomposeApply, pause,
                                      route_index++);
            if (pause_hist != nullptr) {
                pause_hist->observe(static_cast<std::int64_t>(pause));
            }
            stats.pause_ns.push_back(pause);
            ++stats.routes_repoliced;
            ++applied;
        }
        for (const RecomposeRoute& r : plan.route_removes) {
            OutPortBase& out =
                app.component(r.from_instance).out_port(r.from_port);
            InPortBase& in = app.component(r.to_instance).in_port(r.to_port);
            app.disconnect(out, in);
            ++stats.routes_removed;
            ++applied;
        }
        for (const std::string& name : plan.retires) {
            app.retire(name);
            ++stats.components_retired;
            ++applied;
        }
    } catch (const std::exception& e) {
        obs::FlightRecorder::emit(obs::EventType::kRecomposeAbort, applied, 0);
        bump(counter(options, "recompose_aborted_total",
                     "recompose plans aborted"));
        throw RecomposeError(e.what());
    }
    bump(counter(options, "recompose_applied_total",
                 "recompose plans fully applied"));
    bump(counter(options, "recompose_components_spawned_total",
                 "components spawned by recompose"),
         stats.components_spawned);
    bump(counter(options, "recompose_components_retired_total",
                 "components retired by recompose"),
         stats.components_retired);
    bump(counter(options, "recompose_routes_added_total",
                 "routes added by recompose"),
         stats.routes_added);
    bump(counter(options, "recompose_routes_removed_total",
                 "routes removed by recompose"),
         stats.routes_removed);
    bump(counter(options, "recompose_routes_repoliced_total",
                 "routes whose TransmissionPolicy was swapped live"),
         stats.routes_repoliced);
    return stats;
}

} // namespace compadres::core
