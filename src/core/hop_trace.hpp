// HopTraceRecorder — the built-in TraceSink that turns per-hop timestamps
// into per-port latency series, plus the TraceReport structure that
// Application::trace_report() returns.
//
// The recorder keys its series by port pointer (no per-hop string
// allocation); the qualified name is resolved once on the port's first hop.
// on_hop runs concurrently on dispatcher workers, so the lookup must not
// serialize them: series live in a fixed open-addressed table of
// publish-once atomic slots (the remote/route_cache.hpp idiom — CAS from
// null under a cold insert mutex, acquire loads on the hot path), and only
// the matched port's own series takes a mutex to append its samples. Two
// workers draining different ports never contend; the global map lock the
// first version of this recorder took per hop is gone.
//
// clear() frees the published series and therefore must not run
// concurrently with traffic — same contract as installing/removing the
// sink itself (core/hooks.hpp).
#pragma once

#include "core/hooks.hpp"
#include "rt/stats.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace compadres::core {

/// Per-port latency series split the way the Fig. 9 analysis needs them:
/// how long envelopes sat in the intake queue vs how long handlers ran.
class HopTraceRecorder final : public hooks::TraceSink {
public:
    HopTraceRecorder();
    ~HopTraceRecorder() override;

    void on_hop(const InPortBase& port,
                const hooks::HopTimes& times) noexcept override;

    /// Qualified names of every port that completed at least one hop.
    std::vector<std::string> ports() const;

    /// Order statistics per port (zero summaries for unknown ports).
    rt::StatsSummary queue_wait_summary(const std::string& port) const;
    rt::StatsSummary handler_summary(const std::string& port) const;
    rt::StatsSummary total_summary(const std::string& port) const;

    /// Samples dropped because the slot table was full (more than
    /// kSlotCount distinct ports hopped through one recorder).
    std::uint64_t dropped_samples() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }

    /// Drop all series. NOT safe against concurrent on_hop — quiesce
    /// traffic (or clear the hooks sink) first.
    void clear();

private:
    /// Hot-path table capacity; a power of two. 512 distinct In ports per
    /// recorder covers every assembly in the repository many times over.
    static constexpr std::size_t kSlotCount = 512;

    struct PortSeries {
        const InPortBase* key = nullptr;
        std::string name;
        mutable std::mutex mu;        ///< guards the three recorders only
        rt::StatsRecorder queue_wait; ///< dequeue - enqueue
        rt::StatsRecorder handler;    ///< process_end - process_start
        rt::StatsRecorder total;      ///< process_end - enqueue
    };

    /// Lock-free lookup; falls back to the insert mutex only for a port's
    /// first hop. Returns nullptr when the table is full.
    PortSeries* series_for(const InPortBase& port);

    const PortSeries* find(const std::string& port) const;

    /// Open-addressed publish-once slots: null until a series is published
    /// with a release CAS; never modified again until clear().
    std::vector<std::atomic<PortSeries*>> slots_;
    mutable std::mutex insert_mu_; ///< series allocation + name resolution
    std::vector<std::unique_ptr<PortSeries>> storage_; ///< under insert_mu_
    std::atomic<std::uint64_t> dropped_{0};
};

/// One In port's row in a trace report. Counters are always live (they are
/// plain atomics on the delivery path); the latency summaries are filled
/// only when a HopTraceRecorder was installed (`traced` is true then).
struct PortTrace {
    std::string port;
    std::string dispatcher;
    std::uint64_t delivered = 0;
    std::uint64_t processed = 0;
    std::uint64_t errors = 0;
    std::uint64_t overwritten = 0; ///< ring-overwrite evictions
    std::uint64_t dropped = 0;     ///< ring-overwrite drops (nothing to evict)
    std::uint64_t credit_stalls = 0;
    std::size_t buffer_limit = 0;
    std::size_t depth_high_water = 0;
    bool traced = false;
    rt::StatsSummary queue_wait;
    rt::StatsSummary handler;
    rt::StatsSummary total;
};

/// Named counters contributed by a subsystem outside the delivery fabric
/// (a remote bridge's wire, the frame pool, an I/O reactor). The core
/// cannot link against those layers, so they register a generic callback
/// via Application::add_counter_source and show up here by name.
struct CounterGroup {
    std::string source; ///< e.g. "bridge:uplink", "frame-pool"
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct TraceReport {
    std::vector<PortTrace> ports;
    /// Summed over all dispatchers: intake-queue lock acquisitions.
    std::uint64_t queue_lock_acquisitions = 0;
    /// Summed over all ports: credit acquires that had to wait.
    std::uint64_t credit_stalls = 0;
    /// Snapshots from registered counter sources, in registration order.
    std::vector<CounterGroup> counters;

    std::string to_string() const;
};

} // namespace compadres::core
