#include "core/component.hpp"

#include "core/application.hpp"

#include <algorithm>

namespace compadres::core {

Component::Component(const ComponentContext& ctx)
    : app_(ctx.app), region_(ctx.region), parent_(ctx.parent),
      instance_name_(ctx.instance_name), port_configs_(ctx.port_configs) {
    if (region_ == nullptr) {
        throw AssemblyError("component '" + instance_name_ +
                            "' constructed without a memory region");
    }
    if (parent_ != nullptr) {
        parent_->add_child(*this);
    }
}

Component::~Component() {
    shutdown_dispatch();
    if (parent_ != nullptr) {
        parent_->remove_child(*this);
    }
}

void Component::remove_child(Component& child) {
    children_.erase(std::remove(children_.begin(), children_.end(), &child),
                    children_.end());
}

Smm& Component::smm() {
    if (smm_ == nullptr) {
        smm_ = region_->make<Smm>(*this);
    }
    return *smm_;
}

int Component::level() const noexcept {
    return region_->kind() == memory::RegionKind::kScoped ? region_->depth() : 0;
}

InPortConfig Component::port_config(const std::string& port_name,
                                    InPortConfig fallback) const {
    auto it = port_configs_.find(port_name);
    return it != port_configs_.end() ? it->second : fallback;
}

void Component::adopt_in_port(InPortBase& port) {
    if (find_in_port(port.name()) != nullptr || find_out_port(port.name()) != nullptr) {
        throw PortError("duplicate port name '" + port.name() +
                        "' on component '" + instance_name_ + "'");
    }
    in_ports_.push_back(&port);
    const InPortConfig& cfg = port.config();
    if (cfg.strategy == ThreadpoolStrategy::kDedicated && cfg.max_threads > 0) {
        // The port owns a thread pool: queue sized by <BufferSize>, threads
        // by <Min/MaxThreadpoolSize>. Lives in this component's region so it
        // dies (joining its workers) when the component does.
        auto* d = region_->make<Dispatcher>(
            port.qualified_name(),
            DispatcherConfig{cfg.buffer_size, cfg.min_threads, cfg.max_threads,
                             rt::Priority{}});
        port.bind_dispatcher(*d);
        dedicated_.push_back(d);
    }
    // max_threads == 0 (synchronous) or Shared: binding happens at wiring.
}

void Component::adopt_out_port(OutPortBase& port) {
    if (find_in_port(port.name()) != nullptr || find_out_port(port.name()) != nullptr) {
        throw PortError("duplicate port name '" + port.name() +
                        "' on component '" + instance_name_ + "'");
    }
    out_ports_.push_back(&port);
}

InPortBase& Component::add_in_port_erased(const std::string& port_name,
                                          std::type_index type,
                                          const std::string& type_name,
                                          InPortConfig config,
                                          MessageHandlerBase& handler) {
    auto* port = region_->make<InPortBase>(port_name, *this, type, type_name,
                                           config, handler);
    adopt_in_port(*port);
    return *port;
}

OutPortBase& Component::add_out_port_erased(const std::string& port_name,
                                            std::type_index type,
                                            const std::string& type_name) {
    auto* port = region_->make<OutPortBase>(port_name, *this, type, type_name);
    adopt_out_port(*port);
    return *port;
}

InPortBase* Component::find_in_port(const std::string& port_name) const noexcept {
    for (InPortBase* p : in_ports_) {
        if (p->name() == port_name) return p;
    }
    return nullptr;
}

OutPortBase* Component::find_out_port(const std::string& port_name) const noexcept {
    for (OutPortBase* p : out_ports_) {
        if (p->name() == port_name) return p;
    }
    return nullptr;
}

InPortBase& Component::in_port(const std::string& port_name) const {
    InPortBase* p = find_in_port(port_name);
    if (p == nullptr) {
        throw PortError("component '" + instance_name_ + "' has no In port '" +
                        port_name + "'");
    }
    return *p;
}

OutPortBase& Component::out_port(const std::string& port_name) const {
    OutPortBase* p = find_out_port(port_name);
    if (p == nullptr) {
        throw PortError("component '" + instance_name_ + "' has no Out port '" +
                        port_name + "'");
    }
    return *p;
}

void Component::shutdown_dispatch() {
    for (Dispatcher* d : dedicated_) {
        d->shutdown();
    }
    if (smm_ != nullptr) {
        smm_->shutdown();
    }
}

} // namespace compadres::core
