// HopTrace instrumentation layer — the framework's hot-path observability.
//
// A single process-global TraceSink observes three kinds of events:
//   * on_alloc    — a message object was charged as an allocation (drives
//                   the simulated collector of the Table 2 / Fig. 9 rigs);
//   * on_dispatch — a message hop was initiated by send() (where a non-RT
//                   OS may preempt us);
//   * on_hop      — one complete hop finished: enqueue, dequeue,
//                   process-start and process-end timestamps, so a sink can
//                   split hop latency into queue wait vs handler time.
//
// The sink is stored in one atomic pointer; with no sink installed every
// notify_* is a single predictable relaxed load and a not-taken branch, so
// an untraced build pays effectively nothing. Install core::HopTraceRecorder
// (core/hop_trace.hpp) to collect per-port latency quantiles that
// Application::trace_report() folds into its report.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace compadres::core {
class InPortBase;
} // namespace compadres::core

namespace compadres::core::hooks {

/// Timestamps of one completed hop, in rt::now_ns() nanoseconds.
/// For synchronous ports (no queue) all four collapse to the same instant
/// bracketing the inline handler run.
struct HopTimes {
    std::int64_t enqueue_ns = 0;       ///< credit acquired, envelope queued
    std::int64_t dequeue_ns = 0;       ///< a worker picked the envelope up
    std::int64_t process_start_ns = 0; ///< handler entered
    std::int64_t process_end_ns = 0;   ///< handler returned (or threw)
    int priority = 0;                  ///< message priority of the hop
};

/// Event observer. Default implementations do nothing, so a sink overrides
/// only what it needs. on_hop is called concurrently from dispatcher
/// workers; implementations must be thread-safe.
class TraceSink {
public:
    virtual ~TraceSink();
    virtual void on_alloc(std::size_t bytes) noexcept;
    virtual void on_dispatch() noexcept;
    virtual void on_hop(const InPortBase& port, const HopTimes& times) noexcept;
};

namespace detail {
inline std::atomic<TraceSink*> g_sink{nullptr};
inline std::atomic<bool> g_charge_all{false};
} // namespace detail

/// Install (or clear, with nullptr) the sink. Not thread-safe against
/// concurrent traffic; install before starting the application.
void set_sink(TraceSink* sink) noexcept;
void clear() noexcept;

/// The installed sink — one relaxed load, the only cost the hot path pays
/// when tracing is off.
inline TraceSink* sink() noexcept {
    return detail::g_sink.load(std::memory_order_relaxed);
}
inline bool tracing() noexcept { return sink() != nullptr; }

/// Invoked by MessagePool on every charged acquire.
inline void notify_alloc(std::size_t bytes) noexcept {
    if (TraceSink* s = sink()) s->on_alloc(bytes);
}

/// Invoked by Out ports on every message hop start.
inline void notify_dispatch() noexcept {
    if (TraceSink* s = sink()) s->on_dispatch();
}

/// Invoked by the dispatcher when a hop completes.
inline void notify_hop(const InPortBase& port, const HopTimes& times) noexcept {
    if (TraceSink* s = sink()) s->on_hop(port, times);
}

/// True if the installed profile wants pooled message reuse disabled
/// semantics (each acquire charged as a fresh allocation). The pool always
/// reuses storage; this flag only controls whether on_alloc fires.
void set_charge_all_acquires(bool charge) noexcept;
inline bool charge_all_acquires() noexcept {
    return detail::g_charge_all.load(std::memory_order_relaxed);
}

} // namespace compadres::core::hooks
