// Instrumentation hooks on the framework's hot path.
//
// The simulated-platform benches (Table 2 / Fig. 9) need to observe two
// events inside the middleware: "a message object was allocated" (to drive
// the simulated collector) and "a message hop was dispatched" (where a
// non-RT OS may preempt us). The hooks are process-global function
// pointers so the hot path pays a single predictable load when unset.
#pragma once

#include <cstddef>

namespace compadres::core::hooks {

using AllocHook = void (*)(void* ctx, std::size_t bytes);
using DispatchHook = void (*)(void* ctx);

/// Install (or clear, with nullptr) the hooks. Not thread-safe against
/// concurrent traffic; install before starting the application.
void set(AllocHook alloc, DispatchHook dispatch, void* ctx) noexcept;
void clear() noexcept;

/// Invoked by MessagePool on every acquire.
void notify_alloc(std::size_t bytes) noexcept;

/// Invoked by ports on every message hop.
void notify_dispatch() noexcept;

/// True if the installed profile wants pooled message reuse disabled
/// semantics (each acquire charged as a fresh allocation). The pool always
/// reuses storage; this flag only controls whether notify_alloc fires.
void set_charge_all_acquires(bool charge) noexcept;
bool charge_all_acquires() noexcept;

} // namespace compadres::core::hooks
