// TransmissionPolicy — the single source of truth for a route's policy.
//
// Following Walker et al. ("Promoting Component Reuse by Separating
// Transmission Policy from Implementation"), everything about HOW a route
// moves messages — as opposed to WHAT the component does with them — is
// composition-time policy, kept outside the port implementation:
//
//   * overflow  — what happens to a sender when every <BufferSize> credit
//     is in flight (Block backpressure vs Ring freshest-value overwrite),
//   * band      — which priority lane a remote route's frames ride
//     (-1 = derive from the Out port's default priority),
//   * coalesce  — whether the route's wire batches frames into one sendmsg
//     or flushes each frame immediately.
//
// One TransmissionPolicy value travels from the CCL (<Overflow>, <Band>,
// <Coalesce>) through the validator's plan into the live port, and is the
// unit of runtime recomposition: core/recompose.hpp swaps a route's policy
// under a quiesced credit window without dropping a frame.
#pragma once

#include <string>

namespace compadres::core {

/// Overflow behavior of an In port (CCL <Overflow> attribute): what happens
/// to a sender when every <BufferSize> credit is in flight.
enum class OverflowPolicy {
    kBlock,         ///< sender waits for a credit (lossless backpressure)
    kRingOverwrite, ///< freshest value wins: evict the stalest queued
                    ///< message, never block the sender (sensor streams)
};

/// Per-route transmission policy. `overflow` applies to every route;
/// `band` and `coalesce` only matter for remote routes (a local hop has no
/// wire) and are carried untouched so a route exported later keeps them.
struct TransmissionPolicy {
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Priority lane of a remote route (0 = most urgent). -1 derives the
    /// band from the Out port's default priority at export time.
    int band = -1;
    /// Wire write coalescing for the route's lane (CCL <Coalesce>).
    bool coalesce = true;

    friend bool operator==(const TransmissionPolicy& a,
                           const TransmissionPolicy& b) noexcept {
        return a.overflow == b.overflow && a.band == b.band &&
               a.coalesce == b.coalesce;
    }
    friend bool operator!=(const TransmissionPolicy& a,
                           const TransmissionPolicy& b) noexcept {
        return !(a == b);
    }
};

/// "ring, band=2, direct" — for plan dumps and diagnostics.
inline std::string to_string(const TransmissionPolicy& p) {
    std::string out =
        p.overflow == OverflowPolicy::kRingOverwrite ? "ring" : "block";
    out += ", band=";
    out += p.band < 0 ? std::string("auto") : std::to_string(p.band);
    out += p.coalesce ? ", coalesce" : ", direct";
    return out;
}

} // namespace compadres::core
