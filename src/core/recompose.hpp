// Live recomposition — apply a new assembly to a RUNNING application.
//
// The paper's SMM exposes connect()/disconnect() for dynamic children; the
// declarative real-time OSGi component model generalizes that into adaptive
// recomposition: the deployment is re-declared (a new CCL), the runtime
// diffs it against what is live, and applies the delta without stopping the
// application. This header is the runtime half of that control plane:
//
//   RecomposePlan  — the delta: components to spawn/retire, routes to
//                    add/remove, routes whose TransmissionPolicy changes.
//                    Produced by compiler/diff.hpp from two CCLs, or built
//                    by hand for programmatic recomposition.
//   apply_recompose — executes a plan against a live Application under the
//                    quiesce-reroute-resume protocol. Per repolicied route:
//                    close the In port's CreditGate window (new senders
//                    park before touching the budget), wait for entrants
//                    and in-flight credits to drain (nothing admitted,
//                    queued, or mid-handler), swap the policy, reopen. No
//                    frame in motion is ever dropped; `frames_dropped`
//                    stays flat by construction.
//
// Ordering inside one apply: spawns -> route adds -> repolicies -> route
// removes -> retires, so a route can be moved (add the new leg, remove the
// old) without a window where the topology is unroutable, and a retired
// component is guaranteed unreferenced by the time it drains.
//
// apply_recompose serializes with Application::stop() on the application's
// recompose mutex: a stop landing mid-plan waits for the plan to finish,
// and a plan finding the application already stopped aborts cleanly.
#pragma once

#include "core/application.hpp"
#include "core/transmission_policy.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace compadres::obs {
class MetricsRegistry;
}

namespace compadres::core {

class RecomposeError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A component the plan spawns (CDL class instantiated via the global
/// ComponentRegistry, exactly like the assembler does at startup).
struct RecomposeComponentSpec {
    std::string instance;
    std::string class_name;
    ComponentType type = ComponentType::kScoped;
    int level = 1;
    std::string parent; ///< instance name; empty = application root
    std::map<std::string, InPortConfig> port_configs;
};

/// One route endpoint pair ("Instance.Port" resolved at apply time).
struct RecomposeRoute {
    std::string from_instance;
    std::string from_port;
    std::string to_instance;
    std::string to_port;
    std::size_t pool_capacity = 0; ///< 0 = the wire() default
};

/// A route whose TransmissionPolicy changes. Local routes repolicy the In
/// port directly; remote routes (a RemoteBridge export) go through
/// RecomposeOptions::remote_applier, which owns the lane/band side.
struct RecomposeRepolicy {
    bool remote = false;
    std::string instance;    ///< local: In-port owner
    std::string port;        ///< local: In-port name
    std::string remote_name; ///< remote: CCL <Remote> name
    std::string route;       ///< remote: route string
    TransmissionPolicy from;
    TransmissionPolicy to;
};

struct RecomposePlan {
    std::string application;
    std::vector<RecomposeComponentSpec> spawns; ///< parents before children
    std::vector<std::string> retires;           ///< reverse creation order
    std::vector<RecomposeRoute> route_adds;
    std::vector<RecomposeRoute> route_removes;
    std::vector<RecomposeRepolicy> repolicies;

    bool empty() const noexcept {
        return spawns.empty() && retires.empty() && route_adds.empty() &&
               route_removes.empty() && repolicies.empty();
    }
    std::size_t operation_count() const noexcept {
        return spawns.size() + retires.size() + route_adds.size() +
               route_removes.size() + repolicies.size();
    }
};

/// Human-readable plan dump (one line per operation) — what
/// `compadresc diff` prints.
std::string describe(const RecomposePlan& plan);

struct RecomposeStats {
    std::size_t components_spawned = 0;
    std::size_t components_retired = 0;
    std::size_t routes_added = 0;
    std::size_t routes_removed = 0;
    std::size_t routes_repoliced = 0;
    /// Per-repolicied-route quiesce->resume pause, in nanoseconds.
    std::vector<std::uint64_t> pause_ns;
};

struct RecomposeOptions {
    /// When set, apply_recompose maintains recompose_* counters and the
    /// recompose_pause_ns histogram here.
    obs::MetricsRegistry* metrics = nullptr;
    /// Applies a remote repolicy (band / coalescing / overflow on a bridge
    /// export) and returns the quiesce->resume pause in ns. Wire
    /// remote::recompose_applier(bridge) in here. A plan with remote
    /// repolicies and no applier aborts.
    std::function<std::uint64_t(const RecomposeRepolicy&)> remote_applier;
};

/// The quiesce-reroute-resume primitive: close `in`'s credit window, wait
/// until nothing is admitted/queued/mid-handler, run `swap`, reopen.
/// Returns the pause (window closed -> reopened) in nanoseconds. Reopens
/// the window even when `swap` throws.
std::uint64_t quiesced_swap(InPortBase& in, const std::function<void()>& swap);

/// Execute `plan` against the live `app`. Throws RecomposeError (after
/// emitting a kRecomposeAbort event) when the application is stopped, a
/// named component/port cannot be resolved, or an operation fails;
/// operations already applied stay applied — a plan is not transactional,
/// but every individual route transition is.
RecomposeStats apply_recompose(Application& app, const RecomposePlan& plan,
                               const RecomposeOptions& options = {});

} // namespace compadres::core
