#include "core/port.hpp"

#include "core/component.hpp"
#include "core/delivery_policy.hpp"
#include "core/hooks.hpp"
#include "core/registry.hpp"
#include "core/smm.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "rt/clock.hpp"

#include <thread>

namespace compadres::core {

std::string PortBase::qualified_name() const {
    return owner_->instance_name() + "." + name_;
}

InPortBase::InPortBase(std::string name, Component& owner, std::type_index type,
                       std::string type_name, InPortConfig config,
                       MessageHandlerBase& handler)
    : PortBase(std::move(name), owner, type, std::move(type_name)),
      config_(config), handler_(&handler), tx_policy_(config.policy),
      policy_(&delivery_policy_for(config.policy.overflow)),
      credits_(config.buffer_size) {}

InPortBase::~InPortBase() = default;

void InPortBase::bind_dispatcher(Dispatcher& d) {
    if (dispatcher_ != nullptr && dispatcher_ != &d) {
        throw PortError("in-port " + qualified_name() +
                        " is already bound to a dispatcher");
    }
    dispatcher_ = &d;
}

void InPortBase::set_policy(const TransmissionPolicy& policy) {
    tx_policy_ = policy;
    policy_.store(&delivery_policy_for(policy.overflow),
                  std::memory_order_release);
}

void InPortBase::deliver(Envelope env) {
    env.port = this;
    // Quiesce bracket: a live recompose closes this gate's window to park
    // new senders HERE — before they touch the budget — then waits for
    // entrants + in-flight credits to hit zero before swapping the policy.
    credits_.enter();
    struct ExitGuard {
        rt::CreditGate& gate;
        ~ExitGuard() { gate.exit(); }
    } bracket{credits_};
    // Admission against the per-port credit budget (CCL <BufferSize>):
    // lock-free in steady state; what happens on an exhausted budget is the
    // port's DeliveryPolicy — block the sender, or evict/drop under ring-
    // overwrite.
    switch (policy_.load(std::memory_order_acquire)->admit(*this, env)) {
    case DeliveryOutcome::kDropped:
        // The policy returned env.msg to its pool; nothing to enqueue.
        dropped_.fetch_add(1);
        return;
    case DeliveryOutcome::kOverwrote:
        overwritten_.fetch_add(1);
        break;
    case DeliveryOutcome::kAdmitted:
        break;
    }
    delivered_.fetch_add(1);
    if (hooks::tracing()) env.t_enqueue = rt::now_ns();
    // Hop-lifecycle events are span-scoped: only envelopes carrying a
    // sampled trace context record them, so the per-message recorder cost
    // scales with the sampling rate, not the message rate. SampleShift 0
    // records every hop. Wire/stall/failover events stay always-on.
    if (env.trace_id != 0) {
        obs::FlightRecorder::emit(obs::EventType::kHopEnqueue,
                                  reinterpret_cast<std::uintptr_t>(this),
                                  static_cast<std::uint32_t>(env.priority));
    }
    if (dispatcher_ == nullptr) {
        // Not bound (synchronous wiring or pool sizes 0): run inline.
        // execute() ends with on_processed(), which releases the credit.
        Dispatcher::execute(env);
        return;
    }
    try {
        dispatcher_->submit(std::move(env));
    } catch (...) {
        // Undo the credit so the accounting stays balanced; the caller
        // (send_raw) returns the message to its pool.
        credits_.release();
        delivered_.fetch_sub(1);
        throw;
    }
}

void InPortBase::on_processed(bool ok) noexcept {
    if (ok) {
        processed_.fetch_add(1);
    } else {
        errors_.fetch_add(1);
    }
    // Release the envelope's credit; wakes a blocked sender only when one
    // is registered, so the steady-state completion path is lock-free.
    credits_.release();
}

namespace {
/// True if `candidate` is `component` itself or one of its ancestors.
bool is_self_or_ancestor(const Component* candidate,
                         const Component* component) noexcept {
    for (const Component* c = component; c != nullptr; c = c->parent()) {
        if (c == candidate) return true;
    }
    return false;
}
} // namespace

void OutPortBase::attach(Smm& smm, const MessageTypeInfo& info,
                         std::size_t pool_capacity) {
    if (info.type != type()) {
        throw PortError("message type info '" + info.name +
                        "' does not match port " + qualified_name() + " type '" +
                        type_name() + "'");
    }
    reserved_total_ += pool_capacity;
    bool rehosted = false;
    if (smm_ == nullptr) {
        smm_ = &smm;
        type_info_ = &info;
    } else if (smm_ != &smm) {
        // Fan-out across levels: this port's connections are hosted by
        // different SMMs. The pool must live where ALL targets can
        // reference it — the shallowest host. Hosts are common ancestors of
        // this port's owner, so they are totally ordered along its ancestor
        // chain; a shallower host's region is an ancestor of the deeper
        // hosts' regions, satisfying the Table-1 rules for every connection.
        if (traffic_started_.load(std::memory_order_acquire)) {
            throw PortError("out-port " + qualified_name() +
                            " cannot be re-hosted after traffic started");
        }
        if (is_self_or_ancestor(&smm.owner(), &smm_->owner())) {
            smm_ = &smm; // the new host is shallower: adopt it
            rehosted = true;
        } else if (is_self_or_ancestor(&smm_->owner(), &smm.owner())) {
            // current host already covers the new connection
        } else {
            throw PortError("out-port " + qualified_name() +
                            " wired through unrelated SMMs ('" +
                            smm_->owner().instance_name() + "' vs '" +
                            smm.owner().instance_name() + "')");
        }
    }
    // Eager pool resolution: size the host's per-type pool now and cache it,
    // so pool() on the send path is a plain load with no first-use race.
    // Reservations accumulate across every connection of the type (growing a
    // pool that already exists), so one pool can carry all the connections'
    // in-flight messages without wedging. On a re-host the full accumulated
    // total moves to the new (shallower) host.
    if (rehosted || pool_.load(std::memory_order_acquire) == nullptr) {
        smm_->reserve_pool_capacity(info, rehosted ? reserved_total_
                                                   : pool_capacity);
    } else {
        smm_->reserve_pool_capacity(info, pool_capacity);
    }
    pool_.store(&smm_->pool_for_erased(info), std::memory_order_release);
}

void OutPortBase::publish_targets(std::unique_ptr<TargetList> next) {
    // Called under targets_mu_. The retired snapshot stays alive in the
    // history so a send that already loaded it keeps a valid view.
    const TargetList* published = next.get();
    target_history_.push_back(std::move(next));
    targets_.store(published, std::memory_order_seq_cst);
}

void OutPortBase::add_target(InPortBase& target) {
    if (target.type() != type()) {
        throw PortError("message type mismatch: " + qualified_name() + " ('" +
                        type_name() + "') -> " + target.qualified_name() +
                        " ('" + target.type_name() + "')");
    }
    std::lock_guard lk(targets_mu_);
    for (const InPortBase* t : targets()) {
        if (t == &target) {
            throw PortError("duplicate connection " + qualified_name() + " -> " +
                            target.qualified_name());
        }
    }
    auto next = std::make_unique<TargetList>(targets());
    next->push_back(&target);
    publish_targets(std::move(next));
}

bool OutPortBase::remove_target(InPortBase& target) {
    std::lock_guard lk(targets_mu_);
    const TargetList& cur = targets();
    auto next = std::make_unique<TargetList>();
    next->reserve(cur.size());
    for (InPortBase* t : cur) {
        if (t != &target) next->push_back(t);
    }
    if (next->size() == cur.size()) return false;
    publish_targets(std::move(next));
    return true;
}

void OutPortBase::wait_sends_quiesced() const noexcept {
    // The snapshot publish is seq_cst and sends bump sends_in_flight_
    // BEFORE loading the snapshot, so once this counter reads zero every
    // later send observes the new fan-out. Event-driven wait: register as
    // a waiter FIRST, then re-check — a send finishing after the check
    // sees quiesce_waiters_ > 0 and notifies under quiesce_mu_, so the
    // wakeup cannot be lost.
    if (sends_in_flight_.load(std::memory_order_seq_cst) == 0) return;
    quiesce_waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::unique_lock lk(quiesce_mu_);
        quiesce_cv_.wait(lk, [&] {
            return sends_in_flight_.load(std::memory_order_seq_cst) == 0;
        });
    }
    quiesce_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

void* OutPortBase::get_message_raw() {
    MessagePoolBase* p = pool();
    if (p == nullptr) {
        throw PortError("out-port " + qualified_name() +
                        " is not wired (no message pool)");
    }
    traffic_started_.store(true, std::memory_order_release);
    return p->acquire_raw();
}

void OutPortBase::send_raw(void* msg, int priority) {
    // Epoch bracket for live route removal: the counter goes up BEFORE the
    // snapshot load, so wait_sends_quiesced() returning zero proves every
    // later send sees the new fan-out.
    sends_in_flight_.fetch_add(1, std::memory_order_seq_cst);
    struct EpochGuard {
        const OutPortBase& port;
        ~EpochGuard() {
            // Notify only on the 1->0 transition and only when a
            // wait_sends_quiesced() caller is registered: the steady-state
            // send path never takes quiesce_mu_.
            if (port.sends_in_flight_.fetch_sub(
                    1, std::memory_order_seq_cst) == 1 &&
                port.quiesce_waiters_.load(std::memory_order_seq_cst) > 0) {
                std::lock_guard lk(port.quiesce_mu_);
                port.quiesce_cv_.notify_all();
            }
        }
    } epoch{*this};
    const TargetList& fanout = targets();
    if (fanout.empty()) {
        throw PortError("out-port " + qualified_name() + " is not connected");
    }
    hooks::notify_dispatch();
    sent_.fetch_add(1);
    MessagePoolBase* p = pool();
    const int prio = rt::Priority::clamped(priority).value;
    // Stamp the sending thread's trace context into the envelopes so a
    // sampled trace follows the message across the dispatcher boundary.
    // One relaxed load when tracing is off (obs::Tracer::active()).
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    if (obs::Tracer::active()) {
        const obs::TraceContext ctx = obs::Tracer::current();
        trace_id = ctx.trace_id;
        span_id = ctx.span_id;
    }
    // Fan-out: receivers 2..N get pool clones so each handler owns (and
    // releases) a distinct message; the original goes to the first target.
    for (std::size_t i = 1; i < fanout.size(); ++i) {
        Envelope copy{p->clone_raw(msg), p, fanout[i], smm_, prio};
        copy.trace_id = trace_id;
        copy.span_id = span_id;
        try {
            fanout[i]->deliver(copy);
        } catch (...) {
            p->release_raw(copy.msg);
            throw;
        }
    }
    Envelope env{msg, p, fanout[0], smm_, prio};
    env.trace_id = trace_id;
    env.span_id = span_id;
    try {
        fanout[0]->deliver(env);
    } catch (...) {
        p->release_raw(msg);
        throw;
    }
}

} // namespace compadres::core
