#include "core/port.hpp"

#include "core/component.hpp"
#include "core/hooks.hpp"
#include "core/registry.hpp"
#include "core/smm.hpp"

namespace compadres::core {

std::string PortBase::qualified_name() const {
    return owner_->instance_name() + "." + name_;
}

InPortBase::InPortBase(std::string name, Component& owner, std::type_index type,
                       std::string type_name, InPortConfig config,
                       MessageHandlerBase& handler)
    : PortBase(std::move(name), owner, type, std::move(type_name)),
      config_(config), handler_(&handler) {}

InPortBase::~InPortBase() = default;

void InPortBase::bind_dispatcher(Dispatcher& d) {
    if (dispatcher_ != nullptr && dispatcher_ != &d) {
        throw PortError("in-port " + qualified_name() +
                        " is already bound to a dispatcher");
    }
    dispatcher_ = &d;
}

void InPortBase::deliver(Envelope env) {
    // Per-port buffer bound (CCL <BufferSize>): the sender blocks while the
    // port has buffer_size messages pending — bounded memory, backpressure.
    {
        std::unique_lock lk(mu_);
        space_.wait(lk, [&] { return in_flight_.load() < config_.buffer_size; });
        in_flight_.fetch_add(1);
    }
    delivered_.fetch_add(1);
    env.port = this;
    if (dispatcher_ == nullptr) {
        // Not bound (synchronous wiring or pool sizes 0): run inline.
        Dispatcher::execute(env);
        return;
    }
    try {
        dispatcher_->submit(std::move(env));
    } catch (...) {
        // Undo the in-flight slot so the accounting stays balanced; the
        // caller (send_raw) returns the message to its pool.
        {
            std::lock_guard lk(mu_);
            in_flight_.fetch_sub(1);
        }
        space_.notify_one();
        delivered_.fetch_sub(1);
        throw;
    }
}

void InPortBase::on_processed(bool ok) noexcept {
    if (ok) {
        processed_.fetch_add(1);
    } else {
        errors_.fetch_add(1);
    }
    {
        std::lock_guard lk(mu_);
        in_flight_.fetch_sub(1);
    }
    space_.notify_one();
}

namespace {
/// True if `candidate` is `component` itself or one of its ancestors.
bool is_self_or_ancestor(const Component* candidate,
                         const Component* component) noexcept {
    for (const Component* c = component; c != nullptr; c = c->parent()) {
        if (c == candidate) return true;
    }
    return false;
}
} // namespace

void OutPortBase::attach(Smm& smm, const MessageTypeInfo& info) {
    if (info.type != type()) {
        throw PortError("message type info '" + info.name +
                        "' does not match port " + qualified_name() + " type '" +
                        type_name() + "'");
    }
    if (smm_ == nullptr) {
        smm_ = &smm;
        type_info_ = &info;
        return;
    }
    if (smm_ == &smm) return;
    // Fan-out across levels: this port's connections are hosted by
    // different SMMs. The pool must live where ALL targets can reference
    // it — the shallowest host. Hosts are common ancestors of this port's
    // owner, so they are totally ordered along its ancestor chain; a
    // shallower host's region is an ancestor of the deeper hosts' regions,
    // satisfying the Table-1 rules for every connection.
    if (pool_.load(std::memory_order_acquire) != nullptr) {
        throw PortError("out-port " + qualified_name() +
                        " cannot be re-hosted after traffic started");
    }
    if (is_self_or_ancestor(&smm.owner(), &smm_->owner())) {
        smm_ = &smm; // the new host is shallower: adopt it
    } else if (is_self_or_ancestor(&smm_->owner(), &smm.owner())) {
        // current host already covers the new connection
    } else {
        throw PortError("out-port " + qualified_name() +
                        " wired through unrelated SMMs ('" +
                        smm_->owner().instance_name() + "' vs '" +
                        smm.owner().instance_name() + "')");
    }
}

MessagePoolBase* OutPortBase::pool() const {
    MessagePoolBase* p = pool_.load(std::memory_order_acquire);
    if (p == nullptr && smm_ != nullptr && type_info_ != nullptr) {
        p = &smm_->pool_for_erased(*type_info_);
        pool_.store(p, std::memory_order_release);
    }
    return p;
}

void OutPortBase::add_target(InPortBase& target) {
    if (target.type() != type()) {
        throw PortError("message type mismatch: " + qualified_name() + " ('" +
                        type_name() + "') -> " + target.qualified_name() +
                        " ('" + target.type_name() + "')");
    }
    for (const InPortBase* t : targets_) {
        if (t == &target) {
            throw PortError("duplicate connection " + qualified_name() + " -> " +
                            target.qualified_name());
        }
    }
    targets_.push_back(&target);
}

void* OutPortBase::get_message_raw() {
    MessagePoolBase* p = pool();
    if (p == nullptr) {
        throw PortError("out-port " + qualified_name() +
                        " is not wired (no message pool)");
    }
    return p->acquire_raw();
}

void OutPortBase::send_raw(void* msg, int priority) {
    if (targets_.empty()) {
        throw PortError("out-port " + qualified_name() + " is not connected");
    }
    hooks::notify_dispatch();
    sent_.fetch_add(1);
    MessagePoolBase* p = pool();
    const int prio = rt::Priority::clamped(priority).value;
    // Fan-out: receivers 2..N get pool clones so each handler owns (and
    // releases) a distinct message; the original goes to the first target.
    for (std::size_t i = 1; i < targets_.size(); ++i) {
        Envelope copy{p->clone_raw(msg), p, targets_[i], smm_, prio};
        try {
            targets_[i]->deliver(copy);
        } catch (...) {
            p->release_raw(copy.msg);
            throw;
        }
    }
    Envelope env{msg, p, targets_[0], smm_, prio};
    try {
        targets_[0]->deliver(env);
    } catch (...) {
        p->release_raw(msg);
        throw;
    }
}

} // namespace compadres::core
