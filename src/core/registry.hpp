// Registries that let XML-driven assembly name things that are, in C++,
// compile-time types.
//
// The paper's compiler generates Java classes from the CDL and links them
// by name at composition time. A C++ reproduction cannot conjure types at
// runtime, so components register a factory under their CDL class name and
// message types register under their CDL <MessageType> name; the assembler
// then resolves names to factories.
#pragma once

#include "core/component.hpp"
#include "core/message_pool.hpp"

#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <typeindex>

namespace compadres::core {

class RegistryError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Component class-name -> factory. The factory constructs the component
/// inside ctx.region (so the component lives in its own memory area).
class ComponentRegistry {
public:
    using Factory = std::function<Component*(const ComponentContext&)>;

    static ComponentRegistry& global();

    void register_factory(const std::string& class_name, Factory factory);

    /// Convenience: register a default factory for C (constructible from
    /// const ComponentContext&).
    template <typename C>
    void register_class(const std::string& class_name) {
        register_factory(class_name, [](const ComponentContext& ctx) -> Component* {
            return ctx.region->make<C>(ctx);
        });
    }

    bool has(const std::string& class_name) const;
    Component* create(const std::string& class_name,
                      const ComponentContext& ctx) const;

private:
    std::map<std::string, Factory> factories_;
};

/// Message type-name -> pool factory + metadata.
struct MessageTypeInfo {
    std::string name;
    std::type_index type;
    std::size_t size_bytes;
    /// Allocates a MessagePool<T> for this type inside `region`.
    MessagePoolBase* (*make_pool)(memory::MemoryRegion& region,
                                  const std::string& name, std::size_t capacity);
};

class MessageTypeRegistry {
public:
    static MessageTypeRegistry& global();

    template <typename T>
    void register_type(const std::string& name) {
        MessageTypeInfo info{
            name, std::type_index(typeid(T)), sizeof(T),
            [](memory::MemoryRegion& region, const std::string& n,
               std::size_t capacity) -> MessagePoolBase* {
                return region.make<MessagePool<T>>(region, n, capacity);
            }};
        add(info);
    }

    bool has(const std::string& name) const;
    const MessageTypeInfo& find(const std::string& name) const;
    const MessageTypeInfo* find_by_type(std::type_index type) const noexcept;

private:
    void add(const MessageTypeInfo& info);
    std::map<std::string, MessageTypeInfo> by_name_;
};

/// Registers the message types the examples/tests/ORB use under their CDL
/// names (String, MyInteger, OctetSeq, ...). Idempotent.
void register_builtin_message_types();

} // namespace compadres::core
