#include "core/dispatcher.hpp"

#include "core/hooks.hpp"
#include "core/message_pool.hpp"
#include "core/port.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "rt/clock.hpp"

#include <cstdio>

namespace compadres::core {

Dispatcher::Dispatcher(std::string name, DispatcherConfig config)
    : name_(std::move(name)), config_(config),
      queue_(config.queue_capacity ? config.queue_capacity : 1) {
    max_threads_.store(config_.max_threads, std::memory_order_relaxed);
    std::lock_guard lk(workers_mu_);
    for (std::size_t i = 0; i < config_.min_threads; ++i) {
        spawn_worker_locked();
    }
}

Dispatcher::~Dispatcher() { shutdown(); }

void Dispatcher::spawn_worker_locked() {
    const auto idx = workers_.size();
    workers_.push_back(std::make_unique<rt::RtThread>(
        name_ + "-w" + std::to_string(idx), config_.base_priority,
        [this] { worker_loop(); }));
    worker_count_.store(workers_.size(), std::memory_order_relaxed);
}

void Dispatcher::submit(Envelope env) {
    if (synchronous()) {
        // Paper: pool sizes of 0 mean the calling thread executes process()
        // synchronously. The caller keeps its own priority.
        if (!execute(env)) errors_.fetch_add(1);
        processed_.fetch_add(1);
        return;
    }
    // Grow on demand: all workers busy with work still arriving. The check
    // reads lock-free shadows; workers_mu_ is taken only when a spawn is
    // actually warranted, so the steady-state hop stays at one lock (the
    // intake-queue push below).
    const std::size_t workers = worker_count_.load(std::memory_order_relaxed);
    if (busy_.load(std::memory_order_relaxed) >= workers &&
        workers < max_threads_.load(std::memory_order_relaxed)) {
        std::lock_guard lk(workers_mu_);
        if (!shutdown_.load() && busy_.load() >= workers_.size() &&
            workers_.size() < config_.max_threads) {
            spawn_worker_locked();
        }
    }
    const int prio = env.priority;
    if (!queue_.push(std::move(env), prio)) {
        throw PortError("dispatcher '" + name_ + "' is shut down");
    }
}

std::optional<Envelope> Dispatcher::steal_queued(const InPortBase& port) {
    return queue_.steal_oldest_if(
        [&](const Envelope& e) { return e.port == &port; });
}

void Dispatcher::ensure_capacity(std::size_t min_threads,
                                 std::size_t max_threads) {
    std::lock_guard lk(workers_mu_);
    if (max_threads > config_.max_threads) {
        config_.max_threads = max_threads;
        max_threads_.store(max_threads, std::memory_order_relaxed);
    }
    if (min_threads > config_.min_threads) config_.min_threads = min_threads;
    while (workers_.size() < config_.min_threads) {
        spawn_worker_locked();
    }
}

void Dispatcher::worker_loop() {
    for (;;) {
        auto item = queue_.pop();
        if (!item.has_value()) return; // closed and drained
        if (hooks::tracing()) item->first.t_dequeue = rt::now_ns();
        // Span-scoped, matching the enqueue site in InPortBase::deliver.
        if (item->first.trace_id != 0) {
            obs::FlightRecorder::emit(
                obs::EventType::kHopDequeue,
                reinterpret_cast<std::uintptr_t>(item->first.port),
                static_cast<std::uint32_t>(item->first.priority));
        }
        busy_.fetch_add(1);
        // The pool thread assumes the priority of the message it is about
        // to process (paper §2.2). Best-effort under an unprivileged OS.
        rt::try_set_current_thread_priority(rt::Priority::clamped(item->second));
        if (!execute(item->first)) errors_.fetch_add(1);
        processed_.fetch_add(1);
        busy_.fetch_sub(1);
    }
}

bool Dispatcher::execute(const Envelope& env) noexcept {
    const bool traced = hooks::tracing();
    const std::int64_t start = traced ? rt::now_ns() : 0;
    // Re-install the envelope's trace context around the handler (empty
    // contexts install nothing, so the untraced path never touches TLS)
    // and bracket the handler run in the flight recorder. The brackets are
    // span-scoped like the enqueue/dequeue events: only sampled flows pay
    // for (and appear in) the handler timeline.
    const obs::ScopedTraceContext trace_scope(
        obs::TraceContext{env.trace_id, env.span_id});
    const bool recorded =
        env.trace_id != 0 && obs::FlightRecorder::enabled();
    if (recorded) {
        obs::FlightRecorder::emit_always(obs::EventType::kHopHandlerStart,
                                         env.trace_id, env.span_id);
    }
    bool ok = true;
    try {
        env.port->handler().process_raw(env.msg, *env.smm);
    } catch (const std::exception& e) {
        ok = false;
        std::fprintf(stderr, "[compadres] handler error on port %s: %s\n",
                     env.port->qualified_name().c_str(), e.what());
    } catch (...) {
        ok = false;
        std::fprintf(stderr, "[compadres] handler error on port %s: unknown\n",
                     env.port->qualified_name().c_str());
    }
    const std::int64_t end = traced ? rt::now_ns() : 0;
    // The message returns to its pool after processing (paper §2.2) even if
    // the handler threw — leaking pool slots would eventually wedge senders.
    try {
        env.pool->release_raw(env.msg);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[compadres] pool release failed: %s\n", e.what());
    }
    env.port->on_processed(ok);
    if (traced) {
        hooks::HopTimes t;
        t.process_start_ns = start;
        t.process_end_ns = end;
        // Synchronous hops (and hops enqueued before the sink went in) have
        // no queue stamps; collapse them onto process start so the queue
        // wait reads as zero instead of as decades.
        t.enqueue_ns = env.t_enqueue != 0 ? env.t_enqueue : start;
        t.dequeue_ns = env.t_dequeue != 0 ? env.t_dequeue : start;
        t.priority = env.priority;
        hooks::notify_hop(*env.port, t);
    }
    if (recorded) {
        obs::FlightRecorder::emit_always(obs::EventType::kHopHandlerEnd,
                                         env.trace_id, env.span_id);
    }
    return ok;
}

void Dispatcher::shutdown() {
    if (shutdown_.exchange(true)) return;
    queue_.close();
    std::vector<std::unique_ptr<rt::RtThread>> workers;
    {
        std::lock_guard lk(workers_mu_);
        workers.swap(workers_);
    }
    for (auto& w : workers) w->join();
}

} // namespace compadres::core
