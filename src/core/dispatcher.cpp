#include "core/dispatcher.hpp"

#include "core/message_pool.hpp"
#include "core/port.hpp"

#include <cstdio>

namespace compadres::core {

Dispatcher::Dispatcher(std::string name, DispatcherConfig config)
    : name_(std::move(name)), config_(config),
      queue_(std::make_unique<rt::PriorityBoundedQueue<Envelope>>(
          config.queue_capacity ? config.queue_capacity : 1)) {
    std::lock_guard lk(workers_mu_);
    for (std::size_t i = 0; i < config_.min_threads; ++i) {
        spawn_worker_locked();
    }
}

Dispatcher::~Dispatcher() { shutdown(); }

void Dispatcher::spawn_worker_locked() {
    const auto idx = workers_.size();
    workers_.push_back(std::make_unique<rt::RtThread>(
        name_ + "-w" + std::to_string(idx), config_.base_priority,
        [this] { worker_loop(); }));
}

void Dispatcher::submit(Envelope env) {
    if (synchronous()) {
        // Paper: pool sizes of 0 mean the calling thread executes process()
        // synchronously. The caller keeps its own priority.
        if (!execute(env)) errors_.fetch_add(1);
        processed_.fetch_add(1);
        return;
    }
    {
        // Grow on demand: all workers busy with work still queued.
        std::lock_guard lk(workers_mu_);
        if (!shutdown_.load() && busy_.load() >= workers_.size() &&
            workers_.size() < config_.max_threads) {
            spawn_worker_locked();
        }
    }
    const auto result = queue_->push(std::move(env), env.priority);
    if (result == rt::PushResult::kClosed) {
        throw PortError("dispatcher '" + name_ + "' is shut down");
    }
}

void Dispatcher::ensure_capacity(std::size_t min_threads,
                                 std::size_t max_threads) {
    std::lock_guard lk(workers_mu_);
    if (max_threads > config_.max_threads) config_.max_threads = max_threads;
    if (min_threads > config_.min_threads) config_.min_threads = min_threads;
    while (workers_.size() < config_.min_threads) {
        spawn_worker_locked();
    }
}

void Dispatcher::worker_loop() {
    for (;;) {
        auto item = queue_->pop();
        if (!item.has_value()) return; // closed and drained
        busy_.fetch_add(1);
        // The pool thread assumes the priority of the message it is about
        // to process (paper §2.2). Best-effort under an unprivileged OS.
        rt::try_set_current_thread_priority(rt::Priority::clamped(item->second));
        if (!execute(item->first)) errors_.fetch_add(1);
        processed_.fetch_add(1);
        busy_.fetch_sub(1);
    }
}

bool Dispatcher::execute(const Envelope& env) noexcept {
    bool ok = true;
    try {
        env.port->handler().process_raw(env.msg, *env.smm);
    } catch (const std::exception& e) {
        ok = false;
        std::fprintf(stderr, "[compadres] handler error on port %s: %s\n",
                     env.port->qualified_name().c_str(), e.what());
    } catch (...) {
        ok = false;
        std::fprintf(stderr, "[compadres] handler error on port %s: unknown\n",
                     env.port->qualified_name().c_str());
    }
    // The message returns to its pool after processing (paper §2.2) even if
    // the handler threw — leaking pool slots would eventually wedge senders.
    try {
        env.pool->release_raw(env.msg);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[compadres] pool release failed: %s\n", e.what());
    }
    env.port->on_processed(ok);
    return ok;
}

void Dispatcher::shutdown() {
    if (shutdown_.exchange(true)) return;
    queue_->close();
    std::vector<std::unique_ptr<rt::RtThread>> workers;
    {
        std::lock_guard lk(workers_mu_);
        workers.swap(workers_);
    }
    for (auto& w : workers) w->join();
}

std::size_t Dispatcher::worker_count() const {
    std::lock_guard lk(workers_mu_);
    return workers_.size();
}

} // namespace compadres::core
