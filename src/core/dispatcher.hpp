// Dispatcher — the thread pool behind In ports.
//
// Paper §2.2: each In port has a message buffer and a thread pool. A thread
// from the pool takes the highest-priority pending message, assumes its
// priority, and runs the port's process() method. Pools start at
// MinThreadpoolSize threads and grow on demand up to MaxThreadpoolSize.
// When both are zero the calling thread runs process() synchronously.
//
// A Dispatcher is either dedicated to one In port or shared by all In ports
// wired through one SMM (<Threadpool>Shared</Threadpool> in the CCL). The
// intake queue (rt/intake_queue.hpp) is unbounded by construction: every
// submitted envelope already holds a credit of its port's <BufferSize>
// budget, so occupancy is bounded by the sum of the bound ports' budgets
// and submit() never blocks — one lock acquisition per hop. The grow-on-
// demand check reads atomic shadows and takes the workers mutex only when
// a worker will actually be spawned, keeping the steady-state hop at that
// single lock.
#pragma once

#include "core/envelope.hpp"
#include "rt/intake_queue.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace compadres::core {

class InPortBase;

struct DispatcherConfig {
    /// Initial reservation of the intake queue (entries, not a bound).
    std::size_t queue_capacity = 16;
    std::size_t min_threads = 1;
    std::size_t max_threads = 1;
    /// Baseline priority of idle workers; each message raises/lowers the
    /// worker to the message priority while it is being processed.
    rt::Priority base_priority{};
};

class Dispatcher {
public:
    Dispatcher(std::string name, DispatcherConfig config);
    ~Dispatcher();

    Dispatcher(const Dispatcher&) = delete;
    Dispatcher& operator=(const Dispatcher&) = delete;

    /// True when max_threads == 0: submit() runs the handler inline in the
    /// calling thread (the paper's synchronous port mode).
    bool synchronous() const noexcept {
        return max_threads_.load(std::memory_order_relaxed) == 0;
    }

    /// Hand an envelope over. The port's credit gate has already settled
    /// admission, so this never blocks: one queue-lock acquisition on the
    /// uncontended path. May spawn a new worker when all existing ones are
    /// busy and max_threads allows.
    void submit(Envelope env);

    /// Remove the oldest queued envelope bound for `port` (the ring-
    /// overwrite eviction path). Empty when nothing of that port is queued.
    std::optional<Envelope> steal_queued(const InPortBase& port);

    /// Raise the pool floor/ceiling — used when several shared ports bind
    /// with different CCL pool sizes. Must happen before traffic starts.
    void ensure_capacity(std::size_t min_threads, std::size_t max_threads);

    /// Stop accepting work, drain, and join all workers. Idempotent.
    void shutdown();

    const std::string& name() const noexcept { return name_; }
    std::size_t worker_count() const noexcept {
        return worker_count_.load(std::memory_order_relaxed);
    }
    std::uint64_t processed_count() const noexcept { return processed_.load(); }
    std::uint64_t error_count() const noexcept { return errors_.load(); }
    /// Lock acquisitions performed by intake-queue pushes — the delivery
    /// fabric's one-lock-per-hop evidence, surfaced in trace reports.
    std::uint64_t queue_lock_count() const noexcept {
        return queue_.push_lock_count();
    }

    /// Runs one envelope to completion: handler, then release-to-pool,
    /// then the port's completion bookkeeping, then the HopTrace
    /// notification when a sink is installed. Exceptions from handlers are
    /// contained and counted — a faulty handler must not take down the
    /// dispatch thread or leak the pooled message. Returns false if the
    /// handler threw.
    static bool execute(const Envelope& env) noexcept;

private:
    void worker_loop();
    void spawn_worker_locked();

    std::string name_;
    DispatcherConfig config_;
    rt::IntakeQueue<Envelope> queue_;
    std::vector<std::unique_ptr<rt::RtThread>> workers_;
    mutable std::mutex workers_mu_;
    /// Lock-free shadows of the worker roster / config so the grow check on
    /// submit() does not touch workers_mu_ in steady state.
    std::atomic<std::size_t> worker_count_{0};
    std::atomic<std::size_t> max_threads_{0};
    std::atomic<std::size_t> busy_{0};
    std::atomic<std::uint64_t> processed_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<bool> shutdown_{false};
};

} // namespace compadres::core
