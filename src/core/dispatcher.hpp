// Dispatcher — the thread pool behind In ports.
//
// Paper §2.2: each In port has a message buffer and a thread pool. A thread
// from the pool takes the highest-priority pending message, assumes its
// priority, and runs the port's process() method. Pools start at
// MinThreadpoolSize threads and grow on demand up to MaxThreadpoolSize.
// When both are zero the calling thread runs process() synchronously.
//
// A Dispatcher is either dedicated to one In port or shared by all In ports
// wired through one SMM (<Threadpool>Shared</Threadpool> in the CCL);
// per-port buffer bounds are enforced by the ports themselves, so a shared
// dispatcher's queue is sized to the sum of its ports' buffers.
#pragma once

#include "core/envelope.hpp"
#include "rt/queue.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace compadres::core {

struct DispatcherConfig {
    std::size_t queue_capacity = 16;
    std::size_t min_threads = 1;
    std::size_t max_threads = 1;
    /// Baseline priority of idle workers; each message raises/lowers the
    /// worker to the message priority while it is being processed.
    rt::Priority base_priority{};
};

class Dispatcher {
public:
    Dispatcher(std::string name, DispatcherConfig config);
    ~Dispatcher();

    Dispatcher(const Dispatcher&) = delete;
    Dispatcher& operator=(const Dispatcher&) = delete;

    /// True when max_threads == 0: submit() runs the handler inline in the
    /// calling thread (the paper's synchronous port mode).
    bool synchronous() const noexcept { return config_.max_threads == 0; }

    /// Hand an envelope over. Blocks while the queue is full (bounded
    /// buffers give backpressure, never unbounded memory). May spawn a new
    /// worker when all existing ones are busy and max_threads allows.
    void submit(Envelope env);

    /// Raise the pool floor/ceiling — used when several shared ports bind
    /// with different CCL pool sizes. The queue is NOT resized (workers may
    /// already be blocked on it); shared dispatchers are created with a
    /// queue large enough for any sum of per-port buffer bounds.
    void ensure_capacity(std::size_t min_threads, std::size_t max_threads);

    /// Stop accepting work, drain, and join all workers. Idempotent.
    void shutdown();

    const std::string& name() const noexcept { return name_; }
    std::size_t worker_count() const;
    std::uint64_t processed_count() const noexcept { return processed_.load(); }
    std::uint64_t error_count() const noexcept { return errors_.load(); }

    /// Runs one envelope to completion: handler, then release-to-pool,
    /// then the port's completion bookkeeping. Exceptions from handlers are
    /// contained and counted — a faulty handler must not take down the
    /// dispatch thread or leak the pooled message. Returns false if the
    /// handler threw.
    static bool execute(const Envelope& env) noexcept;

private:
    void worker_loop();
    void spawn_worker_locked();

    std::string name_;
    DispatcherConfig config_;
    std::unique_ptr<rt::PriorityBoundedQueue<Envelope>> queue_;
    std::vector<std::unique_ptr<rt::RtThread>> workers_;
    mutable std::mutex workers_mu_;
    std::atomic<std::size_t> busy_{0};
    std::atomic<std::uint64_t> processed_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<bool> shutdown_{false};
};

} // namespace compadres::core
