#include "core/hooks.hpp"

namespace compadres::core::hooks {

TraceSink::~TraceSink() = default;
void TraceSink::on_alloc(std::size_t) noexcept {}
void TraceSink::on_dispatch() noexcept {}
void TraceSink::on_hop(const InPortBase&, const HopTimes&) noexcept {}

void set_sink(TraceSink* sink) noexcept { detail::g_sink.store(sink); }

void clear() noexcept {
    detail::g_sink.store(nullptr);
    detail::g_charge_all.store(false);
}

void set_charge_all_acquires(bool charge) noexcept {
    detail::g_charge_all.store(charge);
}

} // namespace compadres::core::hooks
