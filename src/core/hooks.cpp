#include "core/hooks.hpp"

#include <atomic>

namespace compadres::core::hooks {

namespace {
std::atomic<AllocHook> g_alloc{nullptr};
std::atomic<DispatchHook> g_dispatch{nullptr};
std::atomic<void*> g_ctx{nullptr};
std::atomic<bool> g_charge_all{false};
} // namespace

void set(AllocHook alloc, DispatchHook dispatch, void* ctx) noexcept {
    g_ctx.store(ctx);
    g_alloc.store(alloc);
    g_dispatch.store(dispatch);
}

void clear() noexcept {
    g_alloc.store(nullptr);
    g_dispatch.store(nullptr);
    g_ctx.store(nullptr);
    g_charge_all.store(false);
}

void notify_alloc(std::size_t bytes) noexcept {
    if (AllocHook h = g_alloc.load(std::memory_order_relaxed)) {
        h(g_ctx.load(std::memory_order_relaxed), bytes);
    }
}

void notify_dispatch() noexcept {
    if (DispatchHook h = g_dispatch.load(std::memory_order_relaxed)) {
        h(g_ctx.load(std::memory_order_relaxed));
    }
}

void set_charge_all_acquires(bool charge) noexcept { g_charge_all.store(charge); }
bool charge_all_acquires() noexcept {
    return g_charge_all.load(std::memory_order_relaxed);
}

} // namespace compadres::core::hooks
