#include "core/application.hpp"

#include <set>
#include <sstream>

namespace compadres::core {

Application::Application(std::string name, RtsjAttributes attrs)
    : name_(std::move(name)), attrs_(std::move(attrs)),
      immortal_(std::make_unique<memory::ImmortalMemory>(
          attrs_.immortal_size, name_ + "-immortal")) {
    // CCL <Trace>: process-wide observability knobs. A default-constructed
    // TraceConfig leaves everything off, so this is a no-op for assemblies
    // without the block.
    obs::apply(attrs_.trace);
    for (const ScopePoolSpec& spec : attrs_.scoped_pools) {
        if (pools_.count(spec.level) != 0) {
            throw AssemblyError("duplicate scoped pool for level " +
                                std::to_string(spec.level));
        }
        pools_[spec.level] = immortal_->make<memory::ScopePool>(
            *immortal_, spec.level, spec.scope_size, spec.pool_size);
    }
    ComponentContext root_ctx{this, immortal_.get(), nullptr, "<root>", {}};
    root_ = immortal_->make<Component>(root_ctx);
}

Application::~Application() { shutdown(); }

memory::ScopePool& Application::pool_for_level(int level) {
    std::lock_guard lk(topology_mu_);
    auto it = pools_.find(level);
    if (it != pools_.end()) return *it->second;
    // Level not named in the CCL: give it a sane default pool so
    // programmatic assemblies do not have to enumerate every level.
    auto* pool = immortal_->make<memory::ScopePool>(*immortal_, level,
                                                    ScopePoolSpec{}.scope_size,
                                                    ScopePoolSpec{}.pool_size);
    pools_[level] = pool;
    return *pool;
}

Component& Application::create_by_name(const std::string& class_name,
                                       const std::string& instance_name,
                                       Component* parent, ComponentType type,
                                       int level,
                                       std::map<std::string, InPortConfig> port_configs) {
    Component* effective_parent = parent != nullptr ? parent : root_;
    if (type == ComponentType::kImmortal) {
        ComponentContext ctx{this, immortal_.get(), effective_parent,
                             instance_name, std::move(port_configs)};
        Component* comp = ComponentRegistry::global().create(class_name, ctx);
        adopt(*comp, nullptr, nullptr);
        return *comp;
    }
    memory::ScopePool& pool = pool_for_level(level);
    memory::LTScopedMemory& scope = pool.acquire();
    memory::ScopeHandle keepalive(scope, effective_parent->region());
    ComponentContext ctx{this, &scope, effective_parent, instance_name,
                         std::move(port_configs)};
    Component* comp = ComponentRegistry::global().create(class_name, ctx);
    adopt(*comp, &pool, &scope, std::move(keepalive));
    return *comp;
}

void Application::adopt(Component& comp, memory::ScopePool* pool,
                        memory::LTScopedMemory* scope,
                        memory::ScopeHandle keepalive) {
    std::lock_guard lk(topology_mu_);
    if (find_unlocked(comp.instance_name()) != nullptr) {
        throw AssemblyError("duplicate component instance name '" +
                            comp.instance_name() + "'");
    }
    Record rec;
    rec.comp = &comp;
    rec.pool = pool;
    rec.scope = scope;
    rec.keepalive = std::move(keepalive);
    records_.push_back(std::move(rec));
}

Component*
Application::find_unlocked(const std::string& instance_name) const noexcept {
    for (const Record& rec : records_) {
        if (rec.comp->instance_name() == instance_name) return rec.comp;
    }
    return nullptr;
}

Component* Application::find(const std::string& instance_name) const noexcept {
    std::lock_guard lk(topology_mu_);
    return find_unlocked(instance_name);
}

Component& Application::component(const std::string& instance_name) const {
    Component* c = find(instance_name);
    if (c == nullptr) {
        throw AssemblyError("no component instance named '" + instance_name +
                            "'");
    }
    return *c;
}

Component& Application::common_ancestor(Component& a, Component& b) const {
    std::set<const Component*> chain;
    for (Component* c = &a; c != nullptr; c = c->parent()) chain.insert(c);
    for (Component* c = &b; c != nullptr; c = c->parent()) {
        if (chain.count(c) != 0) return *c;
    }
    throw AssemblyError("components '" + a.instance_name() + "' and '" +
                        b.instance_name() + "' share no ancestor");
}

void Application::connect(OutPortBase& out, InPortBase& in,
                          std::size_t pool_capacity) {
    Component& host = common_ancestor(out.owner(), in.owner());
    host.smm().wire(out, in, pool_capacity);
}

void Application::connect(Component& from, const std::string& out_name,
                          Component& to, const std::string& in_name,
                          std::size_t pool_capacity) {
    connect(from.out_port(out_name), to.in_port(in_name), pool_capacity);
}

void Application::disconnect(OutPortBase& out, InPortBase& in) {
    if (!out.remove_target(in)) {
        throw AssemblyError("no connection " + out.qualified_name() + " -> " +
                            in.qualified_name() + " to disconnect");
    }
    // Wait out any send that loaded the old fan-out; messages it delivered
    // are already queued on `in` and drain through the handler normally —
    // disconnect reroutes the future, it never drops the past.
    out.wait_sends_quiesced();
}

void Application::retire(const std::string& instance_name) {
    Record rec;
    {
        std::lock_guard lk(topology_mu_);
        auto it = records_.begin();
        for (; it != records_.end(); ++it) {
            if (it->comp->instance_name() == instance_name) break;
        }
        if (it == records_.end()) {
            throw AssemblyError("no component instance named '" +
                                instance_name + "'");
        }
        Component& comp = *it->comp;
        if (it->scope == nullptr) {
            throw AssemblyError("component '" + instance_name +
                                "' is immortal and cannot be retired");
        }
        if (!comp.children().empty()) {
            throw AssemblyError("component '" + instance_name +
                                "' still has children; retire them first");
        }
        for (const OutPortBase* port : comp.out_ports()) {
            if (port->connected()) {
                throw AssemblyError("out-port " + port->qualified_name() +
                                    " is still connected; disconnect before "
                                    "retiring '" + instance_name + "'");
            }
        }
        for (const Record& other : records_) {
            if (other.comp == &comp) continue;
            for (const OutPortBase* port : other.comp->out_ports()) {
                for (const InPortBase* target : port->targets()) {
                    if (&target->owner() == &comp) {
                        throw AssemblyError(
                            "in-port " + target->qualified_name() +
                            " is still a target of " + port->qualified_name() +
                            "; disconnect before retiring '" + instance_name +
                            "'");
                    }
                }
            }
        }
        rec = std::move(*it);
        records_.erase(it);
    }
    // Nothing routes here anymore; let messages already admitted drain
    // through the handlers, then stop the dispatchers and reclaim.
    for (InPortBase* port : rec.comp->in_ports()) {
        port->credits().wait_drained();
    }
    rec.comp->shutdown_dispatch();
    for (OutPortBase* port : rec.comp->out_ports()) {
        if (port->smm() != nullptr) port->smm()->unregister_out_port(*port);
    }
    if (rec.comp->parent() != nullptr) {
        rec.comp->parent()->remove_child(*rec.comp);
    }
    rec.keepalive.release();
    rec.pool->release(*rec.scope);
}

void Application::start() {
    if (started_.exchange(true)) return;
    std::vector<Component*> comps;
    {
        std::lock_guard lk(topology_mu_);
        comps.reserve(records_.size());
        for (const Record& rec : records_) comps.push_back(rec.comp);
    }
    // Creation order is parents-before-children by construction.
    for (Component* comp : comps) {
        comp->_start();
    }
}

namespace {

void describe_component(std::ostringstream& out, const Component& comp,
                        int indent) {
    out << std::string(static_cast<std::size_t>(indent) * 2, ' ') << "- "
        << comp.instance_name() << " [" << memory::to_string(comp.region().kind());
    if (comp.level() > 0) out << " L" << comp.level();
    out << ", region '" << comp.region().name() << "', "
        << comp.region().used() << "/" << comp.region().capacity() << " B]";
    if (!comp.in_ports().empty() || !comp.out_ports().empty()) {
        out << " ports:";
        for (const InPortBase* p : comp.in_ports()) {
            out << " in:" << p->name() << "<" << p->type_name() << ">";
        }
        for (const OutPortBase* p : comp.out_ports()) {
            out << " out:" << p->name() << "<" << p->type_name() << ">";
        }
    }
    out << "\n";
    for (const Component* child : comp.children()) {
        describe_component(out, *child, indent + 1);
    }
}

} // namespace

std::string Application::describe() const {
    std::lock_guard lk(topology_mu_);
    std::ostringstream out;
    out << "application '" << name_ << "' (" << records_.size()
        << " components)\n";
    for (const Component* child : root_->children()) {
        describe_component(out, *child, 0);
    }
    out << "connections:\n";
    for (const Record& rec : records_) {
        for (const OutPortBase* port : rec.comp->out_ports()) {
            for (const InPortBase* target : port->targets()) {
                out << "  " << port->qualified_name() << " -> "
                    << target->qualified_name() << " <" << port->type_name()
                    << ">";
                if (port->smm() != nullptr) {
                    const Component& host = port->smm()->owner();
                    out << " via SMM of "
                        << (&host == root_ ? "<root>" : host.instance_name());
                }
                out << "\n";
            }
        }
    }
    return out.str();
}

TraceReport Application::trace_report() const {
    TraceReport report;
    auto* recorder = dynamic_cast<HopTraceRecorder*>(hooks::sink());
    std::set<const Dispatcher*> dispatchers;
    std::unique_lock topo(topology_mu_);
    for (const Record& rec : records_) {
        for (const InPortBase* port : rec.comp->in_ports()) {
            PortTrace row;
            row.port = port->qualified_name();
            row.delivered = port->delivered_count();
            row.processed = port->processed_count();
            row.errors = port->error_count();
            row.overwritten = port->overwritten_count();
            row.dropped = port->dropped_count();
            row.credit_stalls = port->credits().stall_count();
            row.buffer_limit = port->credits().limit();
            row.depth_high_water = port->credits().depth_high_water();
            if (const Dispatcher* d = port->dispatcher()) {
                row.dispatcher = d->name();
                dispatchers.insert(d);
            }
            if (recorder != nullptr) {
                row.queue_wait = recorder->queue_wait_summary(row.port);
                row.handler = recorder->handler_summary(row.port);
                row.total = recorder->total_summary(row.port);
                row.traced = row.total.count > 0;
            }
            report.credit_stalls += row.credit_stalls;
            report.ports.push_back(std::move(row));
        }
    }
    for (const Dispatcher* d : dispatchers) {
        report.queue_lock_acquisitions += d->queue_lock_count();
    }
    topo.unlock();
    {
        // Snapshot under the source lock: a concurrent
        // remove_counter_source blocks here until the callback it is
        // about to invalidate has returned.
        std::lock_guard lk(counter_mu_);
        for (const auto& [token, source] : counter_sources_) {
            report.counters.push_back(source());
        }
    }
    return report;
}

std::uint64_t
Application::add_counter_source(std::function<CounterGroup()> source) {
    std::lock_guard lk(counter_mu_);
    const std::uint64_t token = next_counter_token_++;
    counter_sources_.emplace(token, std::move(source));
    return token;
}

void Application::remove_counter_source(std::uint64_t token) {
    std::lock_guard lk(counter_mu_);
    counter_sources_.erase(token);
}

namespace {

/// Flatten a TraceReport into the registry's {name, value} sample shape:
/// fabric totals, one row of counters per In port, and every registered
/// counter-source group (prefixed by its source name).
std::vector<obs::SourceSample> flatten_report(const TraceReport& report) {
    std::vector<obs::SourceSample> out;
    const auto push = [&](std::string name, std::uint64_t v) {
        out.push_back(obs::SourceSample{std::move(name), v});
    };
    push("fabric_queue_lock_acquisitions", report.queue_lock_acquisitions);
    push("fabric_credit_stalls", report.credit_stalls);
    for (const PortTrace& p : report.ports) {
        const std::string base = "port_" + p.port + "_";
        push(base + "delivered", p.delivered);
        push(base + "processed", p.processed);
        push(base + "errors", p.errors);
        push(base + "overwritten", p.overwritten);
        push(base + "dropped", p.dropped);
        push(base + "credit_stalls", p.credit_stalls);
        push(base + "depth_high_water", p.depth_high_water);
    }
    for (const CounterGroup& g : report.counters) {
        for (const auto& [cname, value] : g.counters) {
            push(g.source + "_" + cname, value);
        }
    }
    return out;
}

} // namespace

void Application::publish_metrics(obs::MetricsRegistry& registry) const {
    for (obs::SourceSample& s : flatten_report(trace_report())) {
        registry.gauge("compadres_" + name_ + "_" + s.name)
            .set(static_cast<std::int64_t>(s.value));
    }
}

std::uint64_t
Application::register_metrics_source(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
    const std::string pfx = prefix.empty() ? "compadres_" + name_ : prefix;
    // The callback runs under the registry mutex; remove_source blocks
    // until it returns, so the caller can tear the Application down right
    // after removal without racing an in-flight exposition.
    return registry.add_source(
        pfx, [this] { return flatten_report(trace_report()); });
}

void Application::stop() {
    // Serialize against an in-flight recompose: a stop landing mid-plan
    // waits here until apply_recompose releases the mutex, so teardown
    // never races a half-applied topology. The exchange then makes the
    // body run exactly once no matter how many threads call stop().
    std::lock_guard recompose(recompose_mu_);
    if (stopped_.exchange(true)) return;
    std::vector<Record> records;
    {
        std::lock_guard lk(topology_mu_);
        records = std::move(records_);
        records_.clear();
    }
    // 1. Quiesce: stop every dispatcher (newest components first) so no
    //    handler runs while storage is being reclaimed.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        it->comp->shutdown_dispatch();
    }
    root_->shutdown_dispatch();
    // 2. Reclaim scoped components in reverse creation order (children
    //    before parents): dropping the keep-alive runs the component's
    //    destructor via the scope's finalizers, then the region returns to
    //    its pool. Immortal components are finalized when the immortal
    //    region itself is destroyed with the Application.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (it->scope != nullptr) {
            it->keepalive.release();
            it->pool->release(*it->scope);
        }
    }
}

} // namespace compadres::core
