// Component — the unit of composition (paper §2).
//
// A component is created by the framework inside its own memory region
// (immortal or scoped), declares typed In/Out ports, and implements
// _start() for initialization. Components never see RTSJ-style memory
// rules directly: they allocate through their region (or plain values) and
// exchange strictly-typed messages through ports; the framework places
// pools and buffers where the scoping rules require.
#pragma once

#include "core/port.hpp"
#include "core/smm.hpp"
#include "memory/region.hpp"

#include <map>
#include <string>
#include <vector>

namespace compadres::core {

class Application;

/// Whether a component lives in immortal memory or in a pooled scoped
/// region at a given nesting level (CCL <ComponentType>/<ScopeLevel>).
enum class ComponentType { kImmortal, kScoped };

/// Everything a component needs at construction; handed to the constructor
/// by the framework (Application or Smm::connect).
struct ComponentContext {
    Application* app = nullptr;
    memory::MemoryRegion* region = nullptr;
    Component* parent = nullptr;
    std::string instance_name;
    /// Per-In-port attributes from the CCL (<PortAttributes>), keyed by
    /// port name. Components consult port_config() when adding ports so
    /// composition-time tuning reaches compile-time component classes.
    std::map<std::string, InPortConfig> port_configs;
};

class Component {
public:
    explicit Component(const ComponentContext& ctx);
    virtual ~Component();

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Initialization hook, empty by default (paper: the generated start()
    /// "is an empty method that may be implemented by the programmer").
    virtual void _start() {}

    const std::string& instance_name() const noexcept { return instance_name_; }
    memory::MemoryRegion& region() const noexcept { return *region_; }
    Application& app() const noexcept { return *app_; }
    Component* parent() const noexcept { return parent_; }
    const std::vector<Component*>& children() const noexcept { return children_; }

    /// The component's SMM (for talking to its children); created lazily in
    /// this component's region.
    Smm& smm();
    Smm* smm_if_created() const noexcept { return smm_; }

    /// Scope-nesting level: 0 for immortal components, parent+1 for scoped.
    int level() const noexcept;

    /// The CCL-provided configuration for an In port, or `fallback` when
    /// the composition did not name the port.
    InPortConfig port_config(const std::string& port_name,
                             InPortConfig fallback = {}) const;

    // ---- port definition (paper: addInPort / addOutPort) ----

    /// Add an In port with an externally-owned handler.
    template <typename T>
    InPort<T>& add_in_port(const std::string& port_name,
                           const std::string& type_name, InPortConfig config,
                           MessageHandlerBase& handler) {
        auto* port = region_->make<InPort<T>>(port_name, *this, type_name,
                                              config, handler);
        adopt_in_port(*port);
        return *port;
    }

    /// Add an In port with a lambda handler (allocated in this region).
    template <typename T>
    InPort<T>& add_in_port(const std::string& port_name,
                           const std::string& type_name, InPortConfig config,
                           typename FnHandler<T>::Fn fn) {
        auto* handler = region_->make<FnHandler<T>>(std::move(fn));
        return add_in_port<T>(port_name, type_name, config, *handler);
    }

    template <typename T>
    OutPort<T>& add_out_port(const std::string& port_name,
                             const std::string& type_name) {
        auto* port = region_->make<OutPort<T>>(port_name, *this, type_name);
        adopt_out_port(*port);
        return *port;
    }

    /// Type-erased port creation, for infrastructure that routes messages
    /// whose C++ type is only known as a type_index at runtime (e.g. the
    /// remote bridge). The handler receives the raw message pointer.
    InPortBase& add_in_port_erased(const std::string& port_name,
                                   std::type_index type,
                                   const std::string& type_name,
                                   InPortConfig config,
                                   MessageHandlerBase& handler);
    OutPortBase& add_out_port_erased(const std::string& port_name,
                                     std::type_index type,
                                     const std::string& type_name);

    // ---- port lookup ----
    InPortBase* find_in_port(const std::string& port_name) const noexcept;
    OutPortBase* find_out_port(const std::string& port_name) const noexcept;
    InPortBase& in_port(const std::string& port_name) const;
    OutPortBase& out_port(const std::string& port_name) const;

    template <typename T>
    InPort<T>& in_port_t(const std::string& port_name) const {
        return checked_cast<InPort<T>>(in_port(port_name));
    }
    template <typename T>
    OutPort<T>& out_port_t(const std::string& port_name) const {
        return checked_cast<OutPort<T>>(out_port(port_name));
    }

    const std::vector<InPortBase*>& in_ports() const noexcept { return in_ports_; }
    const std::vector<OutPortBase*>& out_ports() const noexcept { return out_ports_; }

    /// Stop this component's dispatchers (dedicated pools and the shared
    /// pool of its SMM). Called by Application::shutdown before teardown —
    /// virtual so active components (periodic sources, watchdogs, bridges)
    /// can stop their own threads first; overrides must call the base.
    virtual void shutdown_dispatch();

private:
    friend class Application;
    friend class Smm;

    void adopt_in_port(InPortBase& port);
    void adopt_out_port(OutPortBase& port);
    void add_child(Component& child) { children_.push_back(&child); }
    void remove_child(Component& child);

    template <typename P, typename B>
    static P& checked_cast(B& base) {
        auto* p = dynamic_cast<P*>(&base);
        if (p == nullptr) {
            throw PortError("port '" + base.qualified_name() +
                            "' has message type '" + base.type_name() +
                            "', not the requested type");
        }
        return *p;
    }

    Application* app_;
    memory::MemoryRegion* region_;
    Component* parent_;
    std::string instance_name_;
    std::map<std::string, InPortConfig> port_configs_;
    std::vector<InPortBase*> in_ports_;   // non-owning; live in region
    std::vector<OutPortBase*> out_ports_; // non-owning; live in region
    std::vector<Dispatcher*> dedicated_;  // non-owning; live in region
    std::vector<Component*> children_;
    Smm* smm_ = nullptr;
};

} // namespace compadres::core
