// DeliveryPolicy — the pluggable admission layer of the delivery fabric.
//
// Following Walker et al. ("Promoting Component Reuse by Separating
// Transmission Policy from Implementation"), what happens when an In port's
// <BufferSize> budget is exhausted is a composition-time policy, not part
// of the port implementation:
//
//   * Block (default)  — the sender waits for a credit: lossless bounded
//     backpressure, the paper's semantics.
//   * RingOverwrite    — freshest-value sensor semantics: the stalest
//     *queued* message of the port is evicted (its credit transfers to the
//     incoming message); if nothing is queued — every credit is held by a
//     handler mid-process — the incoming message is dropped instead. The
//     sender never blocks.
//
// Policies are stateless singletons: all per-port state (the CreditGate,
// the counters) lives in the port, so one instance serves every port with
// that policy. Selected per port by the CCL <Overflow> attribute.
#pragma once

#include "core/envelope.hpp"
#include "core/port.hpp"

namespace compadres::core {

/// What admit() did with the envelope.
enum class DeliveryOutcome {
    kAdmitted,  ///< credit acquired; caller enqueues
    kOverwrote, ///< a stale queued message was evicted; caller enqueues
                ///< reusing its credit
    kDropped,   ///< envelope consumed (message released to its pool);
                ///< caller must NOT enqueue
};

class DeliveryPolicy {
public:
    virtual ~DeliveryPolicy() = default;
    virtual const char* name() const noexcept = 0;

    /// Acquire admission for one envelope on `port`. Must uphold the credit
    /// protocol invariants documented in rt/intake_queue.hpp: on kAdmitted
    /// and kOverwrote the envelope holds exactly one credit of the port's
    /// gate; on kDropped the gate is untouched and env.msg has been
    /// returned to its pool.
    virtual DeliveryOutcome admit(InPortBase& port, Envelope& env) = 0;
};

/// The shared policy instance for an overflow mode.
DeliveryPolicy& delivery_policy_for(OverflowPolicy overflow) noexcept;

} // namespace compadres::core
