// Ports — the only way Compadres components communicate.
//
// Out ports are connected to In ports with exactly matching message types
// (validated by the compiler for XML-driven assemblies and re-checked at
// wiring time for programmatic ones). A connection's message pool and
// buffer live in the SMM of the closest common ancestor region, which is
// what makes cross-scope delivery legal under the RTSJ reference rules —
// including shadow ports, where that ancestor is not the sender's parent.
//
// Delivery is a credit-based fabric (rt/intake_queue.hpp): the per-port
// <BufferSize> bound is a budget of credits acquired lock-free at deliver()
// and released at on_processed(), so the uncontended hop pays exactly one
// lock acquisition — the dispatcher's intake queue — instead of the legacy
// port-mutex + queue-mutex rendezvous pair.
#pragma once

#include "core/dispatcher.hpp"
#include "core/envelope.hpp"
#include "core/handler.hpp"
#include "core/message_pool.hpp"
#include "core/transmission_policy.hpp"
#include "rt/intake_queue.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

namespace compadres::core {

class Component;
class DeliveryPolicy;
class Smm;
struct MessageTypeInfo;

/// Threading strategy of an In port (CCL <Threadpool> attribute).
enum class ThreadpoolStrategy {
    kDedicated, ///< the port owns its thread pool
    kShared,    ///< the port uses the SMM-wide shared pool
};

/// Thrown on illegal port operations: sending on an unconnected port,
/// wiring mismatched message types, connecting two ports twice, ...
class PortError : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Configuration of an In port, straight from the CCL <PortAttributes>.
/// `policy` is only the CONSTRUCTION-TIME transmission policy; the live
/// value (which recomposition may change) is InPortBase::policy().
struct InPortConfig {
    std::size_t buffer_size = 8;
    ThreadpoolStrategy strategy = ThreadpoolStrategy::kDedicated;
    std::size_t min_threads = 1;
    std::size_t max_threads = 1;
    TransmissionPolicy policy;
};

class PortBase {
public:
    PortBase(std::string name, Component& owner, std::type_index type,
             std::string type_name)
        : name_(std::move(name)), owner_(&owner), type_(type),
          type_name_(std::move(type_name)) {}
    virtual ~PortBase() = default;

    PortBase(const PortBase&) = delete;
    PortBase& operator=(const PortBase&) = delete;

    const std::string& name() const noexcept { return name_; }
    Component& owner() const noexcept { return *owner_; }
    std::type_index type() const noexcept { return type_; }
    const std::string& type_name() const noexcept { return type_name_; }

    /// "Instance.Port" — unique within an application.
    std::string qualified_name() const;

protected:
    std::string name_;
    Component* owner_;
    std::type_index type_;
    std::string type_name_;
};

/// Base of all In ports. Owns the per-port credit budget (CCL <BufferSize>)
/// and points at the dispatcher that runs its handler.
class InPortBase : public PortBase {
public:
    InPortBase(std::string name, Component& owner, std::type_index type,
               std::string type_name, InPortConfig config,
               MessageHandlerBase& handler);
    ~InPortBase() override;

    const InPortConfig& config() const noexcept { return config_; }
    MessageHandlerBase& handler() const noexcept { return *handler_; }

    /// Bind this port to the dispatcher that will run its handler.
    /// Dedicated ports get their own; shared ports get the SMM's.
    void bind_dispatcher(Dispatcher& d);
    Dispatcher* dispatcher() const noexcept { return dispatcher_; }

    /// Deliver one message through the delivery fabric: the port's
    /// DeliveryPolicy settles admission against the credit budget (blocking
    /// the sender, or evicting/dropping under ring-overwrite), then the
    /// envelope is enqueued — one lock on the uncontended path. Called by
    /// connected Out ports.
    void deliver(Envelope env);

    /// Completion bookkeeping, called by the dispatcher after process():
    /// counts the outcome and releases the envelope's credit (waking a
    /// blocked sender only when one is registered).
    void on_processed(bool ok) noexcept;

    /// The live transmission policy of this port's route. Reads are a
    /// control-plane affair; the data path only loads the derived
    /// DeliveryPolicy pointer.
    const TransmissionPolicy& policy() const noexcept { return tx_policy_; }

    /// Swap the live policy. Only legal while the port's credit window is
    /// closed and drained (core/recompose.hpp quiesced_swap) or before
    /// traffic starts; publishes the derived DeliveryPolicy atomically so
    /// the first post-resume delivery already sees the new admission rule.
    void set_policy(const TransmissionPolicy& policy);

    /// The admission budget: one credit per in-flight message, lock-free in
    /// steady state. Exposed for policies, trace reports, and tests.
    rt::CreditGate& credits() noexcept { return credits_; }
    const rt::CreditGate& credits() const noexcept { return credits_; }

    std::uint64_t delivered_count() const noexcept { return delivered_.load(); }
    std::uint64_t processed_count() const noexcept { return processed_.load(); }
    std::uint64_t error_count() const noexcept { return errors_.load(); }
    /// Ring-overwrite evictions (a queued message was replaced).
    std::uint64_t overwritten_count() const noexcept { return overwritten_.load(); }
    /// Ring-overwrite drops (budget full with nothing queued to evict).
    std::uint64_t dropped_count() const noexcept { return dropped_.load(); }
    std::size_t in_flight() const noexcept { return credits_.in_use(); }

private:
    InPortConfig config_;
    MessageHandlerBase* handler_;
    TransmissionPolicy tx_policy_;           ///< live route policy
    std::atomic<DeliveryPolicy*> policy_;    ///< derived from tx_policy_
    Dispatcher* dispatcher_ = nullptr;
    rt::CreditGate credits_;
    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> processed_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> overwritten_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/// Base of all Out ports. Wired to one or more In ports; draws messages
/// from the connection's pool in the hosting SMM.
class OutPortBase : public PortBase {
public:
    OutPortBase(std::string name, Component& owner, std::type_index type,
                std::string type_name)
        : PortBase(std::move(name), owner, type, std::move(type_name)) {}

    /// Wiring (done by Smm::wire / the Application assembler). Resolves the
    /// connection's pool EAGERLY: the hosting SMM's per-type pool is grown
    /// by `pool_capacity` slots and cached here before any traffic, so
    /// pool() is a plain load with no first-use race. When a later
    /// connection re-hosts the port in a shallower SMM (fan-out across
    /// levels), the accumulated capacity of every connection is reserved
    /// there.
    void attach(Smm& smm, const MessageTypeInfo& info,
                std::size_t pool_capacity);
    void add_target(InPortBase& target);

    /// Unwire one target (live recomposition). Publishes a new target
    /// snapshot; returns false when the target was not connected. Follow
    /// with wait_sends_quiesced() before assuming no send still sees the
    /// old fan-out.
    bool remove_target(InPortBase& target);

    /// Block until every send that may have loaded a previous target
    /// snapshot has left send_raw(). Called after remove_target. Event-
    /// driven: the waiter registers itself and each send's epoch exit
    /// notifies on the 1->0 transition, so a continuously-sending thread
    /// cannot starve the waiter (a pure yield-spin livelocks for seconds
    /// on a single-core host).
    void wait_sends_quiesced() const noexcept;

    bool connected() const noexcept { return !targets().empty(); }
    const std::vector<InPortBase*>& targets() const noexcept {
        const TargetList* t = targets_.load(std::memory_order_acquire);
        static const TargetList kEmpty;
        return t != nullptr ? *t : kEmpty;
    }
    Smm* smm() const noexcept { return smm_; }

    /// The connection's message pool, resolved at wire() time.
    /// Returns nullptr when the port is not wired.
    MessagePoolBase* pool() const noexcept {
        return pool_.load(std::memory_order_acquire);
    }

    /// Default priority applied by send() overloads that don't name one.
    void set_default_priority(int p) noexcept {
        default_priority_ = rt::Priority::clamped(p).value;
    }
    int default_priority() const noexcept { return default_priority_; }

    /// getMessage()/send() — the paper's two-step send protocol. The raw
    /// variants are used by generic glue; components use the typed OutPort.
    void* get_message_raw();
    void send_raw(void* msg, int priority);

    std::uint64_t sent_count() const noexcept { return sent_.load(); }

private:
    using TargetList = std::vector<InPortBase*>;

    /// Publish `next` as the current fan-out snapshot. The previous
    /// snapshot is retired to target_history_, never freed while the port
    /// lives, so a concurrent send that already loaded it stays valid.
    void publish_targets(std::unique_ptr<TargetList> next);

    Smm* smm_ = nullptr;
    const MessageTypeInfo* type_info_ = nullptr;
    std::atomic<MessagePoolBase*> pool_{nullptr};
    std::size_t reserved_total_ = 0; ///< capacity across all connections
    // Copy-on-write fan-out: sends load `targets_` lock-free inside a
    // sends_in_flight_ epoch; route add/remove builds a new vector under
    // targets_mu_ and swaps the pointer. Retired snapshots live until the
    // port dies (route mutations are control-plane-rare, so the history
    // stays tiny).
    std::atomic<const TargetList*> targets_{nullptr};
    std::vector<std::unique_ptr<const TargetList>> target_history_;
    std::mutex targets_mu_; ///< serializes route mutations only
    mutable std::atomic<std::uint64_t> sends_in_flight_{0};
    // Slow path for wait_sends_quiesced(): senders take quiesce_mu_ only
    // when a waiter is registered, so steady-state sends stay lock-free.
    mutable std::atomic<int> quiesce_waiters_{0};
    mutable std::mutex quiesce_mu_;
    mutable std::condition_variable quiesce_cv_;
    int default_priority_ = rt::Priority::kDefault;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<bool> traffic_started_{false};
};

/// Typed In port.
template <typename T>
class InPort final : public InPortBase {
public:
    InPort(std::string name, Component& owner, std::string type_name,
           InPortConfig config, MessageHandlerBase& handler)
        : InPortBase(std::move(name), owner, std::type_index(typeid(T)),
                     std::move(type_name), config, handler) {}
};

/// Typed Out port: getMessage() hands out a pooled T to fill in, send()
/// ships it at a priority.
template <typename T>
class OutPort final : public OutPortBase {
public:
    OutPort(std::string name, Component& owner, std::string type_name)
        : OutPortBase(std::move(name), owner, std::type_index(typeid(T)),
                      std::move(type_name)) {}

    T* get_message() { return static_cast<T*>(get_message_raw()); }

    void send(T* msg, int priority) { send_raw(msg, priority); }
    void send(T* msg) { send_raw(msg, default_priority()); }
};

} // namespace compadres::core
