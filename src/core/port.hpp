// Ports — the only way Compadres components communicate.
//
// Out ports are connected to In ports with exactly matching message types
// (validated by the compiler for XML-driven assemblies and re-checked at
// wiring time for programmatic ones). A connection's message pool and
// buffer live in the SMM of the closest common ancestor region, which is
// what makes cross-scope delivery legal under the RTSJ reference rules —
// including shadow ports, where that ancestor is not the sender's parent.
#pragma once

#include "core/dispatcher.hpp"
#include "core/envelope.hpp"
#include "core/handler.hpp"
#include "core/message_pool.hpp"
#include "rt/thread.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

namespace compadres::core {

class Component;
class Smm;
struct MessageTypeInfo;

/// Threading strategy of an In port (CCL <Threadpool> attribute).
enum class ThreadpoolStrategy {
    kDedicated, ///< the port owns its thread pool
    kShared,    ///< the port uses the SMM-wide shared pool
};

/// Thrown on illegal port operations: sending on an unconnected port,
/// wiring mismatched message types, connecting two ports twice, ...
class PortError : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Configuration of an In port, straight from the CCL <PortAttributes>.
struct InPortConfig {
    std::size_t buffer_size = 8;
    ThreadpoolStrategy strategy = ThreadpoolStrategy::kDedicated;
    std::size_t min_threads = 1;
    std::size_t max_threads = 1;
};

class PortBase {
public:
    PortBase(std::string name, Component& owner, std::type_index type,
             std::string type_name)
        : name_(std::move(name)), owner_(&owner), type_(type),
          type_name_(std::move(type_name)) {}
    virtual ~PortBase() = default;

    PortBase(const PortBase&) = delete;
    PortBase& operator=(const PortBase&) = delete;

    const std::string& name() const noexcept { return name_; }
    Component& owner() const noexcept { return *owner_; }
    std::type_index type() const noexcept { return type_; }
    const std::string& type_name() const noexcept { return type_name_; }

    /// "Instance.Port" — unique within an application.
    std::string qualified_name() const;

protected:
    std::string name_;
    Component* owner_;
    std::type_index type_;
    std::string type_name_;
};

/// Base of all In ports. Owns the per-port bound (CCL <BufferSize>) and
/// points at the dispatcher that runs its handler.
class InPortBase : public PortBase {
public:
    InPortBase(std::string name, Component& owner, std::type_index type,
               std::string type_name, InPortConfig config,
               MessageHandlerBase& handler);
    ~InPortBase() override;

    const InPortConfig& config() const noexcept { return config_; }
    MessageHandlerBase& handler() const noexcept { return *handler_; }

    /// Bind this port to the dispatcher that will run its handler.
    /// Dedicated ports get their own; shared ports get the SMM's.
    void bind_dispatcher(Dispatcher& d);
    Dispatcher* dispatcher() const noexcept { return dispatcher_; }

    /// Deliver one message: enforces the per-port buffer bound (blocking
    /// the sender when full — bounded backpressure, not unbounded queues),
    /// then submits to the dispatcher. Called by connected Out ports.
    void deliver(Envelope env);

    /// Completion bookkeeping, called by the dispatcher after process().
    void on_processed(bool ok) noexcept;

    std::uint64_t delivered_count() const noexcept { return delivered_.load(); }
    std::uint64_t processed_count() const noexcept { return processed_.load(); }
    std::uint64_t error_count() const noexcept { return errors_.load(); }
    std::size_t in_flight() const noexcept { return in_flight_.load(); }

private:
    InPortConfig config_;
    MessageHandlerBase* handler_;
    Dispatcher* dispatcher_ = nullptr;
    std::mutex mu_;
    std::condition_variable space_;
    std::atomic<std::size_t> in_flight_{0};
    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> processed_{0};
    std::atomic<std::uint64_t> errors_{0};
};

/// Base of all Out ports. Wired to one or more In ports; draws messages
/// from the connection's pool in the hosting SMM.
class OutPortBase : public PortBase {
public:
    OutPortBase(std::string name, Component& owner, std::type_index type,
                std::string type_name)
        : PortBase(std::move(name), owner, type, std::move(type_name)) {}

    /// Wiring (done by Smm::wire / the Application assembler). The pool is
    /// NOT resolved here: it materializes in the SMM on first use, sized by
    /// the capacity reservations of every connection wired until then.
    void attach(Smm& smm, const MessageTypeInfo& info);
    void add_target(InPortBase& target);

    bool connected() const noexcept { return !targets_.empty(); }
    const std::vector<InPortBase*>& targets() const noexcept { return targets_; }
    Smm* smm() const noexcept { return smm_; }

    /// The connection's message pool (resolving it on first call).
    /// Returns nullptr when the port is not wired.
    MessagePoolBase* pool() const;

    /// Default priority applied by send() overloads that don't name one.
    void set_default_priority(int p) noexcept {
        default_priority_ = rt::Priority::clamped(p).value;
    }
    int default_priority() const noexcept { return default_priority_; }

    /// getMessage()/send() — the paper's two-step send protocol. The raw
    /// variants are used by generic glue; components use the typed OutPort.
    void* get_message_raw();
    void send_raw(void* msg, int priority);

    std::uint64_t sent_count() const noexcept { return sent_.load(); }

private:
    Smm* smm_ = nullptr;
    const MessageTypeInfo* type_info_ = nullptr;
    mutable std::atomic<MessagePoolBase*> pool_{nullptr};
    std::vector<InPortBase*> targets_;
    int default_priority_ = rt::Priority::kDefault;
    std::atomic<std::uint64_t> sent_{0};
};

/// Typed In port.
template <typename T>
class InPort final : public InPortBase {
public:
    InPort(std::string name, Component& owner, std::string type_name,
           InPortConfig config, MessageHandlerBase& handler)
        : InPortBase(std::move(name), owner, std::type_index(typeid(T)),
                     std::move(type_name), config, handler) {}
};

/// Typed Out port: getMessage() hands out a pooled T to fill in, send()
/// ships it at a priority.
template <typename T>
class OutPort final : public OutPortBase {
public:
    OutPort(std::string name, Component& owner, std::string type_name)
        : OutPortBase(std::move(name), owner, std::type_index(typeid(T)),
                      std::move(type_name)) {}

    T* get_message() { return static_cast<T*>(get_message_raw()); }

    void send(T* msg, int priority) { send_raw(msg, priority); }
    void send(T* msg) { send_raw(msg, default_priority()); }
};

} // namespace compadres::core
