#include "core/smm.hpp"

#include "core/application.hpp"
#include "core/component.hpp"
#include "core/registry.hpp"

namespace compadres::core {

ChildHandle::~ChildHandle() { release(); }

void ChildHandle::release() {
    if (component_ == nullptr) return;
    // Stop the child's dispatch threads before its storage goes away.
    component_->shutdown_dispatch();
    component_ = nullptr;
    // Dropping the keep-alive lets the scope's entry count hit zero: the
    // scope reclaims, running the component's destructor, and can then be
    // returned to its pool for reuse.
    keepalive_.release();
    if (pool_ != nullptr && scope_ != nullptr) {
        pool_->release(*scope_);
    }
    pool_ = nullptr;
    scope_ = nullptr;
}

Smm::Smm(Component& owner) : owner_(&owner) {}

Smm::~Smm() { shutdown(); }

memory::MemoryRegion& Smm::region() const noexcept { return owner_->region(); }

void Smm::reserve_pool_capacity(const MessageTypeInfo& info,
                                std::size_t capacity) {
    std::lock_guard lk(mu_);
    auto it = pools_.find(info.type);
    if (it != pools_.end()) {
        // The pool already materialized (an earlier connection resolved it,
        // or traffic started through pool_for): grow it in place so this
        // connection's in-flight messages cannot exhaust it and wedge the
        // pipeline.
        it->second->grow(capacity);
        return;
    }
    pending_capacity_[info.type] += capacity;
}

MessagePoolBase& Smm::pool_for_erased(const MessageTypeInfo& info) {
    std::lock_guard lk(mu_);
    auto it = pools_.find(info.type);
    if (it != pools_.end()) return *it->second;
    std::size_t capacity = 8; // unreserved direct use
    auto pending = pending_capacity_.find(info.type);
    if (pending != pending_capacity_.end()) {
        capacity = pending->second;
        pending_capacity_.erase(pending);
    }
    MessagePoolBase* pool = info.make_pool(region(), info.name, capacity);
    pools_.emplace(info.type, pool);
    return *pool;
}

void Smm::wire(OutPortBase& out, InPortBase& in, std::size_t pool_capacity) {
    if (out.type() != in.type()) {
        throw PortError("message type mismatch wiring " + out.qualified_name() +
                        " ('" + out.type_name() + "') -> " + in.qualified_name() +
                        " ('" + in.type_name() + "')");
    }
    // The Table-1 soundness check: the pool/buffer region (this SMM's) must
    // be legally referencable from both endpoints' regions, i.e. it must be
    // each endpoint's region or an ancestor of it.
    memory::assert_can_reference(out.owner().region(), region());
    memory::assert_can_reference(in.owner().region(), region());

    const MessageTypeInfo* info =
        MessageTypeRegistry::global().find_by_type(out.type());
    if (info == nullptr) {
        throw RegistryError("message type '" + out.type_name() +
                            "' of port " + out.qualified_name() +
                            " is not registered in the MessageTypeRegistry");
    }
    if (pool_capacity == 0) {
        pool_capacity = in.config().buffer_size + in.config().max_threads + 2;
    }
    // attach() picks the effective host (it may keep, or adopt, a shallower
    // SMM when this port fans out across levels), accumulates the capacity
    // reservation there — growing a pool that already exists — and resolves
    // the pool eagerly so the send path never races a first-use lookup.
    out.attach(*this, *info, pool_capacity);
    out.add_target(in);
    out.smm()->register_out_port(out);

    if (in.config().strategy == ThreadpoolStrategy::kShared &&
        in.config().max_threads > 0) {
        bind_shared_port(in);
    }
}

void Smm::register_out_port(OutPortBase& port) {
    std::lock_guard lk(mu_);
    out_ports_[port.qualified_name()] = &port;
    // Bare-name alias; collisions are remembered as ambiguous (nullptr).
    auto [it, inserted] = out_ports_.try_emplace(port.name(), &port);
    if (!inserted && it->second != &port) {
        it->second = nullptr;
    }
}

void Smm::unregister_out_port(OutPortBase& port) {
    std::lock_guard lk(mu_);
    auto it = out_ports_.find(port.qualified_name());
    if (it != out_ports_.end() && it->second == &port) out_ports_.erase(it);
    auto bare = out_ports_.find(port.name());
    if (bare != out_ports_.end() && bare->second == &port) {
        out_ports_.erase(bare);
    }
}

OutPortBase* Smm::find_out_port(const std::string& name) const noexcept {
    std::lock_guard lk(mu_);
    auto it = out_ports_.find(name);
    return it == out_ports_.end() ? nullptr : it->second;
}

OutPortBase& Smm::get_out_port(const std::string& name) const {
    std::lock_guard lk(mu_);
    auto it = out_ports_.find(name);
    if (it == out_ports_.end()) {
        throw PortError("SMM of '" + owner_->instance_name() +
                        "' knows no Out port '" + name + "'");
    }
    if (it->second == nullptr) {
        throw PortError("Out port name '" + name +
                        "' is ambiguous in the SMM of '" +
                        owner_->instance_name() + "'; use Instance.Port");
    }
    return *it->second;
}

Dispatcher& Smm::shared_dispatcher() {
    std::lock_guard lk(mu_);
    if (shared_ == nullptr) {
        // Queue occupancy is bounded by the sum of the bound ports'
        // <BufferSize> credit budgets; 256 is only the initial reservation
        // of the (unbounded-by-construction) intake queue.
        shared_ = region().make<Dispatcher>(
            owner_->instance_name() + ".smm-shared",
            DispatcherConfig{256, 0, 0, rt::Priority{}});
    }
    return *shared_;
}

void Smm::bind_shared_port(InPortBase& port) {
    Dispatcher& d = shared_dispatcher();
    d.ensure_capacity(port.config().min_threads, port.config().max_threads);
    port.bind_dispatcher(d);
}

ChildHandle Smm::connect(const std::string& class_name,
                         const std::string& instance_name) {
    return connect(class_name, instance_name, owner_->level() + 1);
}

ChildHandle Smm::connect(const std::string& class_name,
                         const std::string& instance_name, int level) {
    Application& app = owner_->app();
    memory::ScopePool& pool = app.pool_for_level(level);
    memory::LTScopedMemory& scope = pool.acquire();
    memory::ScopeHandle keepalive(scope, region());
    ComponentContext ctx{&app, &scope, owner_, instance_name, {}};
    Component* comp = ComponentRegistry::global().create(class_name, ctx);
    comp->_start();
    ChildHandle handle;
    handle.component_ = comp;
    handle.scope_ = &scope;
    handle.pool_ = &pool;
    handle.keepalive_ = std::move(keepalive);
    return handle;
}

void Smm::shutdown() {
    Dispatcher* shared = nullptr;
    {
        std::lock_guard lk(mu_);
        shared = shared_;
    }
    if (shared != nullptr) {
        shared->shutdown();
    }
}

} // namespace compadres::core
