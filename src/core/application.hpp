// Application — the runtime that owns regions, scope pools, and the
// component tree, and wires connections where the compiler's plan (or a
// programmatic call) says they go.
//
// Region layout follows the CCL <RTSJAttributes>: one immortal region of
// <ImmortalSize> bytes, plus one pool of pre-created LT scoped regions per
// scope level (<ScopedPool>). Immortal components are allocated straight
// into the immortal region; scoped components draw a region from their
// level's pool, enter it from the parent's region (binding the scope
// stack), and hold it until shutdown.
#pragma once

#include "core/component.hpp"
#include "core/hop_trace.hpp"
#include "core/registry.hpp"
#include "core/smm.hpp"
#include "memory/immortal.hpp"
#include "memory/scope_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace compadres::core {

class AssemblyError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// CCL <ScopedPool> entry.
struct ScopePoolSpec {
    int level = 1;
    std::size_t scope_size = 256 * 1024;
    std::size_t pool_size = 4;
};

/// CCL <RTSJAttributes>.
struct RtsjAttributes {
    std::size_t immortal_size = 4 * 1024 * 1024;
    std::vector<ScopePoolSpec> scoped_pools;
    /// CCL <ReactorBands>: how many priority bands the deployment's epoll
    /// reactor separates onto distinct loop threads. Remote connections
    /// may not declare more <Bands> than this (validated by the CCL
    /// compiler) — lanes beyond it would silently share a loop and the
    /// head-of-line isolation the bands promise would be fiction.
    std::size_t reactor_bands = 4;
    /// CCL <Trace>: observability-plane knobs (trace sampling shift, flight
    /// recorder on/off and ring depth). Defaults leave both disabled, so an
    /// assembly without a <Trace> block pays nothing. Applied process-wide
    /// by the Application constructor via obs::apply().
    obs::TraceConfig trace;
};

class Application {
public:
    explicit Application(std::string name, RtsjAttributes attrs = {});
    ~Application();

    Application(const Application&) = delete;
    Application& operator=(const Application&) = delete;

    const std::string& name() const noexcept { return name_; }
    memory::ImmortalMemory& immortal() noexcept { return *immortal_; }

    /// Scope pool for a nesting level; levels not named in the CCL get a
    /// default pool (256 KiB x 4) so programmatic use stays convenient.
    memory::ScopePool& pool_for_level(int level);

    /// The hidden root component: the parent of all top-level components,
    /// living in immortal memory. Its SMM hosts connections between
    /// top-level siblings.
    Component& root() noexcept { return *root_; }

    // ---- component creation ----

    /// Create an immortal component of concrete type C as a child of
    /// `parent` (default: root).
    template <typename C, typename... Args>
    C& create_immortal(const std::string& instance_name, Args&&... args) {
        ComponentContext ctx{this, immortal_.get(), root_, instance_name, {}};
        auto* comp = immortal_->make<C>(ctx, std::forward<Args>(args)...);
        adopt(*comp, nullptr, nullptr);
        return *comp;
    }

    /// Create a scoped component of concrete type C under `parent` at
    /// `level` (drawing a region from that level's pool).
    template <typename C, typename... Args>
    C& create_scoped(const std::string& instance_name, Component& parent,
                     int level, Args&&... args) {
        memory::ScopePool& pool = pool_for_level(level);
        memory::LTScopedMemory& scope = pool.acquire();
        memory::ScopeHandle keepalive(scope, parent.region());
        ComponentContext ctx{this, &scope, &parent, instance_name, {}};
        auto* comp = scope.make<C>(ctx, std::forward<Args>(args)...);
        adopt(*comp, &pool, &scope, std::move(keepalive));
        return *comp;
    }

    /// Create by CDL class name via the global ComponentRegistry.
    /// `port_configs` carries the CCL <PortAttributes> for the instance's
    /// In ports.
    Component& create_by_name(const std::string& class_name,
                              const std::string& instance_name,
                              Component* parent, ComponentType type, int level,
                              std::map<std::string, InPortConfig> port_configs = {});

    Component* find(const std::string& instance_name) const noexcept;
    Component& component(const std::string& instance_name) const;

    // ---- wiring ----

    /// Connect an Out port to an In port. The hosting SMM is the one of the
    /// closest common ancestor component (the paper's rule — for a
    /// parent->child link that is the parent; for siblings, their shared
    /// parent; for a link skipping generations, the ancestor itself, which
    /// is exactly the shadow-port optimization). Pool capacity defaults to
    /// buffer size + max pool threads + 2 in-flight slack.
    void connect(OutPortBase& out, InPortBase& in, std::size_t pool_capacity = 0);
    void connect(Component& from, const std::string& out_name, Component& to,
                 const std::string& in_name, std::size_t pool_capacity = 0);

    /// Unwire a live connection without dropping anything already sent:
    /// publishes a target snapshot minus `in`, then waits for every send
    /// that may have seen the old fan-out to finish. Messages already
    /// queued on `in` drain through its handler normally. Throws when the
    /// two ports are not connected.
    void disconnect(OutPortBase& out, InPortBase& in);

    /// Tear down one scoped component at runtime (live recomposition):
    /// verifies nothing is still routed to or from it, drains its In
    /// ports, stops its dispatchers, unregisters its Out ports, and
    /// returns its region to the level pool. Immortal components cannot
    /// be retired (their storage only dies with the application).
    void retire(const std::string& instance_name);

    /// The component whose SMM hosts a connection between these two
    /// components (closest common ancestor; endpoints count as their own
    /// ancestors). Exposed for tests and the compiler's validator.
    Component& common_ancestor(Component& a, Component& b) const;

    // ---- lifecycle ----

    /// Calls _start() on every component in creation order (parents first,
    /// since children are always created after their parent).
    void start();
    bool started() const noexcept {
        return started_.load(std::memory_order_acquire);
    }

    /// Stop all dispatchers, tear down scoped components (reverse creation
    /// order, reclaiming their regions into the pools). Idempotent AND
    /// safe to call concurrently — from any number of threads, and
    /// concurrently with an in-flight apply_recompose (they serialize on
    /// the recompose mutex; whoever wins, the loser sees a consistent
    /// world). Also run by the destructor.
    void stop();
    /// Historical name for stop().
    void shutdown() { stop(); }
    bool stopped() const noexcept {
        return stopped_.load(std::memory_order_acquire);
    }

    /// Serializes stop() against live recomposition (core/recompose.hpp
    /// holds it for the whole apply). Exposed for the recompose engine.
    std::mutex& recompose_mutex() noexcept { return recompose_mu_; }

    std::size_t component_count() const noexcept {
        std::lock_guard lk(topology_mu_);
        return records_.size();
    }

    /// Human-readable topology dump: the component tree with regions and
    /// levels, then every connection with its ports, message type, and
    /// hosting SMM. For diagnostics and tooling.
    std::string describe() const;

    /// Snapshot of the delivery fabric: one row per In port with its
    /// delivered/processed/error/overwrite/drop counters, credit-stall
    /// count, and queue-depth high-water mark (all live atomics), plus the
    /// summed intake-queue lock acquisitions of every dispatcher. When a
    /// HopTraceRecorder is installed as the hooks sink, each row also
    /// carries queue-wait / handler / total latency quantiles. Registered
    /// counter sources (see add_counter_source) are snapshotted into
    /// TraceReport::counters.
    TraceReport trace_report() const;

    /// Register a counter snapshot callback (a bridge's wire stats, the
    /// frame pool's hit rate, a reactor's event counts) that
    /// trace_report() folds into its output. Returns a token for
    /// remove_counter_source. Callbacks run under the source lock —
    /// remove_counter_source therefore blocks until any in-flight
    /// trace_report has finished with the callback, so an owner may free
    /// the counted object immediately after removal.
    std::uint64_t add_counter_source(std::function<CounterGroup()> source);
    void remove_counter_source(std::uint64_t token);

    /// Write the current trace_report() into a MetricsRegistry once: port
    /// counters become gauges named
    /// "compadres_port_<counter>{port=...}"-style flattened names, fabric
    /// totals and registered counter sources become untyped samples.
    void publish_metrics(obs::MetricsRegistry& registry) const;

    /// Register this application as a live snapshot source on `registry`:
    /// every exposition (prometheus_text / json_snapshot) re-samples the
    /// delivery fabric. Returns the registry token; the caller must
    /// remove_source(token) before the Application is destroyed.
    std::uint64_t register_metrics_source(obs::MetricsRegistry& registry,
                                          const std::string& prefix = "") const;

private:
    friend class Smm;

    struct Record {
        Component* comp = nullptr;
        memory::ScopePool* pool = nullptr;        // null for immortal
        memory::LTScopedMemory* scope = nullptr;  // null for immortal
        memory::ScopeHandle keepalive;
    };

    void adopt(Component& comp, memory::ScopePool* pool,
               memory::LTScopedMemory* scope,
               memory::ScopeHandle keepalive = {});
    Component* find_unlocked(const std::string& instance_name) const noexcept;

    std::string name_;
    RtsjAttributes attrs_;
    std::unique_ptr<memory::ImmortalMemory> immortal_;
    std::map<int, memory::ScopePool*> pools_; // non-owning; live in immortal
    Component* root_ = nullptr;                // lives in immortal
    std::vector<Record> records_;
    /// Guards records_ + pools_ so topology reads (find, describe,
    /// trace_report) are consistent against live recomposition. Never held
    /// on the message path.
    mutable std::mutex topology_mu_;
    /// Coarse control-plane lock: stop() and apply_recompose serialize
    /// here, so a stop landing mid-recompose waits for the plan to finish
    /// (or abort) before tearing the world down.
    std::mutex recompose_mu_;
    mutable std::mutex counter_mu_; ///< guards counter_sources_ + calls
    std::map<std::uint64_t, std::function<CounterGroup()>> counter_sources_;
    std::uint64_t next_counter_token_ = 1;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace compadres::core
