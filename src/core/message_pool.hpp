// Per-type message pools — the paper's shared-object mechanism.
//
// Paper §2.2: "The Compadres framework creates a message pool per message
// type in the parent component's SMM (allocated in the parent component's
// memory area). To send a message, programmers get a message object from
// the pool by calling getMessage(), set the message data, and then send the
// message through the port via send(). The message is returned to the pool
// after it is processed by the receiver."
//
// The pool's message objects genuinely live inside the owning region, so a
// reference to an in-flight message from either the parent or any child of
// that region is legal under the Table-1 rules — that is precisely why the
// shared-object pattern works.
#pragma once

#include "core/hooks.hpp"
#include "memory/region.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

namespace compadres::core {

/// Thrown by try_acquire on an empty pool when the caller asked to fail
/// rather than block.
class PoolExhausted : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Type-erased pool interface; ports and envelopes deal in this.
class MessagePoolBase {
public:
    MessagePoolBase(std::string type_name, std::type_index type,
                    memory::MemoryRegion& region, std::size_t capacity)
        : type_name_(std::move(type_name)), type_(type), region_(&region),
          capacity_(capacity) {}
    virtual ~MessagePoolBase() = default;

    MessagePoolBase(const MessagePoolBase&) = delete;
    MessagePoolBase& operator=(const MessagePoolBase&) = delete;

    /// Blocking acquire: waits until a message object is free.
    virtual void* acquire_raw() = 0;
    /// Non-blocking acquire: nullptr when the pool is empty.
    virtual void* try_acquire_raw() = 0;
    /// Return a message to the pool (resets it to a default state).
    virtual void release_raw(void* msg) = 0;
    /// Copy-construct semantics for fan-out: acquire a message and copy
    /// `src` into it.
    virtual void* clone_raw(const void* src) = 0;
    /// Add `extra` message slots (allocated in the owning region). Used when
    /// a later-wired connection reserves capacity on a pool that already
    /// exists — pools only ever grow, so in-flight messages stay valid.
    virtual void grow(std::size_t extra) = 0;

    const std::string& type_name() const noexcept { return type_name_; }
    std::type_index type() const noexcept { return type_; }
    memory::MemoryRegion& region() const noexcept { return *region_; }
    std::size_t capacity() const noexcept {
        return capacity_.load(std::memory_order_relaxed);
    }
    virtual std::size_t available() const = 0;

    /// By default release_raw scrubs the message (`*msg = T{}`) so the
    /// next sender starts from a fresh object. For large message types
    /// that is a full-object write per release; a path whose messages are
    /// always completely overwritten before anyone reads them (the remote
    /// bridge's import decode, for one) can turn it off.
    void set_scrub_on_release(bool scrub) noexcept {
        scrub_on_release_.store(scrub, std::memory_order_relaxed);
    }
    bool scrub_on_release() const noexcept {
        return scrub_on_release_.load(std::memory_order_relaxed);
    }

protected:
    std::string type_name_;
    std::type_index type_;
    memory::MemoryRegion* region_;
    std::atomic<std::size_t> capacity_;
    std::atomic<bool> scrub_on_release_{true};
};

/// Concrete pool of `capacity` T objects constructed once inside `region`.
///
/// Messages must be default-constructible; fan-out additionally requires
/// copy-assignability (checked at compile time only when clone is used).
/// Message types must be RTSJ-safe in the paper's sense: all data reachable
/// from a message must live in the message itself (no external pointers),
/// which for C++ means value types.
template <typename T>
class MessagePool final : public MessagePoolBase {
public:
    MessagePool(memory::MemoryRegion& region, std::string type_name,
                std::size_t capacity)
        : MessagePoolBase(std::move(type_name), std::type_index(typeid(T)),
                          region, capacity ? capacity : 1) {
        const std::size_t n = this->capacity();
        slots_.reserve(n);
        free_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            T* obj = region.make<T>();
            slots_.push_back(obj);
            free_.push_back(obj);
        }
        std::sort(slots_.begin(), slots_.end());
    }

    T* acquire() {
        std::unique_lock lk(mu_);
        if (free_.empty()) {
            ++waiting_;
            not_empty_.wait(lk, [&] { return !free_.empty(); });
            --waiting_;
        }
        return take_locked();
    }

    T* try_acquire() {
        std::lock_guard lk(mu_);
        if (free_.empty()) return nullptr;
        return take_locked();
    }

    void release(T* msg) {
        bool wake;
        {
            std::lock_guard lk(mu_);
            if (!owns(msg)) {
                throw std::logic_error("message does not belong to pool '" +
                                       type_name_ + "'");
            }
            if (scrub_on_release()) {
                *msg = T{}; // scrub: the next sender sees a fresh message
            }
            free_.push_back(msg);
            // Signal only when a sender actually sleeps on an exhausted
            // pool; the steady state releases into a non-empty free list
            // with nobody waiting.
            wake = waiting_ > 0;
        }
        if (wake) not_empty_.notify_one();
    }

    void* acquire_raw() override { return acquire(); }
    void* try_acquire_raw() override { return try_acquire(); }
    void release_raw(void* msg) override { release(static_cast<T*>(msg)); }

    void grow(std::size_t extra) override {
        if (extra == 0) return;
        // Allocate from the region before taking mu_: the region has its own
        // lock, and nesting it under the pool's would order the two.
        std::vector<T*> fresh;
        fresh.reserve(extra);
        for (std::size_t i = 0; i < extra; ++i) {
            fresh.push_back(region().make<T>());
        }
        {
            std::lock_guard lk(mu_);
            slots_.reserve(slots_.size() + extra);
            free_.reserve(slots_.size() + extra);
            for (T* obj : fresh) {
                slots_.push_back(obj);
                free_.push_back(obj);
            }
            std::sort(slots_.begin(), slots_.end());
            capacity_.fetch_add(extra, std::memory_order_relaxed);
        }
        // Senders may be parked on an exhausted pool that just gained slots.
        not_empty_.notify_all();
    }

    void* clone_raw(const void* src) override {
        if constexpr (std::is_copy_assignable_v<T>) {
            T* dst = acquire();
            *dst = *static_cast<const T*>(src);
            return dst;
        } else {
            throw std::logic_error("message type '" + type_name_ +
                                   "' is not copyable; fan-out unsupported");
        }
    }

    std::size_t available() const override {
        std::lock_guard lk(mu_);
        return free_.size();
    }

private:
    T* take_locked() {
        T* obj = free_.back();
        free_.pop_back();
        if (hooks::charge_all_acquires()) {
            hooks::notify_alloc(sizeof(T));
        }
        return obj;
    }

    // slots_ is kept sorted (construction and grow are the only writers)
    // so the per-release ownership check is a binary search, not a scan.
    bool owns(const T* msg) const {
        return std::binary_search(slots_.begin(), slots_.end(), msg);
    }

    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::vector<T*> slots_; // non-owning; objects live in the region
    std::vector<T*> free_;
    std::size_t waiting_ = 0; ///< senders parked on an exhausted pool
};

} // namespace compadres::core
