#include "core/hop_trace.hpp"

#include "core/port.hpp"

#include <sstream>

namespace compadres::core {

namespace {

/// Pointer hash for the open-addressed slot table (fibonacci mix of the
/// address with its low alignment bits sheared off).
std::size_t slot_hash(const InPortBase* p) noexcept {
    return static_cast<std::size_t>(
        (reinterpret_cast<std::uintptr_t>(p) >> 4) * 0x9E3779B97F4A7C15ULL);
}

} // namespace

HopTraceRecorder::HopTraceRecorder() : slots_(kSlotCount) {}

HopTraceRecorder::~HopTraceRecorder() = default;

HopTraceRecorder::PortSeries*
HopTraceRecorder::series_for(const InPortBase& port) {
    const std::size_t mask = kSlotCount - 1;
    const std::size_t start = slot_hash(&port) & mask;
    // Lock-free probe: slots are published once (null -> series) and never
    // change until clear(), so an acquire load that sees a non-null slot
    // sees the series fully constructed.
    for (std::size_t i = 0; i < kSlotCount; ++i) {
        const std::size_t at = (start + i) & mask;
        PortSeries* s = slots_[at].load(std::memory_order_acquire);
        if (s == nullptr) break; // first hop of this port: publish below
        if (s->key == &port) return s;
    }
    // Cold path (once per port): allocate, resolve the name, publish.
    std::lock_guard lk(insert_mu_);
    for (std::size_t i = 0; i < kSlotCount; ++i) {
        const std::size_t at = (start + i) & mask;
        PortSeries* s = slots_[at].load(std::memory_order_acquire);
        if (s != nullptr) {
            if (s->key == &port) return s;
            continue;
        }
        auto series = std::make_unique<PortSeries>();
        series->key = &port;
        series->name = port.qualified_name();
        PortSeries* raw = series.get();
        storage_.push_back(std::move(series));
        slots_[at].store(raw, std::memory_order_release);
        return raw;
    }
    return nullptr; // table full
}

void HopTraceRecorder::on_hop(const InPortBase& port,
                              const hooks::HopTimes& t) noexcept {
    try {
        PortSeries* s = series_for(port);
        if (s == nullptr) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Per-series lock: workers draining different ports append in
        // parallel; only same-port hops serialize (they share the vectors).
        std::lock_guard lk(s->mu);
        s->queue_wait.record(t.dequeue_ns - t.enqueue_ns);
        s->handler.record(t.process_end_ns - t.process_start_ns);
        s->total.record(t.process_end_ns - t.enqueue_ns);
    } catch (...) {
        // A sink must never take down the dispatch thread; dropping one
        // sample under memory pressure is the lesser evil.
    }
}

std::vector<std::string> HopTraceRecorder::ports() const {
    std::lock_guard lk(insert_mu_);
    std::vector<std::string> out;
    out.reserve(storage_.size());
    for (const auto& s : storage_) out.push_back(s->name);
    return out;
}

const HopTraceRecorder::PortSeries*
HopTraceRecorder::find(const std::string& port) const {
    for (const auto& s : storage_) {
        if (s->name == port) return s.get();
    }
    return nullptr;
}

rt::StatsSummary
HopTraceRecorder::queue_wait_summary(const std::string& port) const {
    std::lock_guard lk(insert_mu_);
    const PortSeries* s = find(port);
    if (s == nullptr) return rt::StatsSummary{};
    std::lock_guard slk(s->mu);
    return s->queue_wait.summarize();
}

rt::StatsSummary
HopTraceRecorder::handler_summary(const std::string& port) const {
    std::lock_guard lk(insert_mu_);
    const PortSeries* s = find(port);
    if (s == nullptr) return rt::StatsSummary{};
    std::lock_guard slk(s->mu);
    return s->handler.summarize();
}

rt::StatsSummary
HopTraceRecorder::total_summary(const std::string& port) const {
    std::lock_guard lk(insert_mu_);
    const PortSeries* s = find(port);
    if (s == nullptr) return rt::StatsSummary{};
    std::lock_guard slk(s->mu);
    return s->total.summarize();
}

void HopTraceRecorder::clear() {
    std::lock_guard lk(insert_mu_);
    for (auto& slot : slots_) {
        slot.store(nullptr, std::memory_order_relaxed);
    }
    storage_.clear();
}

std::string TraceReport::to_string() const {
    std::ostringstream out;
    out << "delivery fabric trace: " << ports.size() << " port(s), "
        << queue_lock_acquisitions << " intake lock acquisition(s), "
        << credit_stalls << " credit stall(s)\n";
    for (const PortTrace& p : ports) {
        out << "  " << p.port << " [buffer " << p.buffer_limit << ", hwm "
            << p.depth_high_water << "] delivered=" << p.delivered
            << " processed=" << p.processed << " errors=" << p.errors;
        if (p.overwritten != 0 || p.dropped != 0) {
            out << " overwritten=" << p.overwritten << " dropped=" << p.dropped;
        }
        out << " stalls=" << p.credit_stalls;
        if (!p.dispatcher.empty()) out << " via " << p.dispatcher;
        out << "\n";
        if (p.traced && p.total.count > 0) {
            const auto us = [](std::int64_t ns) {
                return static_cast<double>(ns) / 1000.0;
            };
            char line[160];
            std::snprintf(line, sizeof(line),
                          "    queue-wait p50=%.1fus p99=%.1fus | handler "
                          "p50=%.1fus p99=%.1fus | total p50=%.1fus p99=%.1fus\n",
                          us(p.queue_wait.median), us(p.queue_wait.p99),
                          us(p.handler.median), us(p.handler.p99),
                          us(p.total.median), us(p.total.p99));
            out << line;
        }
    }
    for (const CounterGroup& g : counters) {
        out << "  [" << g.source << "]";
        for (const auto& [name, value] : g.counters) {
            out << " " << name << "=" << value;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace compadres::core
