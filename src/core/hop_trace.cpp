#include "core/hop_trace.hpp"

#include "core/port.hpp"

#include <sstream>

namespace compadres::core {

void HopTraceRecorder::on_hop(const InPortBase& port,
                              const hooks::HopTimes& t) noexcept {
    try {
        std::lock_guard lk(mu_);
        auto [it, inserted] = series_.try_emplace(&port);
        if (inserted) it->second.name = port.qualified_name();
        it->second.queue_wait.record(t.dequeue_ns - t.enqueue_ns);
        it->second.handler.record(t.process_end_ns - t.process_start_ns);
        it->second.total.record(t.process_end_ns - t.enqueue_ns);
    } catch (...) {
        // A sink must never take down the dispatch thread; dropping one
        // sample under memory pressure is the lesser evil.
    }
}

std::vector<std::string> HopTraceRecorder::ports() const {
    std::lock_guard lk(mu_);
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [_, s] : series_) out.push_back(s.name);
    return out;
}

const HopTraceRecorder::PortSeries*
HopTraceRecorder::find(const std::string& port) const {
    for (const auto& [_, s] : series_) {
        if (s.name == port) return &s;
    }
    return nullptr;
}

rt::StatsSummary
HopTraceRecorder::queue_wait_summary(const std::string& port) const {
    std::lock_guard lk(mu_);
    const PortSeries* s = find(port);
    return s != nullptr ? s->queue_wait.summarize() : rt::StatsSummary{};
}

rt::StatsSummary
HopTraceRecorder::handler_summary(const std::string& port) const {
    std::lock_guard lk(mu_);
    const PortSeries* s = find(port);
    return s != nullptr ? s->handler.summarize() : rt::StatsSummary{};
}

rt::StatsSummary
HopTraceRecorder::total_summary(const std::string& port) const {
    std::lock_guard lk(mu_);
    const PortSeries* s = find(port);
    return s != nullptr ? s->total.summarize() : rt::StatsSummary{};
}

void HopTraceRecorder::clear() {
    std::lock_guard lk(mu_);
    series_.clear();
}

std::string TraceReport::to_string() const {
    std::ostringstream out;
    out << "delivery fabric trace: " << ports.size() << " port(s), "
        << queue_lock_acquisitions << " intake lock acquisition(s), "
        << credit_stalls << " credit stall(s)\n";
    for (const PortTrace& p : ports) {
        out << "  " << p.port << " [buffer " << p.buffer_limit << ", hwm "
            << p.depth_high_water << "] delivered=" << p.delivered
            << " processed=" << p.processed << " errors=" << p.errors;
        if (p.overwritten != 0 || p.dropped != 0) {
            out << " overwritten=" << p.overwritten << " dropped=" << p.dropped;
        }
        out << " stalls=" << p.credit_stalls;
        if (!p.dispatcher.empty()) out << " via " << p.dispatcher;
        out << "\n";
        if (p.traced && p.total.count > 0) {
            const auto us = [](std::int64_t ns) {
                return static_cast<double>(ns) / 1000.0;
            };
            char line[160];
            std::snprintf(line, sizeof(line),
                          "    queue-wait p50=%.1fus p99=%.1fus | handler "
                          "p50=%.1fus p99=%.1fus | total p50=%.1fus p99=%.1fus\n",
                          us(p.queue_wait.median), us(p.queue_wait.p99),
                          us(p.handler.median), us(p.handler.p99),
                          us(p.total.median), us(p.total.p99));
            out << line;
        }
    }
    for (const CounterGroup& g : counters) {
        out << "  [" << g.source << "]";
        for (const auto& [name, value] : g.counters) {
            out << " " << name << "=" << value;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace compadres::core
