// Scoped Memory Manager (SMM) — paper §2.2, Fig. 4.
//
// Each parent component owns exactly one SMM, allocated in the parent's
// own memory region. The SMM hosts everything the parent shares with its
// children and between its children:
//   * one message pool per message type (the shared objects),
//   * the message buffers of the connections wired through it,
//   * the optional shared thread pool (<Threadpool>Shared</Threadpool>),
//   * an Out-port registry so handlers can do smm.getOutPort("P3"),
//   * dynamic child creation/reclamation: connect() pulls a scoped region
//     from the level pool, instantiates the child there, and returns a
//     handle; disconnect() lets the scope reclaim and returns it to the
//     pool. This is the paper's proxy/wedge mechanism: the handle plays
//     the role of the wedge thread keeping the child alive.
#pragma once

#include "core/dispatcher.hpp"
#include "core/message_pool.hpp"
#include "core/port.hpp"
#include "memory/scope_pool.hpp"
#include "memory/scoped.hpp"

#include <map>
#include <mutex>
#include <string>
#include <typeindex>

namespace compadres::core {

class Application;
class Component;
struct MessageTypeInfo;

/// Keep-alive handle for a dynamically created child component.
/// Destroying (or disconnect()ing) the handle lets the child's scope
/// reclaim — running the component's destructor — and returns the scope
/// to its pool for reuse.
class ChildHandle {
public:
    ChildHandle() = default;
    ChildHandle(ChildHandle&&) noexcept = default;
    ChildHandle& operator=(ChildHandle&&) noexcept = default;
    ~ChildHandle();

    Component* component() const noexcept { return component_; }
    memory::LTScopedMemory* scope() const noexcept { return scope_; }
    explicit operator bool() const noexcept { return component_ != nullptr; }

    /// Tear down the child now (idempotent).
    void release();

private:
    friend class Smm;
    Component* component_ = nullptr;
    memory::LTScopedMemory* scope_ = nullptr;
    memory::ScopePool* pool_ = nullptr;
    memory::ScopeHandle keepalive_;
};

class Smm {
public:
    /// `owner` is the parent component; the SMM and all its pools live in
    /// the owner's region. The application root has a hidden owner.
    explicit Smm(Component& owner);
    ~Smm();

    Smm(const Smm&) = delete;
    Smm& operator=(const Smm&) = delete;

    Component& owner() const noexcept { return *owner_; }
    memory::MemoryRegion& region() const noexcept;

    /// Direct typed access to the per-type message pool ("a message pool
    /// per message type in the parent component's SMM"). Creates the pool
    /// immediately with `capacity` slots if it does not exist yet.
    template <typename T>
    MessagePool<T>& pool_for(const std::string& type_name, std::size_t capacity) {
        std::lock_guard lk(mu_);
        const std::type_index key(typeid(T));
        auto it = pools_.find(key);
        if (it != pools_.end()) {
            return static_cast<MessagePool<T>&>(*it->second);
        }
        auto* pool = region().make<MessagePool<T>>(region(), type_name, capacity);
        pools_.emplace(key, pool);
        return *pool;
    }

    /// Record that a connection wired through this SMM will need
    /// `capacity` slots of the given message type. Reservations made while
    /// the pool does not exist yet accumulate — a pool shared by several
    /// connections of the same type (the paper's one-pool-per-type rule)
    /// must be sized for all of them, or in-flight messages could exhaust
    /// it and deadlock the pipeline.
    void reserve_pool_capacity(const MessageTypeInfo& info,
                               std::size_t capacity);

    /// The per-type pool; created on first use with the accumulated
    /// reserved capacity (allocated inside region()).
    MessagePoolBase& pool_for_erased(const MessageTypeInfo& info);

    /// Wire an Out port to an In port through this SMM. Verifies the exact
    /// message-type match and that this SMM's region is legally referencable
    /// from both endpoints (the Table-1 check that makes the shared-object
    /// pattern sound). `pool_capacity` sizes the pool on first use.
    void wire(OutPortBase& out, InPortBase& in, std::size_t pool_capacity);

    /// Handler-side port lookup (paper: smm.getOutPort("P3")). Accepts the
    /// bare port name when unambiguous, or "Instance.Port".
    OutPortBase& get_out_port(const std::string& name) const;
    OutPortBase* find_out_port(const std::string& name) const noexcept;

    /// The shared dispatcher used by In ports with the Shared strategy.
    Dispatcher& shared_dispatcher();
    /// Bind a shared-strategy port: grows the shared pool/queue to satisfy
    /// the port's CCL attributes. Must happen before traffic starts.
    void bind_shared_port(InPortBase& port);

    /// Create a child component of class `class_name` (from the global
    /// ComponentRegistry) inside a pooled scoped region one level below the
    /// owner. The returned handle keeps the child alive.
    ChildHandle connect(const std::string& class_name,
                        const std::string& instance_name);
    ChildHandle connect(const std::string& class_name,
                        const std::string& instance_name, int level);

    /// Tear down a dynamically created child (paper: parent "can kill the
    /// temporary component by calling disconnect() with the handle").
    static void disconnect(ChildHandle& handle) { handle.release(); }

    /// Stop the shared dispatcher (called during application shutdown,
    /// before components are destroyed).
    void shutdown();

    void register_out_port(OutPortBase& port);
    /// Drop a retired port from the lookup maps (live recomposition). The
    /// qualified name and an unambiguous bare-name alias are removed; a
    /// bare name already marked ambiguous stays ambiguous.
    void unregister_out_port(OutPortBase& port);

private:
    Component* owner_;
    mutable std::mutex mu_;
    std::map<std::type_index, MessagePoolBase*> pools_; // non-owning (region)
    std::map<std::type_index, std::size_t> pending_capacity_;
    std::map<std::string, OutPortBase*> out_ports_;
    Dispatcher* shared_ = nullptr; // lazily created in region
};

} // namespace compadres::core
