#include "core/delivery_policy.hpp"

#include "core/dispatcher.hpp"
#include "core/message_pool.hpp"
#include "obs/flight_recorder.hpp"

namespace compadres::core {

namespace {

/// Lossless bounded backpressure — the paper's semantics and the default.
class BlockingPolicy final : public DeliveryPolicy {
public:
    const char* name() const noexcept override { return "Block"; }

    DeliveryOutcome admit(InPortBase& port, Envelope&) override {
        rt::CreditGate& gate = port.credits();
        if (!gate.try_acquire()) {
            // About to wait for a credit: a flight-recorder mark makes the
            // stall visible on the sender's timeline, not just in the
            // aggregate stall counter.
            obs::FlightRecorder::emit(
                obs::EventType::kCreditStall,
                reinterpret_cast<std::uintptr_t>(&port), 0);
            gate.acquire();
        }
        return DeliveryOutcome::kAdmitted;
    }
};

/// Freshest-value sensor semantics: the sender never blocks. On an
/// exhausted budget the stalest *queued* envelope of the port is evicted
/// and its credit transferred to the incoming message; if every credit is
/// held by a handler mid-process (nothing queued to evict), the incoming
/// message is dropped instead.
class RingOverwritePolicy final : public DeliveryPolicy {
public:
    const char* name() const noexcept override { return "Ring"; }

    DeliveryOutcome admit(InPortBase& port, Envelope& env) override {
        rt::CreditGate& gate = port.credits();
        if (gate.try_acquire()) return DeliveryOutcome::kAdmitted;
        if (Dispatcher* d = port.dispatcher()) {
            if (auto stolen = d->steal_queued(port)) {
                // The stolen envelope's credit moves to `env` (invariant 3
                // in rt/intake_queue.hpp): in-flight count unchanged.
                stolen->pool->release_raw(stolen->msg);
                return DeliveryOutcome::kOverwrote;
            }
        }
        // Nothing queued to evict — a completion may still have freed a
        // credit since the first try; give it one more lock-free chance
        // before declaring the message lost.
        if (gate.try_acquire()) return DeliveryOutcome::kAdmitted;
        env.pool->release_raw(env.msg);
        return DeliveryOutcome::kDropped;
    }
};

} // namespace

DeliveryPolicy& delivery_policy_for(OverflowPolicy overflow) noexcept {
    static BlockingPolicy block;
    static RingOverwritePolicy ring;
    if (overflow == OverflowPolicy::kRingOverwrite) return ring;
    return block;
}

} // namespace compadres::core
